#!/usr/bin/env python3
"""The paper's running example: the San Diego flu survey.

Section 1 motivates the whole theory with one query:

    Q: How many adults from San Diego contracted the flu this October?

Three parties care, with different stakes (Section 2.3):

* the *government* tracks the epidemic — absolute-error loss, no side
  information;
* a *drug company* plans production — squared-error loss, and its own
  sales receipts lower-bound the count (Example 1);
* a *journalist* wants to know whether an outbreak happened at all —
  zero-one loss with a population upper bound.

One geometric release serves all three optimally (Theorem 1), which is
exactly what lets the statistic be published to an unknown audience.

The deployment itself runs from a *compiled artifact* (PR 6): the first
run compiles the exact geometric kernel, its per-row alias sampling
tables, and the verification evidence into a content-addressed store
(``examples/.artifacts`` unless ``REPRO_ARTIFACT_DIR`` is set); every
later run loads, verifies, and publishes without ever constructing a
mechanism — the ``repro compile`` → ``repro cache verify`` → publish
lifecycle in miniature.

The final act (PR 7) completes that lifecycle with ``repro serve``: the
same artifact is served from a live asyncio statistic service — the
survey count is published over real HTTP/1.1 (what ``curl`` would see),
concurrent requests fuse into micro-batches, and the per-user privacy
ledger turns an exhausted budget into a 429. Since PR 8 that ledger is
*durable*: charges are journaled to a crash-safe write-ahead log before
any response is released, so the epilogue restarts the server on the
same ledger directory and the government's spent budget survives.

Run:  python examples/flu_survey.py
"""

import asyncio
import os
import pathlib
import tempfile
from fractions import Fraction

import numpy as np

from repro import (
    AbsoluteLoss,
    GeometricMechanism,
    MinimaxAgent,
    SideInformation,
    SquaredLoss,
    ZeroOneLoss,
)
from repro.analysis.fractions_fmt import format_value
from repro.db.generators import (
    drug_purchases_lower_bound,
    flu_population,
    flu_query,
)
from repro.release.artifacts import (
    ArtifactSpec,
    ArtifactStore,
    verify_artifact,
)
from repro.release.publisher import Publisher
from repro.serving import HTTPServingClient, InProcessClient, MechanismServer


def deployment_artifact(n: int, alpha):
    """Load the compiled geometric deployment, compiling it if missing."""
    directory = os.environ.get(
        "REPRO_ARTIFACT_DIR",
        pathlib.Path(__file__).resolve().parent / ".artifacts",
    )
    store = ArtifactStore(directory)
    spec = ArtifactSpec("geometric", n, alpha)
    precompiled = store.get(spec) is not None
    artifact = store.get_or_compile(spec)
    report = verify_artifact(artifact)
    assert report.ok, f"artifact failed verification: {report.failures}"
    print(
        f"deployment artifact {spec.key()[:12]} "
        f"({'precompiled' if precompiled else 'compiled now'}, "
        f"verified: {', '.join(report.checks)})"
    )
    return store, artifact


def main() -> None:
    rng = np.random.default_rng(20101001)

    # --- Synthesize the survey population ------------------------------
    # n = 6 keeps the exact (Fraction) LP solves instant; crank it up and
    # pass exact=False below for float solves at survey scale.
    database = flu_population(
        6, rng, flu_rate=0.35, san_diego_share=0.7, drug_uptake=0.6
    )
    n = database.size
    query = flu_query()
    true_count = query(database)
    print(query.describe())
    print(f"population={n}, true count={true_count}")

    # --- Publish once at alpha = 1/2, from the compiled artifact -------
    alpha = Fraction(1, 2)
    store, artifact = deployment_artifact(n, alpha)
    publisher = Publisher.from_artifact(database, artifact)
    statistic = publisher.publish(query, rng)
    print(f"published value: {statistic.value}  (alpha={alpha})")

    # --- Three heterogeneous consumers ---------------------------------
    sales_bound = drug_purchases_lower_bound(database)
    consumers = [
        MinimaxAgent(AbsoluteLoss(), None, n=n, name="government"),
        MinimaxAgent(
            SquaredLoss(),
            SideInformation.at_least(sales_bound, n=n),
            n=n,
            name="drug-company",
        ),
        MinimaxAgent(
            ZeroOneLoss(),
            SideInformation.at_most(n - 1, n=n),
            n=n,
            name="journalist",
        ),
    ]
    print(f"\ndrug company's sales lower bound: {sales_bound}")

    # --- Each interacts rationally with the SAME deployment ------------
    deployed = publisher.mechanism
    print(f"\n{'consumer':<14} {'interaction':<16} {'bespoke LP':<16} equal?")
    for agent in consumers:
        interaction = agent.best_interaction(deployed, exact=True)
        bespoke = agent.bespoke_mechanism(alpha, exact=True)
        print(
            f"{agent.name:<14} "
            f"{format_value(interaction.loss):<16} "
            f"{format_value(bespoke.loss):<16} "
            f"{interaction.loss == bespoke.loss}"
        )
        assert interaction.loss == bespoke.loss

    # --- What the drug company actually does with the number -----------
    company = consumers[1]
    kernel = company.best_interaction(deployed, exact=True).kernel
    estimate = company.reinterpret(statistic.value, kernel, rng)
    print(
        f"\ndrug company reinterprets published {statistic.value} "
        f"as {estimate} (never below its sales bound {sales_bound})"
    )
    assert estimate >= sales_bound

    # --- Serve the same deployment live (`repro serve` in miniature) ---
    with tempfile.TemporaryDirectory(prefix="flu-ledger-") as ledger_dir:
        asyncio.run(
            serve_live(store, n, alpha, true_count, pathlib.Path(ledger_dir))
        )


async def serve_live(store, n, alpha, true_count, ledger_dir) -> None:
    """Boot the statistic service on the example's own artifact store."""
    print("\n--- live serving (`repro serve`) ---")
    server = MechanismServer(
        store,
        floor=alpha**3,  # each user may consume three alpha=1/2 releases
        batch_window=0.001,
        audit_rate=1.0,
        seed=20101001,
        ledger_dir=ledger_dir,  # budgets live in a crash-safe WAL (PR 8)
        ledger_fsync="group",  # one fsync per micro-batch, before release
        trace_rate=1.0,  # trace everything for the demo (PR 9)
        trace_seed=20101003,
    )
    loaded = server.load_store()
    await server.start(port=0)  # ephemeral port; `repro serve` pins one
    print(
        f"serving {loaded} verified deployments on "
        f"http://127.0.0.1:{server.port}"
    )

    # What `curl -d '{"user":"gov","n":6,"alpha":"1/2","true_result":3}'
    # http://127.0.0.1:PORT/publish` would see — a real socket round-trip.
    http = HTTPServingClient("127.0.0.1", server.port)
    status, body = await http.publish(
        user="government", n=n, alpha=str(alpha), true_result=true_count
    )
    print(
        f"HTTP publish -> {status}: value={body['value']} "
        f"(budget left: alpha down to {body['cumulative_alpha']})"
    )
    government_trace = body["trace"]  # traced end-to-end (PR 9)

    # Concurrent consumers fuse into one micro-batched gather.
    client = InProcessClient(server)
    results = await asyncio.gather(*[
        client.publish(
            user=f"clinic-{i}", n=n, alpha=str(alpha), true_result=true_count
        )
        for i in range(32)
    ])
    stats = server.batcher.stats
    print(
        f"32 concurrent clinic queries -> "
        f"{sum(1 for s, _ in results if s == 200)} served in "
        f"{stats['batches'] - 1} fused batch(es) "
        f"(largest {stats['max_batch']})"
    )

    # The ledger is the enforcement point: the government already spent
    # one of its three releases over HTTP; two more succeed, the fourth
    # is refused.
    for _ in range(2):
        status, _ = await client.publish(
            user="government", n=n, alpha=str(alpha), true_result=true_count
        )
        assert status == 200
    status, body = await http.publish(
        user="government", n=n, alpha=str(alpha), true_result=true_count
    )
    print(
        f"4th government release -> {status} (floor ({alpha})^3 reached; "
        f"remaining allowance {body['remaining_alpha']})"
    )
    assert status == 429

    # The online auditor saw every response; nothing diverges from the
    # re-derived geometric law.
    flagged = [f for f in server.audit() if f.flagged]
    print(f"online audit: {len(flagged)} deployments flagged")
    assert not flagged

    # --- Observability (PR 9): the same traffic as the operator sees it.
    # One Prometheus scrape covers requests by status, per-deployment
    # latency histograms, WAL health, and budget burn-down; the HTTP
    # publish above was traced end-to-end through the durable ledger
    # and the fused sampler.
    _, scrape = await server.handle_request(
        "GET", "/metrics?format=prometheus"
    )
    lines = scrape["__raw__"].splitlines()
    for prefix in (
        'repro_requests_total{route="publish",status="200"}',
        "repro_budget_users_near_floor",
    ):
        for line in lines:
            if line.startswith(prefix):
                print(f"scrape: {line}")
                break
    spans = server.telemetry.tracer.recent(trace=government_trace)
    print(
        f"trace {government_trace}: "
        + " -> ".join(record["name"] for record in reversed(spans))
    )

    await http.close()
    await server.stop()

    # --- Durability: the budget survives the server, not the process ---
    # Every charge above was journaled to the write-ahead ledger before
    # its response went out; a fresh server on the same directory starts
    # with the government's budget already spent.
    reborn = MechanismServer(
        store,
        floor=alpha**3,
        batch_window=0.001,
        audit_rate=0.0,
        seed=20101002,
        ledger_dir=ledger_dir,
    )
    reborn.load_store()
    client = InProcessClient(reborn)
    status, body = await client.publish(
        user="government", n=n, alpha=str(alpha), true_result=true_count
    )
    print(
        f"after restart, government release -> {status} "
        f"(recovered budget: cumulative alpha {body['cumulative_alpha']})"
    )
    assert status == 429  # recovered from the WAL, not refilled
    await reborn.stop()


if __name__ == "__main__":
    main()
