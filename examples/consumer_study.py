#!/usr/bin/env python3
"""Consumer study: universality across a grid of preferences.

Theorem 1 is a *for all* statement; this study makes it tangible by
sweeping losses (absolute, squared, zero-one, capped, threshold),
side-information sets, and privacy levels, reporting for each cell the
bespoke LP optimum, the interaction loss against the deployed geometric
mechanism, and their (always zero) gap. A second sweep runs the
Bayesian baseline of Ghosh et al. (Section 2.7) for contrast.

Run:  python examples/consumer_study.py
"""

from fractions import Fraction

from repro.analysis.fractions_fmt import format_value
from repro.analysis.sweeps import (
    bayesian_universality_sweep,
    universality_sweep,
)
from repro.losses import (
    AbsoluteLoss,
    CappedLoss,
    SquaredLoss,
    ThresholdLoss,
    ZeroOneLoss,
)


def main() -> None:
    n = 3
    losses = [
        AbsoluteLoss(),
        SquaredLoss(),
        ZeroOneLoss(),
        CappedLoss(AbsoluteLoss(), 2),
        ThresholdLoss(1),
    ]
    side_infos = [None, {0, 1}, {1, 2, 3}]
    alphas = [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]

    cases = [
        (n, alpha, loss, side)
        for alpha in alphas
        for loss in losses
        for side in side_infos
    ]
    print(f"minimax universality sweep: {len(cases)} consumers, n={n}")
    header = f"{'alpha':>6} {'loss':<28} {'S':<12} {'bespoke':>10} {'interact':>10} gap"
    print(header)
    print("-" * len(header))
    records = universality_sweep(cases, exact=True)
    for record in records:
        side_label = (
            "all" if len(record.side_information) == n + 1
            else str(set(record.side_information))
        )
        print(
            f"{str(record.alpha):>6} "
            f"{record.loss_name:<28} "
            f"{side_label:<12} "
            f"{format_value(record.bespoke_loss):>10} "
            f"{format_value(record.interaction_loss):>10} "
            f"{format_value(record.gap)}"
        )
    assert all(record.holds for record in records)
    print(f"\nall {len(records)} minimax consumers: gap == 0 exactly")

    # --- Bayesian baseline (GRS09) -------------------------------------
    uniform = [Fraction(1, n + 1)] * (n + 1)
    skewed = [Fraction(1, 2), Fraction(1, 4), Fraction(1, 8), Fraction(1, 8)]
    bayes_cases = [
        (n, alpha, loss, prior)
        for alpha in alphas[:2]
        for loss in losses[:3]
        for prior in (uniform, skewed)
    ]
    bayes_records = bayesian_universality_sweep(bayes_cases, exact=True)
    assert all(record.holds for record in bayes_records)
    print(
        f"Bayesian baseline sweep: all {len(bayes_records)} consumers "
        "optimal too (GRS09, reproduced)"
    )


if __name__ == "__main__":
    main()
