#!/usr/bin/env python3
"""Consumer study: universality across a grid of preferences.

Theorem 1 is a *for all* statement; this study makes it tangible by
sweeping losses (absolute, squared, zero-one, capped, threshold),
side-information sets, and privacy levels, reporting for each cell the
bespoke LP optimum, the interaction loss against the deployed geometric
mechanism, and their (always zero) gap. A second sweep runs the
Bayesian baseline of Ghosh et al. (Section 2.7) for contrast.

The closing act serves the study's deployments live: the grid of
side-information artifacts is pre-warmed the way
``repro compile --side-grid`` does, and the whole heterogeneous
population of consumers then queries one running server concurrently —
every response zero-solve, fused into micro-batches.

Run:  python examples/consumer_study.py
"""

import asyncio
from fractions import Fraction

from repro.analysis.fractions_fmt import format_value
from repro.analysis.sweeps import (
    bayesian_universality_sweep,
    universality_sweep,
)
from repro.losses import (
    AbsoluteLoss,
    CappedLoss,
    SquaredLoss,
    ThresholdLoss,
    ZeroOneLoss,
)


def main() -> None:
    n = 3
    losses = [
        AbsoluteLoss(),
        SquaredLoss(),
        ZeroOneLoss(),
        CappedLoss(AbsoluteLoss(), 2),
        ThresholdLoss(1),
    ]
    side_infos = [None, {0, 1}, {1, 2, 3}]
    alphas = [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]

    cases = [
        (n, alpha, loss, side)
        for alpha in alphas
        for loss in losses
        for side in side_infos
    ]
    print(f"minimax universality sweep: {len(cases)} consumers, n={n}")
    header = f"{'alpha':>6} {'loss':<28} {'S':<12} {'bespoke':>10} {'interact':>10} gap"
    print(header)
    print("-" * len(header))
    records = universality_sweep(cases, exact=True)
    for record in records:
        side_label = (
            "all" if len(record.side_information) == n + 1
            else str(set(record.side_information))
        )
        print(
            f"{str(record.alpha):>6} "
            f"{record.loss_name:<28} "
            f"{side_label:<12} "
            f"{format_value(record.bespoke_loss):>10} "
            f"{format_value(record.interaction_loss):>10} "
            f"{format_value(record.gap)}"
        )
    assert all(record.holds for record in records)
    print(f"\nall {len(records)} minimax consumers: gap == 0 exactly")

    # --- Bayesian baseline (GRS09) -------------------------------------
    uniform = [Fraction(1, n + 1)] * (n + 1)
    skewed = [Fraction(1, 2), Fraction(1, 4), Fraction(1, 8), Fraction(1, 8)]
    bayes_cases = [
        (n, alpha, loss, prior)
        for alpha in alphas[:2]
        for loss in losses[:3]
        for prior in (uniform, skewed)
    ]
    bayes_records = bayesian_universality_sweep(bayes_cases, exact=True)
    assert all(record.holds for record in bayes_records)
    print(
        f"Bayesian baseline sweep: all {len(bayes_records)} consumers "
        "optimal too (GRS09, reproduced)"
    )

    # --- Serve the study's deployments live ----------------------------
    asyncio.run(serve_study(n, alphas))


async def serve_study(n, alphas) -> None:
    """Pre-warm a side-information grid and serve it to live consumers."""
    import tempfile

    from repro.release.artifacts import ArtifactSpec, ArtifactStore
    from repro.serving import InProcessClient, MechanismServer

    print("\n--- live serving of the study grid (`repro serve`) ---")
    with tempfile.TemporaryDirectory(prefix="consumer-study-") as tmp:
        # What `repro compile -n 3 --alphas ... --side-grid lower` does:
        # the geometric release per level plus a bespoke optimal
        # mechanism per "result >= b" side-information set, so the
        # server never meets a solver while requests are in flight.
        store = ArtifactStore(tmp)
        specs = []
        for alpha in alphas:
            specs.append(ArtifactSpec("geometric", n, alpha))
            for bound in range(1, n + 1):
                specs.append(
                    ArtifactSpec(
                        "optimal", n, alpha,
                        loss="absolute", side=tuple(range(bound, n + 1)),
                    )
                )
        for spec in specs:
            store.get_or_compile(spec)

        server = MechanismServer(
            store, batch_window=0.001, audit_rate=0.1, seed=7
        )
        loaded = server.load_store()
        print(f"pre-warmed and loaded {loaded} verified deployments")

        client = InProcessClient(server)
        requests = [
            client.publish(
                user=f"consumer-{i}",
                n=n,
                alpha=str(alphas[i % len(alphas)]),
                true_result=i % (n + 1),
                **(
                    {}
                    if i % 2 == 0
                    else {
                        "kind": "optimal",
                        "loss": "absolute",
                        "side": list(range(1 + i % n, n + 1)),
                    }
                ),
            )
            for i in range(60)
        ]
        results = await asyncio.gather(*requests)
        served = sum(1 for status, _ in results if status == 200)
        stats = server.batcher.stats
        print(
            f"{served}/60 heterogeneous consumers served in "
            f"{stats['batches']} fused batch(es) "
            f"(largest {stats['max_batch']}); "
            f"{server.metrics['audit_recorded']} responses audited"
        )
        assert served == 60
        assert not [f for f in server.audit() if f.flagged]

        # PR 9: one /metrics scrape covers the serving layer and the
        # solver layer that compiled the grid (solve-cache hits,
        # artifact-store loads land in the process-default registry).
        _, scrape = await server.handle_request(
            "GET", "/metrics?format=prometheus"
        )
        lines = scrape["__raw__"].splitlines()
        latency_series = sum(
            1
            for line in lines
            if line.startswith("repro_publish_latency_seconds_count")
        )
        solver = [
            line
            for line in lines
            if line.startswith(
                ("repro_solve_cache_total", "repro_artifact_store_total")
            )
        ]
        print(
            f"one /metrics scrape: latency histograms for "
            f"{latency_series} deployments; solver layer: "
            + ", ".join(solver[:3])
        )


if __name__ == "__main__":
    main()
