#!/usr/bin/env python3
"""Multi-level release: executives vs the Internet (Algorithm 1).

Section 2.6's scenario: the flu statistic goes out twice — a
high-utility version for government executives and a high-privacy
version for the public. Releasing two *independent* perturbations would
let the two audiences collude and average the noise away; Algorithm 1
instead derives the public number from the executive number through the
Lemma 3 kernel, so collusion yields nothing (Lemma 4).

This script (a) runs the correlated release, (b) verifies collusion
resistance for every coalition exactly, and (c) simulates the averaging
attack against both strategies to show the difference empirically.

Run:  python examples/multilevel_release.py
"""

from fractions import Fraction

import numpy as np

from repro import MultiLevelRelease
from repro.analysis.fractions_fmt import format_matrix, format_value
from repro.core.multilevel import naive_independent_release_alpha
from repro.release.collusion import compare_release_strategies


def main() -> None:
    n = 8
    true_count = 5
    tiers = {
        "executives": Fraction(2, 5),
        "internet": Fraction(7, 10),
    }
    levels = sorted(tiers.values())
    release = MultiLevelRelease(n, levels)

    # --- (a) one correlated release ------------------------------------
    values = release.release(true_count, rng=20100615)
    print(f"true count = {true_count}")
    for (name, alpha), value in zip(sorted(tiers.items(), key=lambda i: i[1]), values):
        print(f"  tier {name:<11} alpha={alpha}: published {value}")

    print("\nLemma 3 kernel carrying the executive number to the public one:")
    print(format_matrix(release.kernel(0)))

    # --- (b) exact collusion-resistance check (Lemma 4) ----------------
    print("\ncoalition checks (joint mechanism's tightest alpha):")
    for check in release.verify_all_coalitions():
        print(
            f"  coalition {check.coalition}: required "
            f"{format_value(check.required_alpha)}, achieved "
            f"{format_value(check.achieved_alpha)} -> "
            f"{'OK' if check.holds else 'VIOLATED'}"
        )
    naive = naive_independent_release_alpha(levels)
    print(
        "naive independent release would degrade to alpha = "
        f"{format_value(naive)} (worse than "
        f"{format_value(levels[0])})"
    )

    # --- (c) the averaging attack, empirically -------------------------
    comparison = compare_release_strategies(
        n,
        [Fraction(2, 5), Fraction(9, 20), Fraction(1, 2), Fraction(11, 20)],
        true_result=true_count,
        trials=6000,
        rng=np.random.default_rng(7),
    )
    print("\naveraging attack with 4 releases (mean squared error):")
    print(f"  single least-private release: {comparison.single_best.mse:.3f}")
    print(f"  naive independent releases:   {comparison.naive.mse:.3f}  <- noise cancels")
    print(f"  Algorithm 1 chained releases: {comparison.chained.mse:.3f}  <- no gain")


if __name__ == "__main__":
    main()
