#!/usr/bin/env python3
"""Reproduce the paper's Table 1 with exact rational arithmetic.

Table 1 illustrates the paper's central factorization for the consumer
with loss ``|i - r|``, side information ``{0..3}``, ``n = 3``,
``alpha = 1/4``:

    optimal mechanism (a)  =  geometric mechanism (b)  x  interaction (c)

The in-repo exact simplex recomputes all three panels as Fractions; the
printed entries of (b) match the paper exactly (after the display
scaling the paper uses), while (a) and (c) reveal that the published
fractions were lightly rounded — the exact optimum has minimax loss
168/415, and the exact interaction corner is 68/83 (the paper prints
9/11 = 0.8182 vs the true 0.8193).

Run:  python examples/table1_exact.py
"""

from repro.analysis.report import render_table1
from repro.analysis.tables import reproduce_table1


def main() -> None:
    reproduction = reproduce_table1()
    print(render_table1(reproduction))

    # Programmatic access to the same artifacts:
    assert reproduction.universality_gap == 0
    assert (
        reproduction.geometric.post_process(reproduction.interaction_kernel)
        == reproduction.induced
    )


if __name__ == "__main__":
    main()
