#!/usr/bin/env python3
"""Quickstart: publish one private count and consume it rationally.

This walks the paper's core loop in ~40 lines:

1. deploy the geometric mechanism ``G_{n,alpha}`` (Definition 4) on a
   count query result;
2. model a risk-averse consumer (loss function + side information);
3. let the consumer interact optimally with the deployed mechanism
   (the Section 2.4.3 LP); and
4. verify Theorem 1: that interaction achieves exactly the optimum of
   the consumer's bespoke mechanism (the Section 2.5 LP).

Run:  python examples/quickstart.py
"""

from fractions import Fraction

import repro
from repro.analysis.fractions_fmt import format_matrix, format_value


def main() -> None:
    n = 5                      # database size: results live in {0..5}
    alpha = Fraction(1, 2)     # privacy level (alpha = e^{-epsilon})
    true_count = 3             # the sensitive statistic

    # --- 1. Deploy the universally optimal mechanism -------------------
    mechanism = repro.GeometricMechanism(n, alpha)
    published = mechanism.sample(true_count, rng=None)
    print(f"true count = {true_count}, published = {published}")
    print(f"deployed mechanism is alpha={alpha}-DP:",
          repro.is_differentially_private(mechanism, alpha))

    # --- 2. A rational, risk-averse consumer ---------------------------
    # It tolerates errors linearly and knows the count is at least 2.
    agent = repro.MinimaxAgent(
        repro.AbsoluteLoss(),
        repro.SideInformation.at_least(2, n=n),
        n=n,
        name="analyst",
    )

    # --- 3. Optimal interaction (Section 2.4.3) ------------------------
    interaction = agent.best_interaction(mechanism, exact=True)
    print("\noptimal reinterpretation kernel T:")
    print(format_matrix(interaction.kernel))
    print("worst-case loss after interacting:",
          format_value(interaction.loss),
          f"= {float(interaction.loss):.4f}")

    # --- 4. Theorem 1: this equals the bespoke optimum -----------------
    bespoke = agent.bespoke_mechanism(alpha, exact=True)
    print("bespoke optimal mechanism's loss: ",
          format_value(bespoke.loss),
          f"= {float(bespoke.loss):.4f}")
    assert interaction.loss == bespoke.loss, "Theorem 1 violated?!"
    print("\nTheorem 1 verified: interaction loss == bespoke LP optimum")

    # The agent applies T to the actually-published value:
    estimate = agent.reinterpret(published, interaction.kernel)
    print(f"analyst's final estimate for the published {published}: "
          f"{estimate}")


if __name__ == "__main__":
    main()
