"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so
callers can catch everything the library raises with a single ``except``
clause while still being able to discriminate finer failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "NotStochasticError",
    "NotPrivateError",
    "NotDerivableError",
    "InfeasibleProgramError",
    "UnboundedProgramError",
    "SolverError",
    "SchemaError",
    "QueryError",
    "SideInformationError",
    "LossFunctionError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, range, or type)."""


class NotStochasticError(ValidationError):
    """A matrix expected to be row-stochastic is not.

    Attributes
    ----------
    row:
        Index of the first offending row, if known.
    """

    def __init__(self, message: str, *, row: int | None = None) -> None:
        super().__init__(message)
        self.row = row


class NotPrivateError(ReproError):
    """A mechanism does not satisfy the requested differential privacy.

    Attributes
    ----------
    witness:
        A ``(row, column)`` pair exhibiting the violated ratio constraint,
        if known.
    """

    def __init__(
        self, message: str, *, witness: tuple[int, int] | None = None
    ) -> None:
        super().__init__(message)
        self.witness = witness


class NotDerivableError(ReproError):
    """A mechanism cannot be derived from the geometric mechanism.

    Raised by the strict factorization APIs; carries the three-entry
    characterization witness of Theorem 2 when available.

    Attributes
    ----------
    witness:
        ``(row, column)`` of the middle entry violating
        ``(1 + a^2) * x2 >= a * (x1 + x3)``, if known.
    """

    def __init__(
        self, message: str, *, witness: tuple[int, int] | None = None
    ) -> None:
        super().__init__(message)
        self.witness = witness


class SolverError(ReproError):
    """A linear-programming backend failed to produce a solution."""


class InfeasibleProgramError(SolverError):
    """The linear program has no feasible point."""


class UnboundedProgramError(SolverError):
    """The linear program is unbounded below."""


class SchemaError(ValidationError):
    """A database row does not conform to its schema."""


class QueryError(ReproError):
    """A query could not be evaluated against a database."""


class SideInformationError(ValidationError):
    """Side information is empty or outside the result range."""


class LossFunctionError(ValidationError):
    """A loss function violates the model's assumptions.

    The paper requires ``l(i, r)`` to be monotone non-decreasing in
    ``|i - r|`` for every fixed ``i`` (Section 2.3).
    """
