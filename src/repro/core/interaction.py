"""Optimal consumer interaction with a deployed mechanism (Section 2.4.3).

A rational minimax consumer observing output ``r`` from a deployed
mechanism ``y`` may reinterpret it through a row-stochastic matrix ``T``,
inducing the mechanism ``x = y @ T``. The *optimal interaction* minimizes
the consumer's worst-case loss over its side-information set:

.. math::

   \\min_{T \\text{ stochastic}} \\; \\max_{i \\in S}
   \\; \\sum_{r'} l(i, r') \\, (y T)_{i, r'}

which this module solves as the paper's LP: an epigraph variable ``d``
bounds each row loss, ``T`` rows sum to one, and all entries are
non-negative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import SideInformationError, ValidationError
from ..losses.base import loss_matrix
from ..solvers.base import LinearProgram, choose_backend
from ..solvers.cache import resolve_cache
from ..validation import is_exact_array
from .mechanism import Mechanism

__all__ = ["InteractionResult", "optimal_interaction", "normalize_side_information"]


def normalize_side_information(side_information, n: int) -> list[int]:
    """Normalize side information to a sorted list of admissible results.

    ``None`` means no side information (the full range ``{0..n}``);
    otherwise any iterable of integers within ``[0, n]``.
    """
    if side_information is None:
        return list(range(n + 1))
    members = sorted({int(i) for i in side_information})
    if not members:
        raise SideInformationError("side information must be non-empty")
    if members[0] < 0 or members[-1] > n:
        raise SideInformationError(
            f"side information {members} falls outside [0, {n}]"
        )
    return members


@dataclass(frozen=True)
class InteractionResult:
    """Outcome of an optimal-interaction solve.

    Attributes
    ----------
    kernel:
        The optimal reinterpretation matrix ``T`` (row-stochastic).
    induced:
        The induced mechanism ``y @ T``.
    loss:
        The achieved minimax loss ``max_{i in S} E[l]``.
    per_input_loss:
        Expected loss of the induced mechanism at each ``i`` in ``S``.
    deployed:
        The deployed mechanism the consumer interacted with.
    backend:
        LP backend used.
    """

    kernel: np.ndarray
    induced: Mechanism
    loss: object
    per_input_loss: dict[int, object]
    deployed: Mechanism
    backend: str


def optimal_interaction(
    deployed: Mechanism,
    loss,
    side_information=None,
    *,
    backend=None,
    exact: bool | None = None,
    solve_cache=None,
) -> InteractionResult:
    """Solve the Section 2.4.3 LP for the optimal interaction.

    Parameters
    ----------
    deployed:
        The published mechanism ``y`` the consumer observes.
    loss:
        A :class:`~repro.losses.LossFunction` or explicit loss matrix.
    side_information:
        Iterable of results the consumer knows to be possible, or
        ``None`` for no side information.
    backend:
        Explicit LP backend; chosen automatically when omitted.
    exact:
        Force exact (Fraction) or float arithmetic; inferred from the
        deployed mechanism by default.
    solve_cache:
        Persistent solve cache (see
        :func:`repro.core.optimal.optimal_mechanism`): a
        :class:`~repro.solvers.cache.SolveCache`, a directory, ``None``
        for the process default, or ``False`` to disable. Keyed by the
        canonical content of this interaction LP.

    Returns
    -------
    InteractionResult

    Examples
    --------
    >>> from fractions import Fraction as F
    >>> from repro.core.geometric import GeometricMechanism
    >>> from repro.losses import AbsoluteLoss
    >>> g = GeometricMechanism(3, F(1, 4))
    >>> result = optimal_interaction(g, AbsoluteLoss(), {0, 1, 2, 3})
    >>> result.induced.n
    3
    """
    if not isinstance(deployed, Mechanism):
        deployed = Mechanism(deployed)
    n = deployed.n
    members = normalize_side_information(side_information, n)
    table = loss_matrix(loss, n)
    if exact is None:
        exact = deployed.is_exact and is_exact_array(table)
    if exact:
        deployed_exact = deployed.to_exact()
        y = deployed_exact.matrix
    else:
        y = deployed.to_float().matrix
    size = n + 1

    # Variable layout: T[r, r'] at index r * size + r'; epigraph d last.
    num_vars = size * size + 1
    d_index = size * size
    program = LinearProgram(num_vars)
    program.set_objective([(d_index, 1)])
    for i in members:
        terms = []
        for r in range(size):
            weight_row = y[i, r]
            if weight_row == 0:
                continue
            for r_prime in range(size):
                coeff = weight_row * table[i, r_prime]
                if coeff != 0:
                    terms.append((r * size + r_prime, coeff))
        terms.append((d_index, -1))
        program.add_le(terms, 0)
    for r in range(size):
        program.add_eq(
            [(r * size + r_prime, 1) for r_prime in range(size)], 1
        )
    cache = resolve_cache(solve_cache)
    key = cache.key(program) if cache is not None else None
    solution = cache.get_key(key) if cache is not None else None
    if solution is None:
        if backend is None:
            backend = choose_backend(exact=exact, size_hint=num_vars)
        solution = backend.solve(program)
        if cache is not None:
            cache.put_key(key, solution)

    flat = solution.values[: size * size]
    if exact:
        # Exact backends hand back Fractions; a flat object-array fill
        # replaces the old per-entry double loop.
        kernel = np.empty((size, size), dtype=object)
        kernel.ravel()[:] = flat
    else:
        kernel = np.asarray(flat, dtype=float).reshape(size, size)
        kernel = np.clip(kernel, 0.0, None)
        kernel = kernel / kernel.sum(axis=1, keepdims=True)
    induced = (deployed.to_exact() if exact else deployed.to_float()).post_process(
        kernel, name="induced"
    )
    per_input = {i: induced.expected_loss(table, i) for i in members}
    achieved = max(per_input.values())
    return InteractionResult(
        kernel=kernel,
        induced=induced,
        loss=achieved,
        per_input_loss=per_input,
        deployed=deployed,
        backend=solution.backend,
    )
