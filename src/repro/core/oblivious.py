"""Obliviousness is without loss of generality (Appendix A, Lemma 6).

A *non-oblivious* mechanism may base its output distribution on the whole
database, not just the query result. Appendix A shows this buys nothing:
averaging the distributions over each equivalence class
``E(i) = {d : f(d) = i}`` yields an oblivious mechanism that is still
alpha-DP and whose minimax loss is no larger.

This module makes the argument executable on an explicit toy domain:
rows are bits (1 = satisfies the count predicate), databases are tuples
in ``{0,1}^n``, and the count query is the sum. That domain realizes the
combinatorial regularity the paper's proof uses — every database with
count ``i`` has the same number of neighbors with count ``i +- 1``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..exceptions import NotPrivateError, ValidationError
from ..losses.base import loss_matrix
from ..sampling.rng import ensure_generator
from ..validation import ATOL, check_alpha, check_result_range, is_exact_array
from .geometric import geometric_matrix
from .interaction import normalize_side_information
from .mechanism import Mechanism

__all__ = [
    "enumerate_databases",
    "database_neighbors",
    "NonObliviousMechanism",
    "random_nonoblivious_mechanism",
]


def enumerate_databases(n: int) -> list[tuple[int, ...]]:
    """All ``2^n`` bit-row databases of size ``n`` (lexicographic)."""
    n = check_result_range(n)
    return list(itertools.product((0, 1), repeat=n))


def database_neighbors(database: tuple[int, ...]):
    """Yield every database differing from ``database`` in one row."""
    for position, bit in enumerate(database):
        yield database[:position] + (1 - bit,) + database[position + 1 :]


class NonObliviousMechanism:
    """A mechanism keyed by the full database rather than the count.

    Parameters
    ----------
    n:
        Database size (rows are bits; count = number of ones).
    rows:
        Mapping from each database tuple to its output distribution over
        ``{0..n}`` (any 1-D array-like of length ``n+1``).
    """

    def __init__(self, n: int, rows: dict) -> None:
        self.n = check_result_range(n)
        databases = enumerate_databases(self.n)
        missing = [d for d in databases if d not in rows]
        if missing:
            raise ValidationError(
                f"missing distributions for {len(missing)} databases, "
                f"first: {missing[0]}"
            )
        self._rows: dict[tuple[int, ...], np.ndarray] = {}
        for database in databases:
            row = np.asarray(rows[database])
            if row.shape != (self.n + 1,):
                raise ValidationError(
                    f"distribution for {database} must have length "
                    f"{self.n + 1}, got shape {row.shape}"
                )
            total = sum(row.tolist())
            exact = is_exact_array(np.atleast_2d(row))
            if exact:
                if total != 1 or any(v < 0 for v in row.tolist()):
                    raise ValidationError(
                        f"distribution for {database} is not a probability "
                        "vector"
                    )
            else:
                row = row.astype(float)
                if abs(float(row.sum()) - 1.0) > 1e-7 or (row < -ATOL).any():
                    raise ValidationError(
                        f"distribution for {database} is not a probability "
                        "vector"
                    )
            self._rows[database] = row
        self._all_exact = all(
            is_exact_array(np.atleast_2d(row)) for row in self._rows.values()
        )

    # ------------------------------------------------------------------
    def count(self, database: tuple[int, ...]) -> int:
        """The count-query result ``f(d)`` (number of ones)."""
        return int(sum(database))

    def distribution(self, database: tuple[int, ...]) -> np.ndarray:
        """Output distribution for ``database`` (copy)."""
        return self._rows[tuple(database)].copy()

    def assert_differentially_private(
        self, alpha, *, atol: float = ATOL
    ) -> None:
        """Check Section 2.1's definition over all neighboring databases."""
        check_alpha(alpha, allow_endpoints=True)
        # A float slack would poison exact comparisons (Fraction + 0.0 is
        # a float); exact mechanisms are checked exactly.
        slack = 0 if self._all_exact else atol
        for database, row in self._rows.items():
            for neighbor in database_neighbors(database):
                other = self._rows[neighbor]
                for r in range(self.n + 1):
                    if other[r] + slack < alpha * row[r]:
                        raise NotPrivateError(
                            f"databases {database} ~ {neighbor}, output "
                            f"{r}: {other[r]} < alpha * {row[r]}",
                            witness=(self.count(database), r),
                        )

    def is_differentially_private(self, alpha, *, atol: float = ATOL) -> bool:
        """Boolean form of :meth:`assert_differentially_private`."""
        try:
            self.assert_differentially_private(alpha, atol=atol)
        except NotPrivateError:
            return False
        return True

    # ------------------------------------------------------------------
    def is_oblivious(self, *, atol: float = ATOL) -> bool:
        """Whether equal-count databases already share a distribution."""
        by_count: dict[int, np.ndarray] = {}
        for database, row in self._rows.items():
            count = self.count(database)
            if count not in by_count:
                by_count[count] = row
                continue
            reference = by_count[count]
            values = np.asarray(row, dtype=float)
            if not np.allclose(
                values, np.asarray(reference, dtype=float), atol=atol
            ):
                return False
        return True

    def obliviate(self) -> Mechanism:
        """Appendix A's averaging construction.

        Returns the oblivious mechanism ``x'[i] = avg_{f(d)=i} x[d]``.
        Exact when the rows are exact.
        """
        size = self.n + 1
        groups: dict[int, list[np.ndarray]] = {i: [] for i in range(size)}
        for database, row in self._rows.items():
            groups[self.count(database)].append(row)
        exact = all(
            is_exact_array(np.atleast_2d(row))
            for rows in groups.values()
            for row in rows
        )
        matrix = np.empty((size, size), dtype=object if exact else float)
        for i in range(size):
            stack = groups[i]
            count = len(stack)
            for r in range(size):
                total = sum(row[r] for row in stack)
                matrix[i, r] = (
                    Fraction(total) / count if exact else float(total) / count
                )
        return Mechanism(matrix, name="obliviated")

    def worst_case_loss(self, loss, side_information=None):
        """Objective (5) of the paper: worst case over databases.

        ``max_{d : f(d) in S} sum_r x[d, r] l(f(d), r)``.
        """
        table = loss_matrix(loss, self.n)
        members = set(normalize_side_information(side_information, self.n))
        worst = None
        for database, row in self._rows.items():
            count = self.count(database)
            if count not in members:
                continue
            value = sum(
                table[count, r] * row[r] for r in range(self.n + 1)
            )
            if worst is None or value > worst:
                worst = value
        if worst is None:
            raise ValidationError(
                "no database has a count inside the side information"
            )
        return worst

    def __repr__(self) -> str:
        return f"<NonObliviousMechanism n={self.n} ({len(self._rows)} dbs)>"


def random_nonoblivious_mechanism(
    n: int,
    alpha: float,
    rng=None,
    *,
    mix: float = 0.3,
    jitter: float = 0.2,
) -> NonObliviousMechanism:
    """Sample a genuinely non-oblivious alpha-DP mechanism.

    Construction: start from the strictly-interior base
    ``B = (1 - mix) G_{n,alpha} + mix * uniform`` (whose privacy
    constraints all hold with slack), then multiply each database's row
    by independent noise ``1 + jitter * u`` and renormalize, shrinking
    ``jitter`` geometrically until the perturbed mechanism passes the
    neighbor-wise DP check. Used by the Appendix A benchmark.
    """
    n = check_result_range(n)
    alpha = float(alpha)
    check_alpha(alpha)
    if not 0 < mix < 1:
        raise ValidationError(f"mix must be in (0, 1), got {mix}")
    if not 0 < jitter < 1:
        raise ValidationError(f"jitter must be in (0, 1), got {jitter}")
    rng = ensure_generator(rng)
    size = n + 1
    base = (1.0 - mix) * np.asarray(
        geometric_matrix(n, alpha), dtype=float
    ) + mix / size
    databases = enumerate_databases(n)
    noise = {d: rng.random(size) for d in databases}
    scale = jitter
    for _ in range(40):
        rows = {}
        for database in databases:
            row = base[sum(database)] * (1.0 + scale * noise[database])
            rows[database] = row / row.sum()
        candidate = NonObliviousMechanism(n, rows)
        if candidate.is_differentially_private(alpha, atol=0.0):
            if candidate.is_oblivious():
                # Degenerate draw (all-equal noise); re-draw the noise.
                noise = {d: rng.random(size) for d in databases}
                continue
            return candidate
        scale /= 2.0
    raise ValidationError(
        "failed to sample a non-oblivious DP mechanism; try a larger alpha"
    )
