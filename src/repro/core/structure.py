"""Structural analysis of optimal mechanisms (Lemma 5).

Lemma 5: for every monotone loss there is an optimal mechanism ``x`` such
that each adjacent row pair ``(i, i+1)`` splits into a prefix of columns
where the *lower* privacy constraint is tight (``x[i+1,j] = a x[i,j]``),
a suffix where the *upper* one is tight (``x[i,j] = a x[i+1,j]``), and at
most one free column in between: there exist ``c1, c2`` with

* ``x[i+1, j] = alpha * x[i, j]`` for all ``j <= c1``,
* ``x[i, j] = alpha * x[i+1, j]`` for all ``j >= c2``, and
* ``c2 - c1 in {1, 2}``.

(The paper indexes columns from 1; here columns are 0-based, so ``c1``
is the last index of the prefix and ``c2`` the first index of the
suffix, with an empty prefix encoded as ``c1 = -1`` and an empty suffix
as ``c2 = n + 1`` — the gap condition is unchanged.)

This module checks the pattern on a given mechanism; the library's
benchmarks verify it on lexicographically-refined LP optima, which is
exactly the class of optima the lemma constructs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from ..validation import is_exact_array
from .mechanism import Mechanism

__all__ = ["RowPairStructure", "StructureReport", "analyze_structure"]


@dataclass(frozen=True)
class RowPairStructure:
    """Structure of one adjacent row pair.

    Attributes
    ----------
    row:
        Upper row index ``i`` (the pair is ``(i, i+1)``).
    c1:
        Last column of the lower-tight prefix (``-1`` when empty).
    c2:
        First column of the upper-tight suffix (``n+1`` when empty).
    conforms:
        Whether the Lemma 5 pattern holds for this pair.
    """

    row: int
    c1: int
    c2: int
    conforms: bool


@dataclass(frozen=True)
class StructureReport:
    """Lemma 5 conformance report for a whole mechanism."""

    pairs: tuple[RowPairStructure, ...]
    conforms: bool

    def violating_rows(self) -> list[int]:
        """Upper row indices of non-conforming pairs."""
        return [pair.row for pair in self.pairs if not pair.conforms]


def _is_close(left, right, *, exact: bool, atol: float) -> bool:
    if exact:
        return left == right
    return abs(float(left) - float(right)) <= atol


def analyze_structure(
    mechanism: Mechanism, alpha, *, atol: float = 1e-7
) -> StructureReport:
    """Check Lemma 5's two-boundary pattern on every adjacent row pair.

    Parameters
    ----------
    mechanism:
        The mechanism to analyze (typically a refined LP optimum).
    alpha:
        The privacy level whose constraints define tightness.
    atol:
        Tolerance for float mechanisms (ignored for exact ones).
    """
    if not isinstance(mechanism, Mechanism):
        mechanism = Mechanism(mechanism)
    matrix = mechanism.matrix
    exact = is_exact_array(matrix)
    n = mechanism.n
    size = n + 1
    pairs: list[RowPairStructure] = []
    for i in range(n):
        upper, lower = matrix[i], matrix[i + 1]
        # Longest prefix with the lower constraint tight.
        c1 = -1
        for j in range(size):
            if _is_close(
                lower[j], alpha * upper[j], exact=exact, atol=atol
            ):
                c1 = j
            else:
                break
        # Longest suffix with the upper constraint tight.
        c2 = size
        for j in range(size - 1, -1, -1):
            if _is_close(
                upper[j], alpha * lower[j], exact=exact, atol=atol
            ):
                c2 = j
            else:
                break
        # The greedy longest prefix/suffix minimizes the gap. Lemma 5
        # requires *some* valid (c1, c2) with gap 1 or 2; shrinking an
        # over-long prefix/suffix is always allowed, so any gap <= 2
        # certifies conformance (gap <= 0 happens when zero entries make
        # both constraints tight simultaneously).
        gap = c2 - c1
        conforms = gap <= 2
        pairs.append(
            RowPairStructure(row=i, c1=c1, c2=c2, conforms=conforms)
        )
    return StructureReport(
        pairs=tuple(pairs), conforms=all(p.conforms for p in pairs)
    )
