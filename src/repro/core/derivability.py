"""Derivability from the geometric mechanism (Definition 3, Theorem 2).

A mechanism ``M`` is *derivable* from a deployed mechanism ``Y`` when
``M = Y @ T`` for some row-stochastic ``T`` (the consumer applies ``T``
as randomized post-processing). Because ``G_{n,alpha}`` is non-singular
(Lemma 1) and generalized stochastic matrices form a group under
multiplication, the candidate factor ``T = G^{-1} M`` is unique and
automatically has unit row sums; derivability therefore reduces to
``T >= 0``.

Theorem 2 makes that sign condition explicit. Using the tridiagonal
inverse of ``G'`` (see :mod:`repro.linalg.toeplitz`), each row of ``T``
is a three-entry stencil of ``M``'s rows:

* ``T[0]   = (M[0]   - a M[1])   / (1 - a)``
* ``T[r]   = ((1+a^2) M[r] - a (M[r-1] + M[r+1])) / (1-a)^2`` (interior)
* ``T[m-1] = (M[m-1] - a M[m-2]) / (1 - a)``

so ``T >= 0`` iff (i) the two boundary conditions — which are exactly the
differential-privacy inequalities at the extreme rows — and (ii) the
interior three-entry condition ``(1+a^2) x2 >= a (x1 + x3)`` hold down
every column. This module exposes both the fast closed-form factorization
and the condition-by-condition certificate.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..exceptions import NotDerivableError, ValidationError
from ..linalg.rational import RationalMatrix
from ..validation import as_fraction, check_alpha, is_exact_array
from .characterization import three_entry_value
from .geometric import GeometricMechanism, column_scaling, geometric_matrix
from .mechanism import Mechanism

__all__ = [
    "derivation_factor",
    "DerivabilityReport",
    "check_derivability",
    "is_derivable_from_geometric",
    "derive_mechanism",
    "compose_with_geometric",
    "privacy_chain_kernel",
]


def _as_matrix(mechanism) -> np.ndarray:
    if isinstance(mechanism, Mechanism):
        return mechanism.matrix
    if isinstance(mechanism, RationalMatrix):
        return mechanism.to_numpy()
    matrix = np.asarray(mechanism)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(
            f"mechanism must be a square matrix, got shape "
            f"{getattr(matrix, 'shape', None)}"
        )
    if matrix.dtype != object:
        matrix = matrix.astype(float)
    return matrix


def derivation_factor(mechanism, alpha) -> np.ndarray:
    """Compute ``T = G_{n,alpha}^{-1} @ M`` in closed form.

    The result always has unit row sums (stochastic-group fact); it is a
    valid post-processing exactly when it is entrywise non-negative.
    Exact (Fraction) output when both ``mechanism`` and ``alpha`` are
    exact; float64 otherwise.
    """
    matrix = _as_matrix(mechanism)
    size = matrix.shape[0]
    if size < 2:
        raise ValidationError("mechanism must cover at least two results")
    exact = is_exact_array(matrix)
    if exact and isinstance(alpha, (Fraction, int)) and not isinstance(alpha, bool):
        alpha = as_fraction(alpha, name="alpha")
        one = Fraction(1)
    else:
        alpha = float(alpha)
        matrix = matrix.astype(float)
        exact = False
        one = 1.0
    check_alpha(alpha)
    out = np.empty_like(matrix)
    # Row 0 and row m-1 use the boundary stencil; interior rows the
    # three-entry stencil. Divisors fold in the column scaling between
    # G and G' (see module docstring).
    out[0] = (matrix[0] - alpha * matrix[1]) / (one - alpha)
    out[size - 1] = (matrix[size - 1] - alpha * matrix[size - 2]) / (
        one - alpha
    )
    interior_divisor = (one - alpha) * (one - alpha)
    for r in range(1, size - 1):
        out[r] = (
            (one + alpha * alpha) * matrix[r]
            - alpha * (matrix[r - 1] + matrix[r + 1])
        ) / interior_divisor
    return out


@dataclass(frozen=True)
class DerivabilityReport:
    """Outcome of a Theorem 2 derivability check.

    Attributes
    ----------
    derivable:
        Whether ``M = G @ T`` for a row-stochastic ``T``.
    factor:
        The unique candidate factor ``T = G^{-1} M`` (unit row sums;
        non-negative iff derivable).
    witness:
        ``(row, column)`` of the first negative entry of ``T`` when not
        derivable — for interior rows this pinpoints the middle entry of
        the violated three-entry condition — else ``None``.
    min_entry:
        The smallest entry of ``T`` (>= 0 iff derivable; its magnitude
        measures how badly the characterization fails).
    """

    derivable: bool
    factor: np.ndarray
    witness: tuple[int, int] | None
    min_entry: object


def check_derivability(
    mechanism, alpha, *, atol: float = 1e-9
) -> DerivabilityReport:
    """Run Theorem 2's characterization and return a full report.

    ``atol`` is the tolerated negativity for float inputs (exact inputs
    are checked exactly).
    """
    factor = derivation_factor(mechanism, alpha)
    exact = is_exact_array(factor)
    slack = 0 if exact else atol
    witness = None
    min_entry = factor[0, 0]
    for i in range(factor.shape[0]):
        for j in range(factor.shape[1]):
            if factor[i, j] < min_entry:
                min_entry = factor[i, j]
            if witness is None and factor[i, j] < -slack:
                witness = (i, j)
    return DerivabilityReport(
        derivable=witness is None,
        factor=factor,
        witness=witness,
        min_entry=min_entry,
    )


def is_derivable_from_geometric(mechanism, alpha, *, atol: float = 1e-9) -> bool:
    """Whether ``mechanism`` can be derived from ``G_{n,alpha}``.

    Theorem 2: true iff the mechanism is alpha-DP at the boundary rows and
    every column satisfies the three-entry condition. Implemented via the
    closed-form factor; the equivalence with the entry-wise conditions is
    property-tested.
    """
    return check_derivability(mechanism, alpha, atol=atol).derivable


def derive_mechanism(mechanism, alpha, *, atol: float = 1e-9) -> np.ndarray:
    """Return the stochastic factor ``T`` with ``M = G @ T``, or raise.

    Raises
    ------
    NotDerivableError
        When the mechanism fails Theorem 2's characterization; the error
        carries the witness entry.
    """
    report = check_derivability(mechanism, alpha, atol=atol)
    if not report.derivable:
        i, j = report.witness
        matrix = _as_matrix(mechanism)
        if 0 < i < matrix.shape[0] - 1:
            value = three_entry_value(
                alpha, matrix[i - 1, j], matrix[i, j], matrix[i + 1, j]
            )
            detail = (
                f"three-entry condition fails at column {j}, rows "
                f"{i - 1}..{i + 1}: (1+a^2)x2 - a(x1+x3) = {value}"
            )
        else:
            detail = (
                f"boundary privacy condition fails at row {i}, column {j}"
            )
        raise NotDerivableError(
            f"mechanism is not derivable from G(alpha={alpha}): {detail}",
            witness=report.witness,
        )
    factor = report.factor
    if not is_exact_array(factor):
        # Clean tiny float negatives so the factor is usable as a kernel.
        factor = np.clip(factor.astype(float), 0.0, None)
        factor = factor / factor.sum(axis=1, keepdims=True)
    return factor


def compose_with_geometric(n: int, alpha, factor) -> np.ndarray:
    """The derived mechanism ``G_{n,alpha} @ T`` — the inverse direction
    of :func:`derive_mechanism`.

    ``factor`` is a row-stochastic post-processing matrix ``T``; the
    result is the mechanism a consumer induces by applying ``T`` to the
    geometric mechanism's output. ``derive_mechanism(compose_with_geometric
    (n, alpha, T), alpha) == T`` exactly (Lemma 1: ``G`` is
    non-singular), which the test-suite asserts. This is the map the
    factor-space (Theorem 2 reparameterized) LP pipeline uses to carry a
    solved factor back to mechanism space.

    Exact (``Fraction``) output when both inputs are exact; float64
    otherwise. The exact product walks only the non-zero entries of
    ``T`` — optimal factors are sparse (Table 1(c) style), so this stays
    near ``O(n^2)`` instead of the dense ``O(n^3)``.
    """
    matrix = _as_matrix(factor)
    size = matrix.shape[0]
    if size != n + 1:
        raise ValidationError(
            f"factor must be {(n + 1, n + 1)} for n={n}, got {matrix.shape}"
        )
    exact = (
        is_exact_array(matrix)
        and isinstance(alpha, (Fraction, int))
        and not isinstance(alpha, bool)
    )
    if not exact:
        return geometric_matrix(n, float(alpha)) @ matrix.astype(float)
    geometric = geometric_matrix(n, as_fraction(alpha, name="alpha"))
    out = np.full((size, size), Fraction(0), dtype=object)
    for k in range(size):
        row = matrix[k]
        for r in range(size):
            weight = row[r]
            if weight != 0:
                out[:, r] = out[:, r] + geometric[:, k] * weight
    return out


def privacy_chain_kernel(n: int, alpha, beta) -> np.ndarray:
    """Lemma 3's kernel ``T_{alpha,beta}`` with ``G_beta = G_alpha @ T``.

    Requires ``alpha <= beta`` (privacy can only be *added*); for
    ``alpha > beta`` the factor has negative entries and
    :class:`NotDerivableError` is raised — the direction-dependence the
    paper's Lemma 3 asserts.

    Exact output for exact parameters. The identity ``G_alpha @ T ==
    G_beta`` is verified exactly in the test-suite.
    """
    check_alpha(alpha)
    check_alpha(beta)
    target = GeometricMechanism(n, beta)
    return derive_mechanism(target, alpha)


def _scaled_factor_rows(n: int, alpha) -> list:
    """Internal: the per-row divisors relating ``T`` to ``G'^{-1} M``.

    Exposed for white-box tests that validate the closed-form stencil
    against an explicit exact inverse; see also :func:`column_scaling`.
    """
    scaling = column_scaling(n, alpha)
    return [1 / factor for factor in scaling]
