"""The polytope of alpha-DP mechanisms, and samples from it.

For fixed ``n`` and ``alpha``, the oblivious alpha-DP mechanisms form a
polytope: row-stochasticity equalities plus Definition 2's ratio
inequalities. The paper's optimality statements quantify over this whole
set, so testing them well requires *generic* members, not just the
geometric mechanism and its post-processings (which, by Theorem 2, are a
strict subset — see Appendix B).

:func:`random_private_mechanism` samples vertices of the polytope by
minimizing a random linear objective over it — every call returns an
extreme point, and varying the objective reaches all of them. The
dominance property this enables (benchmarked in
``bench_dominance.py``): for every alpha-DP mechanism ``y`` and every
minimax consumer, interacting with the geometric mechanism is at least
as good as interacting with ``y``.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..exceptions import ValidationError
from ..sampling.rng import ensure_generator
from ..solvers.base import LinearProgram, choose_backend
from ..validation import as_fraction, check_alpha, check_result_range
from .mechanism import Mechanism

__all__ = ["dp_polytope_lp", "random_private_mechanism"]


def dp_polytope_lp(n: int, alpha, objective) -> LinearProgram:
    """Build ``min objective . x`` over the alpha-DP polytope.

    Variable layout: ``x[i, r]`` at index ``i * (n+1) + r``. The
    ``objective`` is a dense iterable of ``(n+1)^2`` coefficients.
    """
    n = check_result_range(n)
    check_alpha(alpha)
    size = n + 1
    coefficients = list(objective)
    if len(coefficients) != size * size:
        raise ValidationError(
            f"objective must have {size * size} coefficients, "
            f"got {len(coefficients)}"
        )
    program = LinearProgram(size * size)
    program.set_objective(
        [(k, c) for k, c in enumerate(coefficients) if c != 0]
    )
    for i in range(n):
        for r in range(size):
            upper = i * size + r
            lower = (i + 1) * size + r
            program.add_le([(upper, -1), (lower, alpha)], 0)
            program.add_le([(lower, -1), (upper, alpha)], 0)
    for i in range(size):
        program.add_eq([(i * size + r, 1) for r in range(size)], 1)
    return program


def random_private_mechanism(
    n: int,
    alpha,
    rng=None,
    *,
    exact: bool = True,
    backend=None,
) -> Mechanism:
    """Sample a vertex of the alpha-DP polytope.

    A random integer objective is minimized over the polytope; the
    optimal basic solution is an extreme point. Exact mode keeps the
    vertex coordinates as Fractions so downstream identities stay exact.
    """
    n = check_result_range(n)
    rng = ensure_generator(rng)
    size = n + 1
    if exact:
        alpha = as_fraction(alpha, name="alpha")
        coefficients = [
            Fraction(int(rng.integers(-50, 51)), 7)
            for _ in range(size * size)
        ]
    else:
        alpha = float(alpha)
        coefficients = list(rng.integers(-50, 51, size * size) / 7.0)
    program = dp_polytope_lp(n, alpha, coefficients)
    if backend is None:
        backend = choose_backend(exact=exact, size_hint=program.num_vars)
    solution = backend.solve(program)
    matrix = np.empty((size, size), dtype=object if exact else float)
    for i in range(size):
        for r in range(size):
            matrix[i, r] = solution.values[i * size + r]
    if not exact:
        matrix = np.clip(matrix.astype(float), 0.0, None)
        matrix = matrix / matrix.sum(axis=1, keepdims=True)
    return Mechanism(matrix, name=f"dp-vertex(alpha={alpha})")
