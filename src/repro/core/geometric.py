"""The geometric mechanism, unbounded and range-restricted.

Two equivalent mechanisms from the paper:

* **Definition 1** (the *alpha-geometric mechanism*): publish
  ``f(d) + Z`` where ``Z`` is two-sided geometric noise on the integers,
  ``Pr[Z = z] = (1-alpha)/(1+alpha) * alpha^{|z|}``.
* **Definition 4** (the *range-restricted* geometric mechanism
  ``G_{n,alpha}``): the same mechanism with all outputs below 0 collapsed
  to 0 and all outputs above n collapsed to n, so the output range equals
  the result range ``{0..n}`` and the mechanism is a square matrix.

The paper treats the two interchangeably ("we shall refer to both as the
Geometric Mechanism") because each is derivable from the other; this
module provides both, plus the auxiliary matrix ``G'_{n,alpha}`` of
Table 2 used throughout the proofs.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache

import numpy as np

from ..exceptions import ValidationError
from ..linalg.rational import RationalMatrix
from ..linalg.toeplitz import kms_inverse, kms_matrix
from ..sampling.geometric import (
    sample_two_sided_geometric,
    two_sided_geometric_pmf,
)
from ..validation import as_fraction, check_alpha, check_result_range
from .mechanism import Mechanism

__all__ = [
    "geometric_noise_pmf",
    "geometric_matrix",
    "gprime_matrix",
    "gprime_inverse",
    "column_scaling",
    "cached_geometric_mechanism",
    "GeometricMechanism",
    "UnboundedGeometricMechanism",
]


def geometric_noise_pmf(alpha, z: int):
    """Two-sided geometric pmf ``Pr[Z = z]`` from Definition 1.

    Exact when ``alpha`` is a Fraction, float otherwise. Delegates to
    :func:`repro.sampling.geometric.two_sided_geometric_pmf`, the single
    implementation of Definition 1's law.

    Examples
    --------
    >>> geometric_noise_pmf(Fraction(1, 2), 0)
    Fraction(1, 3)
    """
    return two_sided_geometric_pmf(alpha, z)


def _geometric_matrix_loops(n: int, alpha) -> np.ndarray:
    """Reference O(n^2)-Python-ops construction of ``G_{n,alpha}``.

    Kept as the ground truth the vectorized :func:`geometric_matrix` is
    tested and benchmarked against; not part of the public API.
    """
    n = check_result_range(n)
    exact = isinstance(alpha, (Fraction, int)) and not isinstance(alpha, bool)
    if exact:
        alpha = as_fraction(alpha, name="alpha")
    else:
        alpha = float(alpha)
    check_alpha(alpha)
    size = n + 1
    one = Fraction(1) if exact else 1.0
    interior = (one - alpha) / (one + alpha)
    boundary = one / (one + alpha)
    out = np.empty((size, size), dtype=object if exact else float)
    for i in range(size):
        for r in range(size):
            scale = boundary if r in (0, n) else interior
            out[i, r] = scale * alpha ** abs(r - i)
    return out


def geometric_matrix(n: int, alpha) -> np.ndarray:
    """The range-restricted geometric mechanism matrix ``G_{n,alpha}``.

    Definition 4 of the paper: for true result ``k``,

    * interior outputs ``0 < z < n`` get mass
      ``(1-alpha)/(1+alpha) * alpha^{|z-k|}``;
    * the boundary outputs ``z in {0, n}`` absorb the tails and get mass
      ``alpha^{|z-k|} / (1+alpha)``.

    Returns an object-dtype array of Fractions when ``alpha`` is exact
    (Fraction/int), float64 otherwise.

    Both regimes are built from one outer absolute-difference index array.
    The float path is pure numpy broadcasting; the exact path spends only
    O(n) Fraction multiplications on a power table of ``alpha`` before
    fancy-indexing the (immutable, safely shared) entries into place, and
    is exactly equal — Fraction ``==`` — to the quadratic loop
    construction it replaced.
    """
    n = check_result_range(n)
    exact = isinstance(alpha, (Fraction, int)) and not isinstance(alpha, bool)
    if exact:
        alpha = as_fraction(alpha, name="alpha")
    else:
        alpha = float(alpha)
    check_alpha(alpha)
    size = n + 1
    indices = np.arange(size)
    absdiff = np.abs(indices[:, None] - indices[None, :])
    if not exact:
        # O(n) pow evaluations, then pure indexing: alpha ** absdiff
        # would call pow n^2 times for the same n distinct exponents.
        powers = alpha ** np.arange(size, dtype=float)
        out = ((1.0 - alpha) / (1.0 + alpha)) * powers[absdiff]
        out[:, 0] = powers[absdiff[:, 0]] / (1.0 + alpha)
        out[:, n] = powers[absdiff[:, n]] / (1.0 + alpha)
        return out
    interior = (1 - alpha) / (1 + alpha)
    boundary = 1 / (1 + alpha)
    powers = [Fraction(1)]
    for _ in range(n):
        powers.append(powers[-1] * alpha)
    interior_values = np.empty(size, dtype=object)
    boundary_values = np.empty(size, dtype=object)
    for d, power in enumerate(powers):
        interior_values[d] = interior * power
        boundary_values[d] = boundary * power
    out = interior_values[absdiff]
    out[:, 0] = boundary_values[absdiff[:, 0]]
    out[:, n] = boundary_values[absdiff[:, n]]
    return out


def gprime_matrix(n: int, alpha) -> RationalMatrix:
    """The matrix ``G'_{n,alpha}`` of Table 2: ``G'[i, j] = alpha^{|i-j|}``.

    ``G'`` is obtained from ``G_{n,alpha}`` by multiplying columns 0 and n
    by ``(1+alpha)`` and every other column by ``(1+alpha)/(1-alpha)``;
    it is the Kac-Murdock-Szego matrix of :mod:`repro.linalg.toeplitz`.
    Always exact — ``alpha`` must be rational.
    """
    n = check_result_range(n)
    return kms_matrix(n + 1, as_fraction(alpha, name="alpha"))


@lru_cache(maxsize=256)
def _gprime_inverse_cached(n: int, alpha: Fraction) -> RationalMatrix:
    return kms_inverse(n + 1, alpha)


def gprime_inverse(n: int, alpha) -> RationalMatrix:
    """The exact tridiagonal inverse of ``G'_{n,alpha}``, memoized.

    The derivability and Theorem-2 chains repeatedly invert the same
    ``G'`` for one deployment's ``(n, alpha)``; the closed-form
    tridiagonal inverse (see :func:`repro.linalg.toeplitz.kms_inverse`)
    is cached here keyed by ``(n, alpha)``. :class:`RationalMatrix` is
    immutable, so sharing the cached instance is safe.
    """
    n = check_result_range(n)
    alpha = as_fraction(alpha, name="alpha")
    check_alpha(alpha)
    return _gprime_inverse_cached(n, alpha)


@lru_cache(maxsize=256)
def _cached_geometric_mechanism(
    n: int, alpha, exact: bool
) -> "GeometricMechanism":
    return GeometricMechanism(n, alpha)


def cached_geometric_mechanism(n: int, alpha) -> "GeometricMechanism":
    """Memoized :class:`GeometricMechanism` constructor.

    Sweeps and batch pipelines instantiate the deployed mechanism for the
    same ``(n, alpha)`` cell over and over; this returns one shared
    instance per key. The key includes the arithmetic regime — Python
    hashes ``0.5`` and ``Fraction(1, 2)`` identically, but the float and
    exact mechanisms they build are distinct. Treat the result as
    read-only (mechanisms expose no mutating API, and
    :attr:`Mechanism.matrix` already returns a copy). Unhashable
    ``alpha`` values fall back to a fresh instance.
    """
    exact = isinstance(alpha, (Fraction, int)) and not isinstance(alpha, bool)
    try:
        return _cached_geometric_mechanism(n, alpha, exact)
    except TypeError:
        return GeometricMechanism(n, alpha)


def column_scaling(n: int, alpha) -> list[Fraction]:
    """Per-column factors ``c_j`` with ``G = G' @ diag(c)``.

    ``c_0 = c_n = 1/(1+alpha)`` and ``c_j = (1-alpha)/(1+alpha)`` for
    interior columns — the scaling the paper applies between Table 2's two
    matrices.
    """
    n = check_result_range(n)
    alpha = as_fraction(alpha, name="alpha")
    check_alpha(alpha)
    boundary = 1 / (1 + alpha)
    interior = (1 - alpha) / (1 + alpha)
    return [
        boundary if j in (0, n) else interior for j in range(n + 1)
    ]


class GeometricMechanism(Mechanism):
    """The range-restricted geometric mechanism ``G_{n,alpha}``.

    A :class:`~repro.core.mechanism.Mechanism` whose matrix is
    :func:`geometric_matrix`; it additionally remembers its privacy
    parameter :attr:`alpha`.

    Parameters
    ----------
    n:
        Maximum query result.
    alpha:
        Privacy parameter in ``(0, 1)``; a Fraction (or int-free rational)
        yields an exact mechanism, a float yields a float mechanism.

    Examples
    --------
    >>> g = GeometricMechanism(3, Fraction(1, 4))
    >>> g.probability(0, 0)
    Fraction(4, 5)
    """

    __slots__ = ("alpha",)

    def __init__(self, n: int, alpha) -> None:
        matrix = geometric_matrix(n, alpha)
        super().__init__(
            matrix, name=f"G(n={n}, alpha={alpha})", validate=False
        )
        self.alpha = alpha

    def gprime(self) -> RationalMatrix:
        """Return the companion matrix ``G'_{n,alpha}`` (exact only)."""
        if not self.is_exact:
            raise ValidationError(
                "G' is defined for exact alpha; construct the mechanism "
                "with a Fraction alpha"
            )
        return gprime_matrix(self.n, self.alpha)

    def gprime_inverse(self) -> RationalMatrix:
        """Return the cached tridiagonal inverse of ``G'`` (exact only)."""
        if not self.is_exact:
            raise ValidationError(
                "G'^{-1} is defined for exact alpha; construct the "
                "mechanism with a Fraction alpha"
            )
        return gprime_inverse(self.n, self.alpha)


class UnboundedGeometricMechanism:
    """Definition 1's mechanism on the full integer line.

    Unlike :class:`GeometricMechanism` this is not a finite matrix: its
    output ranges over all integers. It supports exact pmf queries,
    sampling, and projection to the range-restricted mechanism
    (:meth:`range_restricted`), which collapses the tails onto
    ``{0, n}`` — the equivalence the paper asserts after Definition 4.
    """

    __slots__ = ("alpha",)

    def __init__(self, alpha) -> None:
        check_alpha(alpha)
        self.alpha = alpha

    def pmf(self, true_result: int, output: int):
        """``Pr[publish `output` | true result]``."""
        return geometric_noise_pmf(self.alpha, output - true_result)

    def tail_mass(self, true_result: int, threshold: int, *, upper: bool):
        """Exact mass of the upper/lower tail at ``threshold`` (inclusive).

        ``upper=True`` gives ``Pr[output >= threshold]``; ``upper=False``
        gives ``Pr[output <= threshold]``. Closed form
        ``alpha^{distance} / (1 + alpha)`` when the threshold is beyond
        the center.
        """
        alpha = self.alpha
        distance = (
            threshold - true_result if upper else true_result - threshold
        )
        if distance <= 0:
            raise ValidationError(
                "tail_mass expects a threshold strictly beyond the true "
                "result on the requested side"
            )
        if isinstance(alpha, Fraction):
            return alpha**distance / (1 + alpha)
        return float(alpha) ** distance / (1.0 + float(alpha))

    def sample(
        self, true_result: int, rng: np.random.Generator | None = None
    ) -> int:
        """Publish ``true_result + Z`` with two-sided geometric ``Z``."""
        rng = np.random.default_rng() if rng is None else rng
        return int(true_result) + sample_two_sided_geometric(
            float(self.alpha), rng
        )

    def range_restricted(self, n: int) -> GeometricMechanism:
        """Collapse outputs outside ``[0, n]`` onto the boundary.

        Returns exactly ``G_{n,alpha}``; the equivalence is verified in
        the test-suite by comparing against :func:`geometric_matrix`.
        """
        return GeometricMechanism(n, self.alpha)

    def clamp(self, value: int, n: int) -> int:
        """The tail-collapsing projection applied to one sample."""
        n = check_result_range(n)
        return min(max(int(value), 0), n)

    def __repr__(self) -> str:
        return f"<UnboundedGeometricMechanism alpha={self.alpha}>"
