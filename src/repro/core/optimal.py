"""Bespoke optimal mechanisms for a known consumer (Section 2.5).

Given a privacy level ``alpha`` and a consumer (loss function + side
information), the minimax-optimal alpha-differentially-private mechanism
solves the paper's LP:

.. math::

   \\min d \\;\\; \\text{s.t.}\\;\\;
   \\sum_r l(i, r)\\, x_{i,r} \\le d \\;\\; (i \\in S), \\quad
   \\alpha x_{i+1,r} \\le x_{i,r} \\le \\tfrac{1}{\\alpha} x_{i+1,r},
   \\quad \\sum_r x_{i,r} = 1, \\quad x \\ge 0.

:func:`optimal_mechanism` also offers the paper's Lemma 5 refinement:
among the (typically non-unique) optima, pick one minimizing the
secondary objective ``L'(x) = sum_{i,r} x[i,r] |i - r|``; the refined
optimum exhibits Lemma 5's two-boundary row structure (checked by
:mod:`repro.core.structure`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache

import numpy as np

from ..exceptions import ValidationError
from ..losses.base import loss_matrix
from ..solvers.base import LinearProgram, LPSolution, choose_backend
from ..solvers.cache import canonical_terms, resolve_cache
from ..solvers.hybrid import certify_solution, reconstruct_vertex
from ..solvers.lexicographic import solve_lexicographic
from ..solvers.scipy_backend import ScipyBackend, solve_with_optimal_basis
from ..validation import as_fraction, check_alpha, check_result_range, is_exact_array
from .derivability import compose_with_geometric
from .geometric import geometric_matrix
from .interaction import normalize_side_information
from .mechanism import Mechanism

__all__ = [
    "OptimalMechanismResult",
    "optimal_mechanism",
    "build_optimal_lp",
    "factor_space_candidate",
    "solve_factor_certified",
]


@dataclass(frozen=True)
class OptimalMechanismResult:
    """Outcome of a bespoke optimal-mechanism solve.

    Attributes
    ----------
    mechanism:
        The optimal alpha-DP mechanism.
    loss:
        Its minimax loss over the consumer's side information.
    alpha:
        The privacy level it was solved for.
    side_information:
        The normalized admissible-result list.
    refined:
        Whether the Lemma 5 lexicographic refinement was applied.
    backend:
        LP backend used.
    """

    mechanism: Mechanism
    loss: object
    alpha: object
    side_information: tuple[int, ...]
    refined: bool
    backend: str


@lru_cache(maxsize=256)
def _shared_constraint_blocks(n: int, alpha, regime: str):
    """Privacy + stochasticity constraint blocks, cached per ``(n, alpha)``.

    These rows depend only on the instance size and the privacy level —
    not on the consumer — so sweeps over many losses/side-information
    sets at one ``(n, alpha)`` reuse a single prebuilt block instead of
    re-materializing ``2 n (n+1) + (n+1)`` constraints per cell. The
    ``regime`` tag keeps exact and float blocks apart even though
    ``Fraction(1, 4) == 0.25`` hashes identically.
    """
    del regime  # participates only in the cache key
    size = n + 1
    # Differential privacy (Definition 2), both directions per column.
    privacy = []
    for i in range(n):
        for r in range(size):
            upper = i * size + r
            lower = (i + 1) * size + r
            privacy.append((((upper, -1), (lower, alpha)), 0))
            privacy.append((((lower, -1), (upper, alpha)), 0))
    # Row-stochasticity.
    stochastic = tuple(
        (tuple((i * size + r, 1) for r in range(size)), 1)
        for i in range(size)
    )
    return tuple(privacy), stochastic


def build_optimal_lp(
    n: int, alpha, table: np.ndarray, members: list[int], *, space: str = "x"
) -> tuple[LinearProgram, int]:
    """Build the Section 2.5 LP; returns ``(program, d_index)``.

    ``space="x"`` (the default) is the paper's program over the
    mechanism entries: variable ``x[i, r]`` at index ``i * (n+1) + r``,
    the epigraph variable ``d`` last, ``|S|`` loss rows, ``2n(n+1)``
    privacy rows, and ``n+1`` stochasticity rows. Only the
    consumer-specific loss rows are built per call; the privacy and
    stochasticity blocks come from a shared per-``(n, alpha)`` cache.

    ``space="factor"`` is the Theorem 2 *derivability
    reparameterization*: every minimax-optimal mechanism factors as
    ``x = G_{n,alpha} @ T`` with ``T`` row-stochastic, so substituting
    that product turns the program into one over ``(T, d)`` — variable
    ``T[k, r]`` at the same ``k * (n+1) + r`` layout — where the entire
    privacy block collapses into plain non-negativity of ``T``. What
    remains is ``|S|`` loss rows (with coefficients
    ``G[i, k] * l(i, r)``) and ``n+1`` row-sum equalities:
    ``Theta(n)`` rows instead of ``Theta(n^2)``. The reformulation is
    never trusted on its own — callers map ``T`` back through
    ``G @ T`` and certify against the ``space="x"`` program (see
    :func:`solve_factor_certified`).
    """
    size = n + 1
    num_vars = size * size + 1
    d_index = size * size
    program = LinearProgram(num_vars)
    program.set_objective([(d_index, 1)])
    if space == "factor":
        geometric = geometric_matrix(n, alpha)
        # Loss epigraph after substituting x = G T:
        # sum_{k,r} G[i,k] l(i,r) T[k,r] - d <= 0 for i in S.
        for i in members:
            weights = geometric[i]
            losses = table[i]
            terms = [
                (k * size + r, weights[k] * losses[r])
                for k in range(size)
                for r in range(size)
                if losses[r] != 0
            ]
            terms.append((d_index, -1))
            program.add_le(terms, 0)
        # T row-stochasticity (G is stochastic and non-singular, so unit
        # x row sums are equivalent to unit T row sums).
        program.extend_eq(
            tuple(
                (tuple((k * size + r, 1) for r in range(size)), 1)
                for k in range(size)
            )
        )
        return program, d_index
    if space != "x":
        raise ValidationError(
            f"space must be 'x' or 'factor', got {space!r}"
        )
    # Worst-case-loss epigraph: sum_r l(i,r) x[i,r] - d <= 0 for i in S.
    for i in members:
        terms = [
            (i * size + r, table[i, r])
            for r in range(size)
            if table[i, r] != 0
        ]
        terms.append((d_index, -1))
        program.add_le(terms, 0)
    regime = "exact" if isinstance(alpha, (int, Fraction)) else "float"
    try:
        privacy, stochastic = _shared_constraint_blocks(n, alpha, regime)
    except TypeError:  # unhashable alpha type: build uncached
        privacy, stochastic = _shared_constraint_blocks.__wrapped__(
            n, alpha, regime
        )
    program.extend_le(privacy)
    program.extend_eq(stochastic)
    return program, d_index


def factor_space_candidate(
    n: int, alpha, table: np.ndarray, members: list[int]
) -> LPSolution | None:
    """Solve the factor-space LP exactly and map back to mechanism space.

    Pipeline: build the ``space="factor"`` program, float-solve it with
    a direct HiGHS call that reports its optimal basis, reconstruct the
    basis's vertex ``(T, d)`` exactly over ``Fraction``, and return the
    candidate in ``space="x"`` layout — ``values`` are the entries of
    ``G @ T`` (via :func:`repro.core.derivability.compose_with_geometric`)
    followed by ``d``. Returns ``None`` when any stage fails (HiGHS
    bindings unavailable, degenerate basis, negative vertex); the result
    is only a *candidate* — nothing downstream may trust it before
    :func:`repro.solvers.hybrid.certify_solution` passes it against the
    full x-space program.
    """
    size = n + 1
    program, d_index = build_optimal_lp(
        n, alpha, table, members, space="factor"
    )
    basis = solve_with_optimal_basis(program)
    if basis is None:
        return None
    vertex = reconstruct_vertex(program, basis)
    if vertex is None:
        return None
    factor = np.empty((size, size), dtype=object)
    factor.ravel()[:] = vertex.values[: size * size]
    derived = compose_with_geometric(n, alpha, factor)
    values = list(derived.ravel())
    values.append(vertex.values[d_index])
    return LPSolution(
        values=values, objective=vertex.values[d_index], backend="factor-space"
    )


def solve_factor_certified(
    program: LinearProgram,
    n: int,
    alpha,
    table: np.ndarray,
    members: list[int],
) -> LPSolution | None:
    """Factor-space solve + exact x-space certificate, or ``None``.

    ``program`` must be the ``space="x"`` LP for the same consumer. The
    returned solution carries the certified candidate (so its values are
    a genuine optimal mechanism of the full program, proven by the exact
    primal/dual certificate); ``None`` means the caller should fall back
    to the PR 2 hybrid solve — correctness never rests on the Theorem 2
    reformulation.
    """
    candidate = factor_space_candidate(n, alpha, table, members)
    if candidate is None:
        return None
    return certify_solution(
        program, candidate.values, name="factor-certified"
    )


def _solve_factor_float(
    n: int, alpha: float, table: np.ndarray, members: list[int]
) -> LPSolution | None:
    """Float-regime factor-space solve (no certificate: floats carry a
    tolerance everywhere, so the Theorem 2 reformulation is checked by
    the float sweeps rather than per solve)."""
    size = n + 1
    program, d_index = build_optimal_lp(
        n, alpha, table, members, space="factor"
    )
    solution = ScipyBackend().solve(program)
    kernel = np.asarray(
        solution.values[: size * size], dtype=float
    ).reshape(size, size)
    derived = compose_with_geometric(n, alpha, kernel)
    values = list(derived.ravel())
    values.append(solution.values[d_index])
    return LPSolution(
        values=values,
        objective=solution.values[d_index],
        backend="factor-float",
    )


def _secondary_terms(n: int) -> list[tuple[int, int]]:
    """Sparse terms of the Lemma 5 secondary objective ``L'``."""
    size = n + 1
    return [
        (i * size + r, abs(i - r))
        for i in range(size)
        for r in range(size)
        if i != r
    ]


def optimal_mechanism(
    n: int,
    alpha,
    loss,
    side_information=None,
    *,
    backend=None,
    exact: bool | None = None,
    refine: bool = False,
    space: str = "x",
    solve_cache=None,
) -> OptimalMechanismResult:
    """Solve for the consumer's bespoke optimal alpha-DP mechanism.

    Parameters
    ----------
    n:
        Maximum query result (database size).
    alpha:
        Privacy parameter in ``(0, 1)``; a Fraction keeps the solve exact.
    loss:
        :class:`~repro.losses.LossFunction` or explicit loss matrix.
    side_information:
        Iterable of admissible results, or ``None`` for the full range.
    backend:
        Explicit LP backend; automatic when omitted.
    exact:
        Force exact/float arithmetic; inferred from ``alpha`` and the
        loss by default.
    refine:
        Apply the Lemma 5 lexicographic ``(L, L')`` refinement.
    space:
        ``"x"`` solves the paper's program directly. ``"factor"`` solves
        the Theorem 2 derivability reparameterization (``Theta(n)`` rows
        instead of ``Theta(n^2)``), maps the solved factor back through
        ``G @ T``, and proves the result optimal for the full x-space
        program with the exact primal/dual certificate — falling back to
        the hybrid x-space solve whenever certification fails, so the
        optimum never rests on the reformulation. The achieved loss is
        bit-identical either way; the mechanism itself may be a
        different vertex of the (typically non-unique) optimal face.
    solve_cache:
        Persistent cross-run solve cache: a
        :class:`~repro.solvers.cache.SolveCache`, a cache directory,
        ``None`` to use the process default (``REPRO_CACHE_DIR``), or
        ``False`` to disable. Keyed by the canonical content of the
        x-space program, so ``"x"`` and ``"factor"`` solves share
        entries and stale hits are impossible.

    Examples
    --------
    >>> from fractions import Fraction as F
    >>> from repro.losses import AbsoluteLoss
    >>> result = optimal_mechanism(3, F(1, 4), AbsoluteLoss())
    >>> result.mechanism.n
    3
    """
    n = check_result_range(n)
    check_alpha(alpha)
    if space not in ("x", "factor"):
        raise ValidationError(f"space must be 'x' or 'factor', got {space!r}")
    members = normalize_side_information(side_information, n)
    table = loss_matrix(loss, n)
    if exact is None:
        exact = (
            isinstance(alpha, (Fraction, int))
            and not isinstance(alpha, bool)
            and is_exact_array(table)
        )
    if exact:
        alpha = as_fraction(alpha, name="alpha")
    else:
        alpha = float(alpha)
        table = table.astype(float)
    program, d_index = build_optimal_lp(n, alpha, table, members)
    size = n + 1
    cache = resolve_cache(solve_cache)
    variant_parts = []
    if refine:
        variant_parts.append("refine:" + canonical_terms(_secondary_terms(n)))
    if space == "factor" and not exact:
        # Exact factor solves are certified against the x-space program,
        # so they legitimately share its cache key. Float factor solves
        # are not certified — keep them in their own entry so a
        # ``space="x"`` caller never gets one served back.
        variant_parts.append("factor-float")
    variant = ";".join(variant_parts)
    key = cache.key(program, variant=variant) if cache is not None else None
    solution = cache.get_key(key) if cache is not None else None
    if solution is None:
        if backend is None:
            backend = choose_backend(exact=exact, size_hint=program.num_vars)
        if refine:
            primary = None
            if space == "factor" and exact:
                # The cheap reparameterized solve pins the primary
                # optimum; only the refined stage pays the full LP.
                primary = solve_factor_certified(
                    program, n, alpha, table, members
                )
            slack = 0 if exact else 1e-9
            _, solution = solve_lexicographic(
                program,
                _secondary_terms(n),
                backend,
                slack=slack,
                primary=primary,
            )
        elif space == "factor":
            if exact:
                solution = solve_factor_certified(
                    program, n, alpha, table, members
                )
            else:
                solution = _solve_factor_float(n, alpha, table, members)
            if solution is None:
                solution = backend.solve(program)
        else:
            solution = backend.solve(program)
        if cache is not None:
            cache.put_key(key, solution)

    flat = solution.values[: size * size]
    if exact:
        matrix = np.empty((size, size), dtype=object)
        matrix.ravel()[:] = flat
    else:
        matrix = np.asarray(flat, dtype=float).reshape(size, size)
        matrix = np.clip(matrix, 0.0, None)
        matrix = matrix / matrix.sum(axis=1, keepdims=True)
    mechanism = Mechanism(matrix, name=f"optimal(alpha={alpha})")
    achieved = max(
        mechanism.expected_loss(table, i) for i in members
    )
    return OptimalMechanismResult(
        mechanism=mechanism,
        loss=achieved,
        alpha=alpha,
        side_information=tuple(members),
        refined=bool(refine),
        backend=solution.backend,
    )
