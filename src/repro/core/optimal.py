"""Bespoke optimal mechanisms for a known consumer (Section 2.5).

Given a privacy level ``alpha`` and a consumer (loss function + side
information), the minimax-optimal alpha-differentially-private mechanism
solves the paper's LP:

.. math::

   \\min d \\;\\; \\text{s.t.}\\;\\;
   \\sum_r l(i, r)\\, x_{i,r} \\le d \\;\\; (i \\in S), \\quad
   \\alpha x_{i+1,r} \\le x_{i,r} \\le \\tfrac{1}{\\alpha} x_{i+1,r},
   \\quad \\sum_r x_{i,r} = 1, \\quad x \\ge 0.

:func:`optimal_mechanism` also offers the paper's Lemma 5 refinement:
among the (typically non-unique) optima, pick one minimizing the
secondary objective ``L'(x) = sum_{i,r} x[i,r] |i - r|``; the refined
optimum exhibits Lemma 5's two-boundary row structure (checked by
:mod:`repro.core.structure`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache

import numpy as np

from ..exceptions import ValidationError
from ..losses.base import loss_matrix
from ..solvers.base import LinearProgram, choose_backend
from ..solvers.lexicographic import solve_lexicographic
from ..validation import as_fraction, check_alpha, check_result_range, is_exact_array
from .interaction import normalize_side_information
from .mechanism import Mechanism

__all__ = ["OptimalMechanismResult", "optimal_mechanism", "build_optimal_lp"]


@dataclass(frozen=True)
class OptimalMechanismResult:
    """Outcome of a bespoke optimal-mechanism solve.

    Attributes
    ----------
    mechanism:
        The optimal alpha-DP mechanism.
    loss:
        Its minimax loss over the consumer's side information.
    alpha:
        The privacy level it was solved for.
    side_information:
        The normalized admissible-result list.
    refined:
        Whether the Lemma 5 lexicographic refinement was applied.
    backend:
        LP backend used.
    """

    mechanism: Mechanism
    loss: object
    alpha: object
    side_information: tuple[int, ...]
    refined: bool
    backend: str


@lru_cache(maxsize=256)
def _shared_constraint_blocks(n: int, alpha, regime: str):
    """Privacy + stochasticity constraint blocks, cached per ``(n, alpha)``.

    These rows depend only on the instance size and the privacy level —
    not on the consumer — so sweeps over many losses/side-information
    sets at one ``(n, alpha)`` reuse a single prebuilt block instead of
    re-materializing ``2 n (n+1) + (n+1)`` constraints per cell. The
    ``regime`` tag keeps exact and float blocks apart even though
    ``Fraction(1, 4) == 0.25`` hashes identically.
    """
    del regime  # participates only in the cache key
    size = n + 1
    # Differential privacy (Definition 2), both directions per column.
    privacy = []
    for i in range(n):
        for r in range(size):
            upper = i * size + r
            lower = (i + 1) * size + r
            privacy.append((((upper, -1), (lower, alpha)), 0))
            privacy.append((((lower, -1), (upper, alpha)), 0))
    # Row-stochasticity.
    stochastic = tuple(
        (tuple((i * size + r, 1) for r in range(size)), 1)
        for i in range(size)
    )
    return tuple(privacy), stochastic


def build_optimal_lp(
    n: int, alpha, table: np.ndarray, members: list[int]
) -> tuple[LinearProgram, int]:
    """Build the Section 2.5 LP; returns ``(program, d_index)``.

    Variable layout: ``x[i, r]`` at index ``i * (n+1) + r``; the epigraph
    variable ``d`` last. Exposed separately so benchmarks can measure LP
    sizes and tests can inspect the constraint system. Only the
    consumer-specific loss rows are built per call; the privacy and
    stochasticity blocks come from a shared per-``(n, alpha)`` cache.
    """
    size = n + 1
    num_vars = size * size + 1
    d_index = size * size
    program = LinearProgram(num_vars)
    program.set_objective([(d_index, 1)])
    # Worst-case-loss epigraph: sum_r l(i,r) x[i,r] - d <= 0 for i in S.
    for i in members:
        terms = [
            (i * size + r, table[i, r])
            for r in range(size)
            if table[i, r] != 0
        ]
        terms.append((d_index, -1))
        program.add_le(terms, 0)
    regime = "exact" if isinstance(alpha, (int, Fraction)) else "float"
    try:
        privacy, stochastic = _shared_constraint_blocks(n, alpha, regime)
    except TypeError:  # unhashable alpha type: build uncached
        privacy, stochastic = _shared_constraint_blocks.__wrapped__(
            n, alpha, regime
        )
    program.extend_le(privacy)
    program.extend_eq(stochastic)
    return program, d_index


def _secondary_terms(n: int) -> list[tuple[int, int]]:
    """Sparse terms of the Lemma 5 secondary objective ``L'``."""
    size = n + 1
    return [
        (i * size + r, abs(i - r))
        for i in range(size)
        for r in range(size)
        if i != r
    ]


def optimal_mechanism(
    n: int,
    alpha,
    loss,
    side_information=None,
    *,
    backend=None,
    exact: bool | None = None,
    refine: bool = False,
) -> OptimalMechanismResult:
    """Solve for the consumer's bespoke optimal alpha-DP mechanism.

    Parameters
    ----------
    n:
        Maximum query result (database size).
    alpha:
        Privacy parameter in ``(0, 1)``; a Fraction keeps the solve exact.
    loss:
        :class:`~repro.losses.LossFunction` or explicit loss matrix.
    side_information:
        Iterable of admissible results, or ``None`` for the full range.
    backend:
        Explicit LP backend; automatic when omitted.
    exact:
        Force exact/float arithmetic; inferred from ``alpha`` and the
        loss by default.
    refine:
        Apply the Lemma 5 lexicographic ``(L, L')`` refinement.

    Examples
    --------
    >>> from fractions import Fraction as F
    >>> from repro.losses import AbsoluteLoss
    >>> result = optimal_mechanism(3, F(1, 4), AbsoluteLoss())
    >>> result.mechanism.n
    3
    """
    n = check_result_range(n)
    check_alpha(alpha)
    members = normalize_side_information(side_information, n)
    table = loss_matrix(loss, n)
    if exact is None:
        exact = (
            isinstance(alpha, (Fraction, int))
            and not isinstance(alpha, bool)
            and is_exact_array(table)
        )
    if exact:
        alpha = as_fraction(alpha, name="alpha")
    else:
        alpha = float(alpha)
        table = table.astype(float)
    program, d_index = build_optimal_lp(n, alpha, table, members)
    size = n + 1
    if backend is None:
        backend = choose_backend(exact=exact, size_hint=program.num_vars)
    if refine:
        slack = 0 if exact else 1e-9
        _, solution = solve_lexicographic(
            program, _secondary_terms(n), backend, slack=slack
        )
    else:
        solution = backend.solve(program)

    flat = solution.values[: size * size]
    if exact:
        matrix = np.empty((size, size), dtype=object)
        matrix.ravel()[:] = flat
    else:
        matrix = np.asarray(flat, dtype=float).reshape(size, size)
        matrix = np.clip(matrix, 0.0, None)
        matrix = matrix / matrix.sum(axis=1, keepdims=True)
    mechanism = Mechanism(matrix, name=f"optimal(alpha={alpha})")
    achieved = max(
        mechanism.expected_loss(table, i) for i in members
    )
    return OptimalMechanismResult(
        mechanism=mechanism,
        loss=achieved,
        alpha=alpha,
        side_information=tuple(members),
        refined=bool(refine),
        backend=solution.backend,
    )
