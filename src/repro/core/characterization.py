"""Closed-form determinants behind Theorem 2 (Lemmas 1 and 2).

The paper's characterization proof computes, via Cramer's rule, the
entries of the factor ``T = G^{-1} M`` as ratios of determinants:
``T[i, j] = det G(i, m_j) / det G`` where ``G(i, x)`` is ``G`` with
column ``i`` replaced by the vector ``x``. Lemma 2 evaluates those
determinants for the column-scaled matrix ``G'`` in closed form:

* ``det G'(0, x)   = (1-a^2)^{m-2} (x_0 - a x_1)``
* ``det G'(m-1, x) = (1-a^2)^{m-2} (x_{m-1} - a x_{m-2})``
* ``det G'(i, x)   = (1-a^2)^{m-2} ((1+a^2) x_i - a (x_{i-1} + x_{i+1}))``
  for interior ``i``

where ``m`` is the matrix size. Lemma 1 is the special case ``x = `` the
original column: ``det G'_{m} = (1-a^2)^{m-1}``. This module exposes the
closed forms and the canonical three-entry condition; the test-suite
cross-checks every formula against brute-force exact determinants.
"""

from __future__ import annotations

from collections.abc import Sequence
from fractions import Fraction

from ..exceptions import ValidationError
from ..linalg.toeplitz import kms_determinant
from ..validation import as_fraction, check_alpha

__all__ = [
    "gprime_determinant",
    "geometric_determinant",
    "replaced_column_determinant",
    "three_entry_value",
    "three_entry_condition",
]


def gprime_determinant(size: int, alpha) -> Fraction:
    """Lemma 1: ``det G'_{size}(alpha) = (1 - alpha^2)^(size-1)``."""
    return kms_determinant(size, alpha)


def geometric_determinant(size: int, alpha) -> Fraction:
    """Exact ``det G_{n,alpha}`` for matrix size ``size = n + 1``.

    ``G`` and ``G'`` differ by column scalings (Table 2):
    ``det G' = (1+a)^2 ((1+a)/(1-a))^(size-2) det G``, hence

    .. math::

       \\det G = \\frac{(1-a^2)^{size-1} (1-a)^{size-2}}{(1+a)^{size}} > 0.
    """
    if size < 2:
        raise ValidationError(f"size must be >= 2, got {size}")
    alpha = as_fraction(alpha, name="alpha")
    check_alpha(alpha)
    return (
        (1 - alpha**2) ** (size - 1)
        * (1 - alpha) ** (size - 2)
        / (1 + alpha) ** size
    )


def replaced_column_determinant(
    size: int, alpha, index: int, column: Sequence
) -> Fraction:
    """Lemma 2's closed form for ``det G'(index, column)``.

    Parameters
    ----------
    size:
        Dimension ``m`` of the square matrix.
    alpha:
        Exact privacy parameter in ``(0, 1)``.
    index:
        Which column of ``G'`` is replaced, in ``{0, ..., size-1}``.
    column:
        The replacement vector ``x`` of length ``size``.
    """
    if size < 2:
        raise ValidationError(f"size must be >= 2, got {size}")
    alpha = as_fraction(alpha, name="alpha")
    check_alpha(alpha)
    if not 0 <= index < size:
        raise ValidationError(
            f"index must lie in [0, {size - 1}], got {index}"
        )
    x = [as_fraction(entry) for entry in column]
    if len(x) != size:
        raise ValidationError(
            f"column must have length {size}, got {len(x)}"
        )
    prefactor = (1 - alpha**2) ** (size - 2)
    if index == 0:
        return prefactor * (x[0] - alpha * x[1])
    if index == size - 1:
        return prefactor * (x[size - 1] - alpha * x[size - 2])
    return prefactor * (
        (1 + alpha**2) * x[index] - alpha * (x[index - 1] + x[index + 1])
    )


def three_entry_value(alpha, x_prev, x_mid, x_next):
    """The canonical three-entry quantity of Theorem 2.

    Returns ``(1 + alpha^2) * x_mid - alpha * (x_prev + x_next)``; the
    characterization requires it to be >= 0 for every three consecutive
    entries of every column. (The paper writes the condition as
    ``(x2 - a x1) >= a (x3 - a x2)``, which rearranges to this symmetric
    form.) Exact when all inputs are exact.
    """
    check_alpha(alpha)
    return (1 + alpha * alpha) * x_mid - alpha * (x_prev + x_next)


def three_entry_condition(
    alpha, x_prev, x_mid, x_next, *, atol: float = 0.0
) -> bool:
    """Whether the three-entry condition holds (with optional float slack)."""
    return three_entry_value(alpha, x_prev, x_mid, x_next) >= -atol
