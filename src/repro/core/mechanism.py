"""Oblivious privacy mechanisms as row-stochastic matrices.

Section 2.2 of the paper restricts attention (without loss of generality,
see Appendix A / :mod:`repro.core.oblivious`) to *oblivious* mechanisms:
probabilistic maps from the true count ``i`` in ``N = {0..n}`` to a
published output ``r`` in ``N``. Such a mechanism is exactly an
``(n+1) x (n+1)`` row-stochastic matrix ``x`` with ``x[i, r] =
Pr[output r | true result i]``.

:class:`Mechanism` wraps such a matrix in either of two numeric regimes:

* *exact* — object-dtype numpy array of :class:`fractions.Fraction`;
  every identity in the paper can then be checked with ``==``;
* *float* — float64 array, used by the scipy LP backend and samplers.

Post-processing (the consumer interactions of Definition 3) is matrix
multiplication on the right: ``x.post_process(T)`` is the mechanism
``x @ T``.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..exceptions import ValidationError
from ..linalg.rational import RationalMatrix
from ..validation import (
    as_fraction,
    check_index,
    check_result_range,
    check_row_stochastic,
    is_exact_array,
)

__all__ = ["Mechanism"]


class Mechanism:
    """An oblivious mechanism over the result range ``{0..n}``.

    Parameters
    ----------
    matrix:
        ``(n+1) x (n+1)`` row-stochastic matrix; nested lists, numpy float
        arrays, object arrays of Fractions, or a
        :class:`~repro.linalg.rational.RationalMatrix`.
    name:
        Optional human-readable label used in reports.
    validate:
        When true (default), verify row-stochasticity on construction.

    Examples
    --------
    >>> from fractions import Fraction as F
    >>> m = Mechanism([[F(1, 2), F(1, 2)], [F(1, 4), F(3, 4)]])
    >>> m.n
    1
    >>> m.probability(0, 1)
    Fraction(1, 2)
    """

    __slots__ = ("_matrix", "_exact", "name")

    def __init__(
        self,
        matrix,
        *,
        name: str | None = None,
        validate: bool = True,
    ) -> None:
        if isinstance(matrix, Mechanism):
            matrix = matrix._matrix
        if isinstance(matrix, RationalMatrix):
            matrix = matrix.to_numpy()
        array = np.asarray(matrix)
        if array.dtype != object:
            array = array.astype(float)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise ValidationError(
                f"mechanism matrix must be square 2-D, got shape "
                f"{array.shape}"
            )
        if array.shape[0] < 2:
            raise ValidationError(
                "mechanism must cover at least the results {0, 1}"
            )
        self._exact = is_exact_array(array)
        if self._exact:
            normalized = np.empty(array.shape, dtype=object)
            for i in range(array.shape[0]):
                for j in range(array.shape[1]):
                    normalized[i, j] = as_fraction(array[i, j])
            array = normalized
        elif array.dtype == object:
            array = array.astype(float)
            self._exact = False
        if validate:
            check_row_stochastic(array, exact=self._exact, name="mechanism")
        self._matrix = array
        self.name = name

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int, *, exact: bool = True) -> "Mechanism":
        """The noiseless mechanism that publishes the true result."""
        n = check_result_range(n)
        if exact:
            matrix = np.empty((n + 1, n + 1), dtype=object)
            for i in range(n + 1):
                for j in range(n + 1):
                    matrix[i, j] = Fraction(int(i == j))
        else:
            matrix = np.eye(n + 1)
        return cls(matrix, name="identity", validate=False)

    @classmethod
    def uniform(cls, n: int, *, exact: bool = True) -> "Mechanism":
        """The fully private mechanism: uniform output, ignores the input."""
        n = check_result_range(n)
        if exact:
            cell = Fraction(1, n + 1)
            matrix = np.empty((n + 1, n + 1), dtype=object)
            matrix[...] = cell
        else:
            matrix = np.full((n + 1, n + 1), 1.0 / (n + 1))
        return cls(matrix, name="uniform", validate=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """A defensive copy of the underlying matrix."""
        return self._matrix.copy()

    @property
    def size(self) -> int:
        """Number of possible results, ``n + 1``."""
        return self._matrix.shape[0]

    @property
    def n(self) -> int:
        """Maximum query result (database size for count queries)."""
        return self._matrix.shape[0] - 1

    @property
    def is_exact(self) -> bool:
        """Whether entries are exact Fractions."""
        return self._exact

    def probability(self, true_result: int, output: int):
        """Return ``Pr[output | true_result]``."""
        i = check_index(true_result, self.n, name="true_result")
        r = check_index(output, self.n, name="output")
        return self._matrix[i, r]

    def distribution(self, true_result: int) -> np.ndarray:
        """Return the output distribution row for ``true_result`` (copy)."""
        i = check_index(true_result, self.n, name="true_result")
        return self._matrix[i].copy()

    def column(self, output: int) -> np.ndarray:
        """Return column ``output`` (copy) — the likelihood of one output."""
        r = check_index(output, self.n, name="output")
        return self._matrix[:, r].copy()

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_float(self) -> "Mechanism":
        """Return a float64 copy (no-op when already float)."""
        if not self._exact:
            return self
        return Mechanism(
            self._matrix.astype(float), name=self.name, validate=False
        )

    def to_exact(self) -> "Mechanism":
        """Return an exact copy; entries must be clean dyadic floats.

        Raises :class:`ValidationError` for entries like ``0.1`` whose
        binary expansion would silently explode into a huge Fraction.
        """
        if self._exact:
            return self
        exact = np.empty(self._matrix.shape, dtype=object)
        for i in range(self.size):
            for j in range(self.size):
                exact[i, j] = as_fraction(
                    float(self._matrix[i, j]), name=f"entry ({i}, {j})"
                )
        return Mechanism(exact, name=self.name, validate=False)

    def to_rational_matrix(self) -> RationalMatrix:
        """Return the matrix as a :class:`RationalMatrix` (must be exact)."""
        if not self._exact:
            raise ValidationError(
                "mechanism is float-valued; call to_exact() first if its "
                "entries are exactly representable"
            )
        return RationalMatrix(self._matrix.tolist())

    # ------------------------------------------------------------------
    # Composition (Definition 3: derivability / post-processing)
    # ------------------------------------------------------------------
    def post_process(self, kernel, *, name: str | None = None) -> "Mechanism":
        """Return the mechanism ``self @ kernel``.

        ``kernel`` is a row-stochastic reinterpretation matrix ``T`` as in
        Definition 3: ``T[r, r']`` is the probability a received output
        ``r`` is reinterpreted as ``r'``. The result is the *induced*
        mechanism ``x[i, r'] = sum_r y[i, r] T[r, r']``.
        """
        kernel = self._coerce_kernel(kernel)
        kernel_exact = is_exact_array(kernel)
        if self._exact and kernel_exact:
            product = np.dot(self._matrix, kernel)
        else:
            left = (
                self._matrix.astype(float) if self._exact else self._matrix
            )
            right = kernel.astype(float) if kernel_exact else kernel
            product = left @ right
        return Mechanism(product, name=name, validate=False)

    def _coerce_kernel(self, kernel) -> np.ndarray:
        if isinstance(kernel, Mechanism):
            kernel = kernel._matrix
        elif isinstance(kernel, RationalMatrix):
            kernel = kernel.to_numpy()
        kernel = np.asarray(kernel)
        if kernel.dtype != object:
            kernel = kernel.astype(float)
        if kernel.shape != self._matrix.shape:
            raise ValidationError(
                f"kernel shape {kernel.shape} does not match mechanism "
                f"shape {self._matrix.shape}"
            )
        check_row_stochastic(kernel, name="kernel")
        return kernel

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(
        self, true_result: int, rng: np.random.Generator | None = None
    ) -> int:
        """Sample one published output for ``true_result``."""
        rng = np.random.default_rng() if rng is None else rng
        row = self.distribution(true_result)
        probabilities = (
            row.astype(float) if self._exact else np.asarray(row, dtype=float)
        )
        # Guard against tiny negative rounding noise before renormalizing.
        probabilities = np.clip(probabilities, 0.0, None)
        probabilities = probabilities / probabilities.sum()
        return int(rng.choice(self.size, p=probabilities))

    def sample_many(
        self,
        true_result: int,
        count: int,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample ``count`` i.i.d. published outputs for ``true_result``."""
        if count < 0:
            raise ValidationError(f"count must be >= 0, got {count}")
        rng = np.random.default_rng() if rng is None else rng
        row = self.distribution(true_result)
        probabilities = np.clip(np.asarray(row, dtype=float), 0.0, None)
        probabilities = probabilities / probabilities.sum()
        return rng.choice(self.size, size=count, p=probabilities)

    # ------------------------------------------------------------------
    # Loss evaluation (Section 2.3)
    # ------------------------------------------------------------------
    def expected_loss(self, loss, true_result: int):
        """Expected loss ``sum_r l(i, r) x[i, r]`` for a fixed ``i``.

        The loss table is memoized per ``(loss, n, regime)`` (see
        :func:`repro.losses.base.cached_loss_matrix`), so repeated
        evaluations — notably :meth:`worst_case_loss` — no longer rebuild
        it per call. Exact mechanisms keep the original term-by-term
        Fraction sum (bit-identical results); float mechanisms take a
        vectorized dot-product fast path.
        """
        from ..losses.base import cached_loss_matrix  # deferred: avoids cycle

        i = check_index(true_result, self.n, name="true_result")
        if self._exact:
            table = cached_loss_matrix(loss, self.n)
            return sum(
                table[i, r] * self._matrix[i, r] for r in range(self.size)
            )
        table = cached_loss_matrix(loss, self.n, as_float=True)
        return float(table[i] @ self._matrix[i])

    def _admissible_members(self, side_information) -> list[int]:
        members = (
            range(self.size)
            if side_information is None
            else sorted(
                check_index(i, self.n, name="side information member")
                for i in side_information
            )
        )
        members = list(members)
        if not members:
            raise ValidationError("side information must be non-empty")
        return members

    def worst_case_loss(self, loss, side_information=None):
        """Minimax disutility ``max_{i in S} sum_r l(i, r) x[i, r]``.

        ``side_information`` may be an iterable of admissible results or
        ``None`` for the full range (Equation 1 of the paper). Float
        mechanisms evaluate all rows at once as
        ``(L * X).sum(axis=1)`` and take the max over the admissible set;
        exact mechanisms share one cached loss table across the row sums.
        """
        members = self._admissible_members(side_information)
        if self._exact:
            return max(self.expected_loss(loss, i) for i in members)
        from ..losses.base import cached_loss_matrix  # deferred: avoids cycle

        table = cached_loss_matrix(loss, self.n, as_float=True)
        if len(members) == self.size:
            row_losses = (table * self._matrix).sum(axis=1)
        else:
            row_losses = (table[members] * self._matrix[members]).sum(axis=1)
        return float(row_losses.max())

    # ------------------------------------------------------------------
    # Comparison / display
    # ------------------------------------------------------------------
    def approx_equals(self, other: "Mechanism", *, atol: float = 1e-9) -> bool:
        """Entrywise comparison, exact when both mechanisms are exact."""
        if not isinstance(other, Mechanism):
            return NotImplemented
        if self._matrix.shape != other._matrix.shape:
            return False
        if self._exact and other._exact:
            return bool((self._matrix == other._matrix).all())
        left = np.asarray(self._matrix, dtype=float)
        right = np.asarray(other._matrix, dtype=float)
        return bool(np.allclose(left, right, atol=atol, rtol=0.0))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mechanism):
            return NotImplemented
        return (
            self._exact == other._exact
            and self._matrix.shape == other._matrix.shape
            and bool((self._matrix == other._matrix).all())
        )

    def __hash__(self) -> int:
        if not self._exact:
            raise TypeError("float-valued mechanisms are unhashable")
        return hash(tuple(map(tuple, self._matrix.tolist())))

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        regime = "exact" if self._exact else "float"
        return f"<Mechanism{label} n={self.n} ({regime})>"
