"""Differential-privacy predicates and measurements.

Definition 2 of the paper: an oblivious mechanism ``x`` for count queries
is *alpha-differentially private* (``alpha`` in ``[0, 1]``) when every
pair of adjacent rows satisfies, entrywise,

.. math:: \\frac{1}{\\alpha} x_{i,r} \\ge x_{i+1,r} \\ge \\alpha\\, x_{i,r}.

The parameter direction is the paper's: ``alpha = 1`` is absolute
privacy, ``alpha = 0`` is vacuous. The more common epsilon convention is
``alpha = exp(-epsilon)``; converters are provided.

This module offers boolean predicates, asserting variants that carry a
violation witness, the *tightest* privacy level of a matrix, and the
group-privacy bound for rows ``k`` apart.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from ..exceptions import NotPrivateError, ValidationError
from ..linalg.rational import RationalMatrix
from ..validation import ATOL, check_alpha, is_exact_array
from .mechanism import Mechanism

__all__ = [
    "alpha_to_epsilon",
    "epsilon_to_alpha",
    "assert_differentially_private",
    "is_differentially_private",
    "tightest_alpha",
    "group_privacy_alpha",
]


def alpha_to_epsilon(alpha) -> float:
    """Convert the paper's ``alpha`` to the standard ``epsilon = ln(1/alpha)``."""
    check_alpha(alpha, allow_endpoints=True)
    if alpha == 0:
        return math.inf
    return float(-math.log(float(alpha)))


def epsilon_to_alpha(epsilon: float) -> float:
    """Convert standard ``epsilon >= 0`` to the paper's ``alpha = e^{-eps}``."""
    epsilon = float(epsilon)
    if not epsilon >= 0:
        raise ValidationError(f"epsilon must be >= 0, got {epsilon!r}")
    return math.exp(-epsilon)


def _as_matrix(mechanism) -> np.ndarray:
    if isinstance(mechanism, Mechanism):
        return mechanism.matrix
    if isinstance(mechanism, RationalMatrix):
        return mechanism.to_numpy()
    matrix = np.asarray(mechanism)
    if matrix.ndim != 2:
        raise ValidationError(
            f"mechanism must be a 2-D matrix, got ndim={matrix.ndim}"
        )
    return matrix


def assert_differentially_private(
    mechanism, alpha, *, atol: float = ATOL
) -> None:
    """Raise :class:`NotPrivateError` unless ``mechanism`` is alpha-DP.

    Exact matrices are checked exactly; float matrices use a slack of
    ``atol`` on each ratio inequality. The raised error carries the
    ``(row, column)`` witness of the first violated constraint.
    """
    matrix = _as_matrix(mechanism)
    check_alpha(alpha, allow_endpoints=True)
    exact = is_exact_array(matrix)
    slack = 0 if exact else atol
    rows, cols = matrix.shape
    for i in range(rows - 1):
        for r in range(cols):
            upper, lower = matrix[i, r], matrix[i + 1, r]
            if lower + slack < alpha * upper:
                raise NotPrivateError(
                    f"x[{i + 1},{r}] = {lower} < alpha * x[{i},{r}] "
                    f"= {alpha * upper}",
                    witness=(i, r),
                )
            if upper + slack < alpha * lower:
                raise NotPrivateError(
                    f"x[{i},{r}] = {upper} < alpha * x[{i + 1},{r}] "
                    f"= {alpha * lower}",
                    witness=(i, r),
                )


def is_differentially_private(mechanism, alpha, *, atol: float = ATOL) -> bool:
    """Boolean form of :func:`assert_differentially_private`."""
    try:
        assert_differentially_private(mechanism, alpha, atol=atol)
    except NotPrivateError:
        return False
    return True


def tightest_alpha(mechanism):
    """Return the largest ``alpha`` for which ``mechanism`` is alpha-DP.

    For each adjacent pair of entries the binding ratio is
    ``min(a/b, b/a)``; the tightest level is the minimum over all pairs.
    Conventions for zeros: two zeros impose no constraint; a zero paired
    with a positive entry forces ``alpha = 0`` (the mechanism is only
    vacuously private).

    Returns an exact Fraction for exact matrices, a float otherwise.
    The result can exceed the construction parameter only if the
    mechanism is strictly more private than advertised; for
    ``G_{n,alpha}`` it equals ``alpha`` exactly (tested).
    """
    matrix = _as_matrix(mechanism)
    exact = is_exact_array(matrix)
    best = Fraction(1) if exact else 1.0
    rows, cols = matrix.shape
    for i in range(rows - 1):
        for r in range(cols):
            upper, lower = matrix[i, r], matrix[i + 1, r]
            if upper == 0 and lower == 0:
                continue
            if upper == 0 or lower == 0:
                return Fraction(0) if exact else 0.0
            if exact:
                ratio = min(
                    Fraction(upper) / Fraction(lower),
                    Fraction(lower) / Fraction(upper),
                )
            else:
                upper_f, lower_f = float(upper), float(lower)
                ratio = min(upper_f / lower_f, lower_f / upper_f)
            best = min(best, ratio)
    return best


def group_privacy_alpha(alpha, distance: int):
    """Privacy level between rows ``distance`` apart: ``alpha**distance``.

    Follows by chaining Definition 2 across ``distance`` adjacent pairs
    (group privacy for count queries, where a coalition of ``distance``
    individuals changes the count by at most ``distance``).
    """
    check_alpha(alpha, allow_endpoints=True)
    if isinstance(distance, bool) or not isinstance(distance, (int, np.integer)):
        raise ValidationError(f"distance must be an integer, got {distance!r}")
    if distance < 0:
        raise ValidationError(f"distance must be >= 0, got {distance}")
    return alpha ** int(distance)
