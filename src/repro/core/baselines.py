"""Baseline mechanisms for utility comparisons.

The paper's headline claim is that the geometric mechanism, *after
optimal consumer interaction*, dominates every other alpha-DP mechanism
for every minimax consumer. The benchmark suite demonstrates the
domination against two standard baselines built here:

* :func:`truncated_laplace_mechanism` — the continuous Laplace mechanism
  of Dwork et al. (the paper's [5]), rounded to integers and clamped to
  ``[0, n]``; the classical alternative the geometric mechanism
  discretizes.
* :func:`randomized_response_mechanism` — publish the true count with
  probability ``p``, else a uniform result, with ``p`` maximized subject
  to alpha-DP.

Both are alpha-DP by construction (verified in tests), so the comparison
is apples-to-apples at a fixed privacy level.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from ..exceptions import ValidationError
from ..validation import as_fraction, check_alpha, check_result_range
from .mechanism import Mechanism

__all__ = [
    "truncated_laplace_mechanism",
    "randomized_response_mechanism",
]


def _laplace_cdf(t: float, scale: float) -> float:
    """CDF of the zero-centered Laplace distribution with ``scale`` b."""
    if t < 0:
        return 0.5 * math.exp(t / scale)
    return 1.0 - 0.5 * math.exp(-t / scale)


def truncated_laplace_mechanism(n: int, alpha: float) -> Mechanism:
    """Rounded-and-clamped Laplace mechanism at privacy level ``alpha``.

    Adds continuous Laplace noise with scale ``b = 1 / ln(1/alpha)``
    (i.e. epsilon = ln(1/alpha); for sensitivity-1 count queries this is
    epsilon-DP), rounds to the nearest integer, and clamps to ``[0, n]``.
    Rounding and clamping are post-processing, so alpha-DP is preserved.

    The probability of output ``r`` for true count ``i``:

    * interior ``r``: Laplace mass of ``[r - 1/2, r + 1/2]`` around ``i``;
    * ``r = 0``: mass of ``(-inf, 1/2]``; ``r = n``: mass of
      ``[n - 1/2, inf)``.
    """
    n = check_result_range(n)
    alpha = float(alpha)
    check_alpha(alpha)
    epsilon = -math.log(alpha)
    scale = 1.0 / epsilon
    size = n + 1
    matrix = np.zeros((size, size))
    for i in range(size):
        for r in range(size):
            low = -math.inf if r == 0 else (r - 0.5) - i
            high = math.inf if r == n else (r + 0.5) - i
            low_cdf = 0.0 if low == -math.inf else _laplace_cdf(low, scale)
            high_cdf = 1.0 if high == math.inf else _laplace_cdf(high, scale)
            matrix[i, r] = high_cdf - low_cdf
    matrix = matrix / matrix.sum(axis=1, keepdims=True)
    return Mechanism(matrix, name=f"laplace(alpha={alpha})")


def randomized_response_mechanism(n: int, alpha) -> Mechanism:
    """Truth-with-probability-p, else uniform, at the tight alpha-DP p.

    With ``m = n + 1`` outputs, the mechanism's rows are
    ``x[i, r] = p * 1[r == i] + (1 - p) / m``. The binding privacy
    constraint is between a diagonal entry and the adjacent row's same
    column, giving the largest admissible

    .. math:: p = \\frac{1 - \\alpha}{\\alpha m + 1 - \\alpha}.

    Exact for Fraction ``alpha``.
    """
    n = check_result_range(n)
    exact = isinstance(alpha, (Fraction, int)) and not isinstance(alpha, bool)
    if exact:
        alpha = as_fraction(alpha, name="alpha")
    else:
        alpha = float(alpha)
    check_alpha(alpha)
    size = n + 1
    one = Fraction(1) if exact else 1.0
    p = (one - alpha) / (alpha * size + one - alpha)
    background = (one - p) / size
    matrix = np.empty((size, size), dtype=object if exact else float)
    for i in range(size):
        for r in range(size):
            matrix[i, r] = background + (p if i == r else 0)
    return Mechanism(matrix, name=f"randomized-response(alpha={alpha})")
