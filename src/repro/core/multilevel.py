"""Multi-level, collusion-resistant release (Algorithm 1, Lemmas 3-4).

To serve consumers at privacy levels ``alpha_1 < ... < alpha_k`` (least
to most private), Algorithm 1 publishes a *chain* of results: ``r_1`` is
drawn from ``G_{n,alpha_1}`` on the true count, and each subsequent
``r_{i+1}`` is drawn by re-randomizing ``r_i`` through the kernel
``T_{alpha_i, alpha_{i+1}} = G_{alpha_i}^{-1} G_{alpha_{i+1}}`` (a
stochastic matrix by Lemma 3). Marginally each ``r_i`` is distributed as
``G_{n,alpha_i}``; jointly, everything after ``r_1`` is a function of
``r_1`` plus independent coins, so a coalition learns no more about the
database than its least-private member (Lemma 4).

The naive alternative — ``k`` independent geometric releases — leaks:
the joint ratio between adjacent counts degrades to the *product*
``alpha_1 ... alpha_k``. :func:`naive_independent_release_alpha` computes
that degradation for the contrast benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..exceptions import ValidationError
from ..sampling.rng import ensure_generator
from ..validation import (
    as_fraction,
    check_alpha,
    check_index,
    check_result_range,
    is_exact_array,
)
from .derivability import privacy_chain_kernel
from .geometric import GeometricMechanism
from .mechanism import Mechanism

__all__ = [
    "MultiLevelRelease",
    "CollusionCheck",
    "naive_independent_release_alpha",
]


@dataclass(frozen=True)
class CollusionCheck:
    """Result of verifying Lemma 4 for one coalition.

    Attributes
    ----------
    coalition:
        Indices (0-based into the level list) of colluding consumers.
    required_alpha:
        The level the joint view must satisfy: ``alpha`` of the
        least-private member, ``min(coalition)``'s level.
    achieved_alpha:
        The tightest privacy level of the coalition's joint mechanism.
    holds:
        ``achieved_alpha >= required_alpha``.
    """

    coalition: tuple[int, ...]
    required_alpha: object
    achieved_alpha: object
    holds: bool


class MultiLevelRelease:
    """Algorithm 1: correlated release at multiple privacy levels.

    Parameters
    ----------
    n:
        Maximum query result.
    alphas:
        Strictly increasing privacy levels ``alpha_1 < ... < alpha_k``
        (Fractions keep everything exact).

    Examples
    --------
    >>> from fractions import Fraction as F
    >>> release = MultiLevelRelease(3, [F(1, 4), F(1, 2)])
    >>> results = release.release(2, rng=42)
    >>> len(results)
    2
    """

    def __init__(self, n: int, alphas) -> None:
        self.n = check_result_range(n)
        levels = list(alphas)
        if len(levels) < 1:
            raise ValidationError("at least one privacy level is required")
        for alpha in levels:
            check_alpha(alpha)
        if any(b <= a for a, b in zip(levels, levels[1:])):
            raise ValidationError(
                "privacy levels must be strictly increasing "
                "(least private first)"
            )
        self.alphas = tuple(levels)
        self._mechanisms = tuple(
            GeometricMechanism(self.n, alpha) for alpha in levels
        )
        self._kernels = tuple(
            privacy_chain_kernel(self.n, a, b)
            for a, b in zip(levels, levels[1:])
        )

    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return len(self.alphas)

    def mechanism(self, level: int) -> GeometricMechanism:
        """The marginal mechanism ``G_{n, alpha_level}`` (0-based level)."""
        return self._mechanisms[level]

    def kernel(self, level: int) -> np.ndarray:
        """The kernel carrying level ``level`` to ``level + 1``."""
        return self._kernels[level]

    # ------------------------------------------------------------------
    def release(self, true_result: int, rng=None) -> list[int]:
        """Draw one correlated release ``[r_1, ..., r_k]``.

        ``r_1`` samples ``G_{alpha_1}`` on the true result; each later
        ``r_{i+1}`` samples row ``r_i`` of the chain kernel.
        """
        true_result = check_index(true_result, self.n, name="true_result")
        rng = ensure_generator(rng)
        results = [self._mechanisms[0].sample(true_result, rng)]
        for kernel in self._kernels:
            row = np.asarray(
                kernel[results[-1]], dtype=float
            )
            row = np.clip(row, 0.0, None)
            row = row / row.sum()
            results.append(int(rng.choice(self.n + 1, p=row)))
        return results

    def release_many(
        self, true_result: int, count: int, rng=None
    ) -> np.ndarray:
        """Draw ``count`` independent correlated releases, shape (count, k)."""
        if count < 0:
            raise ValidationError(f"count must be >= 0, got {count}")
        rng = ensure_generator(rng)
        return np.array(
            [self.release(true_result, rng) for _ in range(count)]
        )

    # ------------------------------------------------------------------
    def joint_distribution(self, true_result: int) -> dict[tuple[int, ...], object]:
        """Exact joint law of ``(r_1, ..., r_k)`` given the true result.

        Enumerates all ``(n+1)^k`` tuples — intended for the small
        instances used in verification. Exact when the levels are exact.
        """
        true_result = check_index(true_result, self.n, name="true_result")
        size = self.n + 1
        first = self._mechanisms[0].matrix[true_result]
        joint: dict[tuple[int, ...], object] = {}
        for tuple_outputs in itertools.product(range(size), repeat=self.num_levels):
            probability = first[tuple_outputs[0]]
            for step, kernel in enumerate(self._kernels):
                probability = probability * kernel[
                    tuple_outputs[step], tuple_outputs[step + 1]
                ]
                if probability == 0:
                    break
            if probability != 0:
                joint[tuple_outputs] = probability
        return joint

    def coalition_mechanism(self, coalition) -> tuple[list[tuple[int, ...]], np.ndarray]:
        """The joint mechanism seen by a coalition.

        Returns ``(outputs, matrix)`` where ``outputs`` enumerates the
        coalition's possible joint observations and ``matrix[i, t]`` is
        the probability of observation ``outputs[t]`` when the true
        result is ``i``.
        """
        members = sorted({int(c) for c in coalition})
        if not members:
            raise ValidationError("coalition must be non-empty")
        if members[0] < 0 or members[-1] >= self.num_levels:
            raise ValidationError(
                f"coalition {members} references unknown levels"
            )
        size = self.n + 1
        outputs = list(itertools.product(range(size), repeat=len(members)))
        index = {pattern: t for t, pattern in enumerate(outputs)}
        exact = all(
            isinstance(alpha, (Fraction, int)) for alpha in self.alphas
        )
        matrix = np.zeros(
            (size, len(outputs)), dtype=object if exact else float
        )
        if exact:
            matrix[...] = Fraction(0)
        for i in range(size):
            for pattern, probability in self.joint_distribution(i).items():
                observed = tuple(pattern[m] for m in members)
                matrix[i, index[observed]] += probability
        return outputs, matrix

    def verify_collusion_resistance(self, coalition) -> CollusionCheck:
        """Verify Lemma 4 for one coalition by direct computation.

        The coalition's joint mechanism must be ``alpha_{min}``-DP where
        ``min`` is its least-private member.
        """
        from .privacy import tightest_alpha  # deferred: avoids cycle

        members = tuple(sorted({int(c) for c in coalition}))
        _, matrix = self.coalition_mechanism(members)
        required = self.alphas[members[0]]
        achieved = tightest_alpha(matrix)
        return CollusionCheck(
            coalition=members,
            required_alpha=required,
            achieved_alpha=achieved,
            holds=achieved >= required,
        )

    def verify_all_coalitions(self) -> list[CollusionCheck]:
        """Verify Lemma 4 for every non-empty coalition (2^k - 1 checks)."""
        checks = []
        for r in range(1, self.num_levels + 1):
            for coalition in itertools.combinations(range(self.num_levels), r):
                checks.append(self.verify_collusion_resistance(coalition))
        return checks

    def __repr__(self) -> str:
        return (
            f"<MultiLevelRelease n={self.n} "
            f"alphas={[str(a) for a in self.alphas]}>"
        )


def naive_independent_release_alpha(alphas) -> object:
    """Joint privacy level of k *independent* geometric releases.

    Each release is ``alpha_i``-DP; because the noise draws are
    independent, the joint likelihood ratio between adjacent counts can
    reach ``prod_i alpha_i`` — strictly worse than ``alpha_1`` whenever
    ``k > 1``. This is the collusion degradation Algorithm 1 avoids.
    """
    levels = list(alphas)
    if not levels:
        raise ValidationError("at least one privacy level is required")
    product = None
    for alpha in levels:
        check_alpha(alpha)
        product = alpha if product is None else product * alpha
    return product
