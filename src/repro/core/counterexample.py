"""Appendix B: a private mechanism not derivable from the geometric one.

The paper exhibits a concrete ``1/2``-differentially-private mechanism
``M`` on ``{0..3}`` that fails Theorem 2's characterization — at column 1,
rows 0..2, the three-entry quantity equals
``(1 + 1/4) * 1/9 - 1/2 * (2/9 + 2/9) = -1/12`` (the paper writes it as
``-0.75/9``, the same number). This module stores the matrix exactly and
re-derives both facts.
"""

from __future__ import annotations

from fractions import Fraction

from ..validation import as_fraction_matrix
from .characterization import three_entry_value
from .derivability import check_derivability
from .mechanism import Mechanism
from .privacy import is_differentially_private

__all__ = [
    "APPENDIX_B_ALPHA",
    "appendix_b_mechanism",
    "verify_appendix_b",
]

#: The privacy level of the appendix's example.
APPENDIX_B_ALPHA = Fraction(1, 2)

_APPENDIX_B_ROWS = (
    (Fraction(1, 9), Fraction(2, 9), Fraction(4, 9), Fraction(2, 9)),
    (Fraction(2, 9), Fraction(1, 9), Fraction(2, 9), Fraction(4, 9)),
    (Fraction(4, 9), Fraction(2, 9), Fraction(1, 9), Fraction(2, 9)),
    (Fraction(13, 18), Fraction(1, 9), Fraction(1, 18), Fraction(1, 9)),
)

#: The paper's stated value of the violated three-entry quantity.
APPENDIX_B_VIOLATION = Fraction(-1, 12)


def appendix_b_mechanism() -> Mechanism:
    """The exact Appendix B mechanism as a :class:`Mechanism`."""
    return Mechanism(
        as_fraction_matrix(_APPENDIX_B_ROWS), name="appendix-B"
    )


def verify_appendix_b() -> dict:
    """Re-derive every claim the appendix makes about the example.

    Returns a dict with keys:

    * ``is_private`` — M is 1/2-DP (must be True);
    * ``derivable`` — M is derivable from G_{3,1/2} (must be False);
    * ``witness_value`` — the three-entry quantity at column 1,
      rows 0..2 (must equal ``-1/12 = -0.75/9``);
    * ``witness`` — the (row, column) reported by the characterization.
    """
    mechanism = appendix_b_mechanism()
    matrix = mechanism.matrix
    report = check_derivability(mechanism, APPENDIX_B_ALPHA)
    value = three_entry_value(
        APPENDIX_B_ALPHA, matrix[0, 1], matrix[1, 1], matrix[2, 1]
    )
    return {
        "is_private": is_differentially_private(mechanism, APPENDIX_B_ALPHA),
        "derivable": report.derivable,
        "witness_value": value,
        "witness": report.witness,
    }
