"""The paper's primary contribution: mechanisms, LPs, and theorems.

Map from paper section to module:

========================  ==============================================
Paper                     Module
==========================================================================
Definitions 1 & 4         :mod:`repro.core.geometric`
Definition 2 (privacy)    :mod:`repro.core.privacy`
Definition 3 + Theorem 2  :mod:`repro.core.derivability`
Lemmas 1-2                :mod:`repro.core.characterization`
Section 2.4.3 LP          :mod:`repro.core.interaction`
Section 2.5 LP            :mod:`repro.core.optimal`
Lemma 5                   :mod:`repro.core.structure`
Algorithm 1, Lemmas 3-4   :mod:`repro.core.multilevel`
Appendix A                :mod:`repro.core.oblivious`
Appendix B                :mod:`repro.core.counterexample`
(baseline comparators)    :mod:`repro.core.baselines`
==========================================================================
"""

from .baselines import (
    randomized_response_mechanism,
    truncated_laplace_mechanism,
)
from .characterization import (
    geometric_determinant,
    gprime_determinant,
    replaced_column_determinant,
    three_entry_condition,
    three_entry_value,
)
from .counterexample import (
    APPENDIX_B_ALPHA,
    appendix_b_mechanism,
    verify_appendix_b,
)
from .derivability import (
    DerivabilityReport,
    check_derivability,
    compose_with_geometric,
    derivation_factor,
    derive_mechanism,
    is_derivable_from_geometric,
    privacy_chain_kernel,
)
from .geometric import (
    GeometricMechanism,
    UnboundedGeometricMechanism,
    column_scaling,
    geometric_matrix,
    cached_geometric_mechanism,
    geometric_noise_pmf,
    gprime_inverse,
    gprime_matrix,
)
from .interaction import (
    InteractionResult,
    normalize_side_information,
    optimal_interaction,
)
from .mechanism import Mechanism
from .multilevel import (
    CollusionCheck,
    MultiLevelRelease,
    naive_independent_release_alpha,
)
from .oblivious import (
    NonObliviousMechanism,
    database_neighbors,
    enumerate_databases,
    random_nonoblivious_mechanism,
)
from .optimal import (
    OptimalMechanismResult,
    build_optimal_lp,
    factor_space_candidate,
    optimal_mechanism,
    solve_factor_certified,
)
from .polytope import dp_polytope_lp, random_private_mechanism
from .privacy import (
    alpha_to_epsilon,
    assert_differentially_private,
    epsilon_to_alpha,
    group_privacy_alpha,
    is_differentially_private,
    tightest_alpha,
)
from .structure import RowPairStructure, StructureReport, analyze_structure

__all__ = [
    "Mechanism",
    "GeometricMechanism",
    "UnboundedGeometricMechanism",
    "geometric_matrix",
    "geometric_noise_pmf",
    "gprime_matrix",
    "gprime_inverse",
    "cached_geometric_mechanism",
    "column_scaling",
    "alpha_to_epsilon",
    "epsilon_to_alpha",
    "assert_differentially_private",
    "is_differentially_private",
    "tightest_alpha",
    "group_privacy_alpha",
    "DerivabilityReport",
    "check_derivability",
    "compose_with_geometric",
    "derivation_factor",
    "derive_mechanism",
    "is_derivable_from_geometric",
    "privacy_chain_kernel",
    "three_entry_condition",
    "three_entry_value",
    "gprime_determinant",
    "geometric_determinant",
    "replaced_column_determinant",
    "InteractionResult",
    "optimal_interaction",
    "normalize_side_information",
    "OptimalMechanismResult",
    "optimal_mechanism",
    "build_optimal_lp",
    "factor_space_candidate",
    "solve_factor_certified",
    "dp_polytope_lp",
    "random_private_mechanism",
    "RowPairStructure",
    "StructureReport",
    "analyze_structure",
    "MultiLevelRelease",
    "CollusionCheck",
    "naive_independent_release_alpha",
    "NonObliviousMechanism",
    "enumerate_databases",
    "database_neighbors",
    "random_nonoblivious_mechanism",
    "APPENDIX_B_ALPHA",
    "appendix_b_mechanism",
    "verify_appendix_b",
    "truncated_laplace_mechanism",
    "randomized_response_mechanism",
]
