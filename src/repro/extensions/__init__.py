"""Extensions beyond the paper's single-query scope.

The paper's conclusion poses an open question — "whether similar
guarantees are possible for multiple queries" — and its Section 2.8
surveys the composition obstacles. This subpackage builds the machinery
to *explore* that territory with the library's primitives:

* :mod:`repro.extensions.multiquery` — answering several count queries
  with independent geometric mechanisms: exact joint-privacy accounting
  (levels multiply), budget splitting, and a demonstration that
  per-query universality survives while the joint guarantee degrades —
  the precise sense in which the open problem is open.
"""

from .multiquery import (
    MultiQueryAnswer,
    MultiQueryPublisher,
    compose_alphas,
    split_budget,
)

__all__ = [
    "compose_alphas",
    "split_budget",
    "MultiQueryAnswer",
    "MultiQueryPublisher",
]
