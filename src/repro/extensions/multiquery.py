"""Multiple count queries with independent geometric releases.

The paper treats a single fixed count query; answering ``k`` different
queries about the same database composes privacy loss. For independent
alpha_i-DP mechanisms, an individual present in all query predicates can
shift each count by one, so the joint likelihood ratio is bounded only
by the *product* of the per-query ratios:

.. math:: \\alpha_{joint} = \\prod_i \\alpha_i
          \\quad (\\epsilon_{joint} = \\sum_i \\epsilon_i).

:func:`compose_alphas` and :func:`split_budget` account for this
exactly; :class:`MultiQueryPublisher` wires the accounting to actual
releases through a :class:`~repro.release.ledger.PrivacyLedger`.

What remains open (the paper's concluding question) is *universal
optimality* across queries: per-query, each release is still universally
optimal for every minimax consumer of that query (Theorem 1 applies
verbatim, and :meth:`MultiQueryPublisher.verify_per_query_universality`
re-proves it on demand); jointly, no analogue of the geometric mechanism
is known, and this module makes the degradation measurable rather than
hiding it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.geometric import GeometricMechanism
from ..db.database import Database
from ..db.engine import QueryEngine
from ..db.queries import CountQuery
from ..exceptions import ValidationError
from ..release.ledger import PrivacyLedger
from ..sampling.rng import ensure_generator
from ..validation import check_alpha

__all__ = [
    "compose_alphas",
    "split_budget",
    "MultiQueryAnswer",
    "MultiQueryPublisher",
]


def compose_alphas(alphas):
    """Joint guarantee of independent releases: the exact product."""
    levels = list(alphas)
    if not levels:
        raise ValidationError("alphas must be non-empty")
    product = Fraction(1)
    for alpha in levels:
        check_alpha(alpha)
        product = product * alpha
    return product


def split_budget(total_alpha, count: int):
    """Split a joint budget evenly across ``count`` queries.

    Returns per-query levels ``a`` with ``a**count <= total_alpha``
    (i.e. at least as private jointly as requested). Because equal
    splitting needs a k-th root, the result is a float level unless the
    root happens to be rational; exactness of the *accounting* is
    preserved by re-composing the returned levels.
    """
    check_alpha(total_alpha)
    if count < 1:
        raise ValidationError(f"count must be >= 1, got {count}")
    if count == 1:
        return [total_alpha]
    root = float(total_alpha) ** (1.0 / count)
    # Nudge down so the recomposed product never exceeds the budget.
    while root**count > float(total_alpha):
        root = root * (1 - 1e-12)
    return [root] * count


@dataclass(frozen=True)
class MultiQueryAnswer:
    """One multi-query release.

    Attributes
    ----------
    values:
        Published value per query, in submission order.
    per_query_alpha:
        The level each individual release satisfies.
    joint_alpha:
        The composed guarantee over all releases (product).
    """

    values: tuple[int, ...]
    per_query_alpha: tuple
    joint_alpha: object


class MultiQueryPublisher:
    """Answers several count queries with independent geometric releases.

    Parameters
    ----------
    database:
        The sensitive database.
    joint_floor:
        Optional lower bound on the joint guarantee; releases that would
        cross it raise (via the internal ledger).

    Examples
    --------
    >>> from repro.db import Attribute, Schema, Database, Eq, CountQuery
    >>> schema = Schema([Attribute("sick", "bool"), Attribute("adult", "bool")])
    >>> db = Database(schema, [{"sick": True, "adult": True}] * 3)
    >>> pub = MultiQueryPublisher(db)
    >>> answer = pub.answer(
    ...     [CountQuery(Eq("sick", True)), CountQuery(Eq("adult", True))],
    ...     [Fraction(1, 2), Fraction(1, 2)],
    ...     rng=7,
    ... )
    >>> answer.joint_alpha
    Fraction(1, 4)
    """

    def __init__(self, database: Database, *, joint_floor=0) -> None:
        if not isinstance(database, Database):
            raise ValidationError(
                f"expected a Database, got {type(database).__name__}"
            )
        self._engine = QueryEngine(database)
        self.ledger = PrivacyLedger(floor=joint_floor)

    @property
    def n(self) -> int:
        return self._engine.database.size

    def answer(self, queries, alphas, rng=None) -> MultiQueryAnswer:
        """Release every query at its level; account for the joint cost."""
        queries = list(queries)
        levels = list(alphas)
        if len(queries) != len(levels):
            raise ValidationError(
                f"{len(queries)} queries but {len(levels)} privacy levels"
            )
        if not queries:
            raise ValidationError("at least one query is required")
        for query in queries:
            if not isinstance(query, CountQuery):
                raise ValidationError(
                    "queries must be CountQuery instances"
                )
        rng = ensure_generator(rng)
        # Charge the ledger first: all-or-nothing release.
        joint = compose_alphas(levels)
        if self.ledger.floor != 0:
            cumulative = self.ledger.cumulative_alpha
            for alpha in levels:
                cumulative = cumulative * alpha
            if cumulative < self.ledger.floor:
                from ..release.ledger import BudgetExceededError

                raise BudgetExceededError(
                    f"answering {len(queries)} queries at joint level "
                    f"{joint} would cross the floor {self.ledger.floor}"
                )
        values = []
        for query, alpha in zip(queries, levels):
            result = self._engine.answer_private(query, alpha, rng=rng)
            self.ledger.charge(alpha, label=query.describe())
            values.append(result.value)
        return MultiQueryAnswer(
            values=tuple(values),
            per_query_alpha=tuple(levels),
            joint_alpha=joint,
        )

    def verify_per_query_universality(
        self, alpha, loss, side_information=None
    ) -> bool:
        """Theorem 1 still holds per query in the multi-query setting.

        Each individual release is a geometric mechanism on its own count
        range; any consumer of that query gets its bespoke optimum by
        rational interaction, independent of the other queries.
        """
        from ..core.interaction import optimal_interaction
        from ..core.optimal import optimal_mechanism

        deployed = GeometricMechanism(self.n, alpha)
        interaction = optimal_interaction(
            deployed, loss, side_information, exact=True
        )
        bespoke = optimal_mechanism(
            self.n, alpha, loss, side_information, exact=True
        )
        return interaction.loss == bespoke.loss
