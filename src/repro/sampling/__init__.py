"""Random sampling utilities.

Samplers for the noise distributions used by the library's mechanisms,
plus seeding helpers. All samplers take an explicit
:class:`numpy.random.Generator` so experiments are reproducible.
"""

from .geometric import (
    sample_geometric_failures,
    sample_two_sided_geometric,
    two_sided_geometric_pmf,
)
from .rng import ensure_generator

__all__ = [
    "ensure_generator",
    "sample_geometric_failures",
    "sample_two_sided_geometric",
    "two_sided_geometric_pmf",
]
