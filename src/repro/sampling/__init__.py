"""Random sampling utilities.

Samplers for the noise distributions used by the library's mechanisms,
plus seeding helpers. All samplers take an explicit
:class:`numpy.random.Generator` so experiments are reproducible.

Two sampling regimes coexist: the reference two-sided geometric sampler
(:mod:`repro.sampling.geometric`, difference of two one-sided
geometrics) and the O(1) precomputed alias tables of
:mod:`repro.sampling.alias` that the batch publication hot path uses.
"""

from .alias import (
    AliasTable,
    HeterogeneousAliasSampler,
    RowAliasSampler,
    cached_geometric_sampler,
    clear_alias_cache,
)
from .geometric import (
    sample_geometric_failures,
    sample_two_sided_geometric,
    two_sided_geometric_pmf,
)
from .rng import ensure_generator

__all__ = [
    "AliasTable",
    "RowAliasSampler",
    "HeterogeneousAliasSampler",
    "cached_geometric_sampler",
    "clear_alias_cache",
    "ensure_generator",
    "sample_geometric_failures",
    "sample_two_sided_geometric",
    "two_sided_geometric_pmf",
]
