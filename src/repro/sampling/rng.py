"""Seeding helpers for reproducible experiments."""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = ["ensure_generator"]


def ensure_generator(
    seed_or_rng: int | np.random.Generator | None = None,
) -> np.random.Generator:
    """Normalize a seed / generator / ``None`` into a Generator.

    * ``None`` — a fresh nondeterministic generator;
    * ``int`` — ``np.random.default_rng(seed)``;
    * a Generator — returned unchanged.
    """
    if seed_or_rng is None:
        return np.random.default_rng()
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, bool) or not isinstance(
        seed_or_rng, (int, np.integer)
    ):
        raise ValidationError(
            f"expected None, an int seed, or a numpy Generator; "
            f"got {seed_or_rng!r}"
        )
    return np.random.default_rng(int(seed_or_rng))
