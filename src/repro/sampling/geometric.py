"""Samplers for geometric noise.

The two-sided geometric distribution of Definition 1,

.. math:: \\Pr[Z = z] = \\frac{1-\\alpha}{1+\\alpha}\\,\\alpha^{|z|},

is sampled as the difference of two i.i.d. one-sided geometric variables:
if ``X1, X2`` each count failures before the first success of a Bernoulli
``(1-alpha)`` process — i.e. ``Pr[X = k] = (1-alpha) alpha^k`` — then
``X1 - X2`` has exactly the two-sided law above. This identity is
verified in the test-suite both analytically and empirically.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..exceptions import ValidationError
from ..validation import check_alpha

__all__ = [
    "sample_geometric_failures",
    "sample_two_sided_geometric",
    "two_sided_geometric_pmf",
]


def two_sided_geometric_pmf(alpha, z):
    """Exact (for Fraction ``alpha``) or float pmf of Definition 1.

    ``z`` may be a scalar or an array-like of integers. Scalars keep the
    original behavior — exact Fraction arithmetic when ``alpha`` is a
    Fraction, float otherwise. Array inputs take the vectorized float
    fast path (``alpha`` coerced to float): one broadcast power per
    distinct ``|z|``, used by audit-replay slices and artifact
    verification where a whole pmf window is evaluated at once.
    """
    if isinstance(z, (np.ndarray, list, tuple, range)):
        zs = np.abs(np.asarray(z, dtype=np.int64))
        a = float(alpha)
        check_alpha(a)
        return (1.0 - a) / (1.0 + a) * a**zs
    if isinstance(alpha, Fraction):
        check_alpha(alpha)
        return (1 - alpha) / (1 + alpha) * alpha ** abs(int(z))
    alpha = float(alpha)
    check_alpha(alpha)
    return (1.0 - alpha) / (1.0 + alpha) * alpha ** abs(int(z))


def sample_geometric_failures(
    alpha: float,
    rng: np.random.Generator,
    size: int | None = None,
):
    """Sample failure counts ``X`` with ``Pr[X = k] = (1-alpha) alpha^k``.

    ``numpy``'s :meth:`~numpy.random.Generator.geometric` counts *trials*
    (support starting at 1); subtracting one converts to failures
    (support starting at 0).
    """
    alpha = float(alpha)
    check_alpha(alpha)
    if size is not None and size < 0:
        raise ValidationError(f"size must be >= 0, got {size}")
    draws = rng.geometric(p=1.0 - alpha, size=size)
    return draws - 1


def sample_two_sided_geometric(
    alpha: float,
    rng: np.random.Generator,
    size: int | None = None,
):
    """Sample two-sided geometric noise (Definition 1).

    Returns an ``int`` when ``size`` is ``None``, else an integer array.
    """
    positive = sample_geometric_failures(alpha, rng, size)
    negative = sample_geometric_failures(alpha, rng, size)
    if size is None:
        return int(positive - negative)
    return positive - negative
