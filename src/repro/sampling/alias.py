"""O(1) alias-table sampling over precomputed mechanism rows.

Walker/Vose alias tables turn sampling from an arbitrary finite
distribution into two array lookups and one comparison per draw — no
rejection, no per-draw CDF walk — which is what lets
:meth:`repro.release.publisher.Publisher.publish_batch` run at line rate
(see ``benchmarks/bench_sampling.py``).

The construction here is *exact*: given a row of Fraction probabilities
(e.g. a row of the range-restricted geometric mechanism
``G_{n,alpha}``, whose boundary columns already fold the unbounded
two-sided-geometric tail mass into the cap outputs ``{0, n}``), the
Vose small/large pairing is run entirely over ``Fraction``, so the cell
thresholds are exact rationals and the table provably encodes the input
pmf: :meth:`AliasTable.cell_probabilities` reconstructs it bit-for-bit.
Only the final sampling arrays are float64. Float-regime rows build
float tables directly (no exact thresholds to verify against).

Three sampling granularities:

* :class:`AliasTable` — one distribution;
* :class:`RowAliasSampler` — all rows of one mechanism, stacked, with a
  single vectorized gather per batch of heterogeneous true results;
* :class:`HeterogeneousAliasSampler` — several mechanisms (different
  ``n`` and/or ``alpha``) flattened into one arena, so one ``publish``
  tick can draw for queries spread across deployments in one shot.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "AliasTable",
    "RowAliasSampler",
    "HeterogeneousAliasSampler",
    "cached_geometric_sampler",
    "clear_alias_cache",
]


def _vose(probabilities):
    """Run the Vose small/large pairing; returns ``(thresholds, alias)``.

    Works for exact (Fraction/int) and float inputs alike; with exact
    inputs every operation is rational and the leftover queue entries
    land on exactly 1. ``probabilities`` must be non-negative and sum
    to 1 (checked by the caller in the appropriate regime).
    """
    size = len(probabilities)
    scaled = [p * size for p in probabilities]
    thresholds = [None] * size
    alias = list(range(size))
    one = Fraction(1) if isinstance(scaled[0], Fraction) else 1.0
    small = [j for j in range(size) if scaled[j] < one]
    large = [j for j in range(size) if scaled[j] >= one]
    while small and large:
        lo = small.pop()
        hi = large.pop()
        thresholds[lo] = scaled[lo]
        alias[lo] = hi
        scaled[hi] = scaled[hi] - (one - scaled[lo])
        if scaled[hi] < one:
            small.append(hi)
        else:
            large.append(hi)
    # Leftovers hold exactly mass 1 (exact regime) or 1 up to rounding
    # (float regime); either way they alias to themselves.
    for j in large:
        thresholds[j] = one
    for j in small:
        thresholds[j] = one
    return thresholds, alias


class AliasTable:
    """Alias table for one distribution over ``{0..K-1}``.

    Attributes
    ----------
    size:
        Number of outcomes ``K``.
    prob:
        Float64 acceptance thresholds per cell (read-only).
    alias:
        Int64 alias outcome per cell (read-only).
    exact_thresholds:
        Tuple of exact Fraction thresholds when built from exact
        probabilities, else ``None``. These are the verifiable content:
        :meth:`cell_probabilities` reconstructs the input pmf from them
        bit-for-bit.
    """

    __slots__ = ("size", "prob", "alias", "exact_thresholds")

    def __init__(self, probabilities) -> None:
        probabilities = list(probabilities)
        if not probabilities:
            raise ValidationError("alias table needs at least one outcome")
        exact = all(
            isinstance(p, (Fraction, int)) and not isinstance(p, bool)
            for p in probabilities
        )
        if exact:
            probabilities = [Fraction(p) for p in probabilities]
            if any(p < 0 for p in probabilities):
                raise ValidationError("probabilities must be non-negative")
            if sum(probabilities) != 1:
                raise ValidationError(
                    "exact probabilities must sum to exactly 1, got "
                    f"{sum(probabilities)}"
                )
        else:
            probabilities = [float(p) for p in probabilities]
            if any(p < 0 for p in probabilities):
                raise ValidationError("probabilities must be non-negative")
            total = sum(probabilities)
            if not np.isclose(total, 1.0, atol=1e-9):
                raise ValidationError(
                    f"probabilities must sum to 1, got {total}"
                )
            probabilities = [p / total for p in probabilities]
        thresholds, alias = _vose(probabilities)
        self.size = len(probabilities)
        self.exact_thresholds = tuple(thresholds) if exact else None
        self.prob = np.array([float(t) for t in thresholds])
        self.alias = np.array(alias, dtype=np.int64)
        self.prob.setflags(write=False)
        self.alias.setflags(write=False)

    @classmethod
    def from_parts(cls, thresholds, alias) -> "AliasTable":
        """Rebuild a table from stored ``(thresholds, alias)`` content.

        Used when loading a :class:`~repro.release.artifacts.MechanismArtifact`:
        the sampler must derive from the *verified* stored thresholds,
        not from a fresh construction that could silently diverge.
        """
        thresholds = list(thresholds)
        alias = list(alias)
        if not thresholds or len(thresholds) != len(alias):
            raise ValidationError(
                "thresholds and alias must be equal-length and non-empty"
            )
        size = len(thresholds)
        exact = all(isinstance(t, (Fraction, int)) for t in thresholds)
        for t in thresholds:
            if not 0 <= t <= 1:
                raise ValidationError(f"threshold {t} outside [0, 1]")
        for a in alias:
            if not 0 <= int(a) < size:
                raise ValidationError(f"alias {a} outside [0, {size})")
        table = cls.__new__(cls)
        table.size = size
        table.exact_thresholds = (
            tuple(Fraction(t) for t in thresholds) if exact else None
        )
        table.prob = np.array([float(t) for t in thresholds])
        table.alias = np.array([int(a) for a in alias], dtype=np.int64)
        table.prob.setflags(write=False)
        table.alias.setflags(write=False)
        return table

    def cell_probabilities(self) -> list:
        """Exact pmf encoded by the table (requires exact thresholds).

        ``p[j] = (q_j + sum_{k: alias[k]=j} (1 - q_k)) / K`` — every term
        a Fraction, so the result equals the construction input
        bit-for-bit. This is the integrity check ``repro cache verify``
        replays against :func:`repro.sampling.geometric.two_sided_geometric_pmf`.
        """
        if self.exact_thresholds is None:
            raise ValidationError(
                "cell probabilities are exact-regime only; this table was "
                "built from float probabilities"
            )
        size = self.size
        pmf = [Fraction(0)] * size
        for cell in range(size):
            threshold = self.exact_thresholds[cell]
            pmf[cell] += threshold
            pmf[int(self.alias[cell])] += 1 - threshold
        return [p / size for p in pmf]

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw outcomes: one uniform per draw, two lookups, one compare."""
        count = 1 if size is None else int(size)
        if count < 0:
            raise ValidationError(f"size must be >= 0, got {size}")
        scaled = rng.random(count) * self.size
        # u < 1 guarantees u * K < K exactly, but the float product can
        # round up to K; clamp so the cell index stays in range.
        cells = np.minimum(scaled.astype(np.int64), self.size - 1)
        accept = (scaled - cells) < self.prob[cells]
        out = np.where(accept, cells, self.alias[cells])
        if size is None:
            return int(out[0])
        return out


class RowAliasSampler:
    """Stacked alias tables for every row of a row-stochastic matrix.

    One vectorized :meth:`sample` call draws outputs for a whole batch
    of heterogeneous true results (rows): per draw it is a fused
    multiply, two flat gathers, and a ``where`` — O(1) per sample with
    no Python-level loop.
    """

    __slots__ = ("n", "size", "tables", "_flat_prob", "_flat_alias")

    def __init__(self, tables) -> None:
        tables = list(tables)
        if not tables:
            raise ValidationError("need at least one row table")
        size = tables[0].size
        if any(t.size != size for t in tables):
            raise ValidationError("all row tables must share one size")
        if len(tables) != size:
            raise ValidationError(
                f"expected a square mechanism: {len(tables)} rows of "
                f"size {size}"
            )
        self.tables = tuple(tables)
        self.size = size
        self.n = size - 1
        self._flat_prob = np.concatenate([t.prob for t in tables])
        self._flat_alias = np.concatenate([t.alias for t in tables])
        self._flat_prob.setflags(write=False)
        self._flat_alias.setflags(write=False)

    @classmethod
    def from_matrix(cls, matrix) -> "RowAliasSampler":
        """Build per-row tables from a row-stochastic matrix.

        Exact (object/Fraction) matrices produce exact thresholds; float
        matrices produce float-only tables.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValidationError(
                f"expected a square matrix, got shape {matrix.shape}"
            )
        return cls(AliasTable(row) for row in matrix)

    def sample(self, rows, rng: np.random.Generator) -> np.ndarray:
        """Draw one output per entry of ``rows`` (true results)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 1:
            raise ValidationError("rows must be a 1-D array of true results")
        if rows.size and (rows.min() < 0 or rows.max() > self.n):
            raise ValidationError(
                f"true results must lie in [0, {self.n}]"
            )
        scaled = rng.random(rows.size) * self.size
        cells = np.minimum(scaled.astype(np.int64), self.size - 1)
        flat = rows * self.size + cells
        accept = (scaled - cells) < self._flat_prob[flat]
        return np.where(accept, cells, self._flat_alias[flat])

    def sample_one(self, row: int, rng: np.random.Generator) -> int:
        """Draw one output for one true result, without array round-trips.

        The scalar hot path (:meth:`repro.release.publisher.Publisher.publish`):
        one uniform, two flat lookups, one compare — the same table walk
        as :meth:`sample`, so scalar and batched draws share one
        distribution law.
        """
        row = int(row)
        if not 0 <= row <= self.n:
            raise ValidationError(f"true results must lie in [0, {self.n}]")
        scaled = rng.random() * self.size
        cell = min(int(scaled), self.size - 1)
        flat = row * self.size + cell
        if (scaled - cell) < self._flat_prob[flat]:
            return cell
        return int(self._flat_alias[flat])

    def is_exact(self) -> bool:
        """Whether every row table carries exact thresholds."""
        return all(t.exact_thresholds is not None for t in self.tables)


class HeterogeneousAliasSampler:
    """Several :class:`RowAliasSampler` arenas fused into one flat store.

    Supports mixed deployments — different ``n`` and/or ``alpha`` per
    query — in a single vectorized tick: each query carries a
    ``(table, row)`` pair; per-query cell counts come from a gathered
    size vector, so tables of different widths coexist without padding.
    """

    __slots__ = ("samplers", "_offsets", "_sizes", "_flat_prob", "_flat_alias")

    def __init__(self, samplers) -> None:
        samplers = list(samplers)
        if not samplers:
            raise ValidationError("need at least one sampler")
        self.samplers = tuple(samplers)
        self._sizes = np.array([s.size for s in samplers], dtype=np.int64)
        lengths = np.array(
            [s._flat_prob.size for s in samplers], dtype=np.int64
        )
        self._offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        self._flat_prob = np.concatenate([s._flat_prob for s in samplers])
        self._flat_alias = np.concatenate([s._flat_alias for s in samplers])
        self._flat_prob.setflags(write=False)
        self._flat_alias.setflags(write=False)

    def sample(self, table_indices, rows, rng: np.random.Generator):
        """One output per ``(table_indices[q], rows[q])`` query."""
        table_indices = np.asarray(table_indices, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.int64)
        if table_indices.shape != rows.shape or table_indices.ndim != 1:
            raise ValidationError(
                "table_indices and rows must be equal-length 1-D arrays"
            )
        if table_indices.size == 0:
            return np.empty(0, dtype=np.int64)
        if table_indices.min() < 0 or table_indices.max() >= len(
            self.samplers
        ):
            raise ValidationError("table index out of range")
        sizes = self._sizes[table_indices]
        if rows.min() < 0 or (rows >= sizes).any():
            raise ValidationError("true result out of range for its table")
        scaled = rng.random(rows.size) * sizes
        cells = np.minimum(scaled.astype(np.int64), sizes - 1)
        flat = self._offsets[table_indices] + rows * sizes + cells
        accept = (scaled - cells) < self._flat_prob[flat]
        return np.where(accept, cells, self._flat_alias[flat])


#: Bounded memo of geometric-row samplers, keyed ``(n, alpha, regime)``;
#: eviction is insertion-ordered, matching
#: :func:`repro.losses.base.cached_loss_matrix`'s policy.
_SAMPLER_CACHE: dict = {}
_SAMPLER_CACHE_ENTRIES = 64


def clear_alias_cache() -> None:
    """Drop memoized samplers (see :func:`repro.clear_caches`)."""
    _SAMPLER_CACHE.clear()


def cached_geometric_sampler(n: int, alpha) -> RowAliasSampler:
    """Memoized alias sampler for the rows of ``G_{n,alpha}``.

    Exact ``alpha`` (Fraction/int) builds exact thresholds straight from
    the exact :func:`repro.core.geometric.geometric_matrix` rows — the
    tables a :class:`~repro.release.artifacts.MechanismArtifact` carries
    and ``repro cache verify`` replays. Float ``alpha`` builds float
    tables. Unhashable alphas fall back to a fresh uncached build.
    """
    from ..core.geometric import geometric_matrix  # deferred: avoids cycle

    exact = isinstance(alpha, (Fraction, int)) and not isinstance(alpha, bool)
    key = (int(n), alpha, exact)
    try:
        sampler = _SAMPLER_CACHE.get(key)
    except TypeError:
        return RowAliasSampler.from_matrix(geometric_matrix(n, alpha))
    if sampler is None:
        sampler = RowAliasSampler.from_matrix(geometric_matrix(n, alpha))
        if len(_SAMPLER_CACHE) >= _SAMPLER_CACHE_ENTRIES:
            _SAMPLER_CACHE.pop(next(iter(_SAMPLER_CACHE)))
        _SAMPLER_CACHE[key] = sampler
    return sampler
