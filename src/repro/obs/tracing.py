"""Structured tracing: spans, trace propagation, JSONL + ring sinks.

A *trace* is one logical request (one ``POST /publish``); a *span* is a
timed step inside it. The serving stack emits a fixed vocabulary —
``server.publish`` → ``ledger.charge`` → ``wal.append`` → ``wal.fsync``
→ ``batch.flush`` → ``sampler.gather`` → ``audit.record`` — all sharing
the request's trace ID, so one grep over the JSONL log (or one ``GET
/trace/recent?trace=...``) reconstructs the request's path through the
batcher, the durable ledger, and the fused sampler.

Propagation uses :mod:`contextvars`, which asyncio copies into every
task and callback:

* :meth:`Tracer.sample` decides (per ``rate``) whether a request is
  traced and returns a :class:`TraceContext` or ``None``;
* :meth:`Tracer.activate` binds the context to the current task, so any
  code the request awaits through — the ledger charge, the WAL append —
  can call :meth:`Tracer.span` without threading arguments;
* micro-batching breaks task-linearity: one ``batch.flush`` serves many
  requests. The batcher binds the *list* of traced contexts in its
  batch (:meth:`Tracer.activate_batch`) around the execute step, and a
  span opened there is **broadcast** — one record per traced request in
  the batch, each under its own trace ID with its own parent span. The
  per-batch fsync and the fused gather therefore appear in every traced
  request they served.

Sinks: an append-only JSONL file per tracer (``--trace-dir``), buffered
and flushed every :data:`FLUSH_EVERY` records, plus a bounded in-memory
ring (``GET /trace/recent``). When no request is being traced,
:meth:`Tracer.span` returns a shared no-op singleton whose
``__enter__``/``__exit__`` do nothing — the hot-path cost of tracing at
``rate=0`` is one ContextVar read.

Record schema (one JSON object per line)::

    {"trace": "t-9f…", "span": "s-03…", "parent": "s-01…" | null,
     "name": "wal.fsync", "ts": 1754650000.123, "dur_ms": 0.41,
     "attrs": {"mode": "group", "batch": 17}}

``event`` records (audit findings) use the same shape with
``dur_ms = 0`` and bypass sampling — a flagged deployment is always
worth a line.
"""

from __future__ import annotations

import contextvars
import io
import json
import os
import random
import threading
import time
from collections import deque

from ..exceptions import ValidationError

__all__ = ["Tracer", "TraceContext", "NOOP_SPAN", "current_trace"]

#: Buffered span records are flushed to the JSONL sink at this many
#: pending records (and on ``close``). Keeps the write syscall off the
#: per-span path without risking unbounded loss on crash.
FLUSH_EVERY = 64

#: One shared encoder for the JSONL sink. ``json.dumps(..., default=)``
#: constructs a throwaway JSONEncoder per call; reusing one instance
#: keeps serialization to the C-encoder invocation itself.
_ENCODER = json.JSONEncoder(separators=(",", ":"), default=str)

_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace", default=None
)
_BATCH: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace_batch", default=()
)

#: C-level accessor for the active request trace — the hot-path inline
#: of :meth:`Tracer.current` (a bound ``ContextVar.get``, so callers
#: skip a Python frame per request).
current_trace = _CURRENT.get


class TraceContext:
    """Identity of one traced request: a trace ID and the active span."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.span_id: str | None = None


class _NoopSpan:
    """Shared do-nothing span for untraced requests."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _Span:
    """A timed span bound to one trace (or broadcast to a batch)."""

    __slots__ = ("_tracer", "_contexts", "name", "attrs", "_t0", "_parents")

    def __init__(self, tracer, contexts, name, attrs) -> None:
        self._tracer = tracer
        self._contexts = contexts
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self):
        self._parents = [ctx.span_id for ctx in self._contexts]
        span_id = self._tracer._new_span_id()
        for ctx in self._contexts:
            ctx.span_id = span_id
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        dur_ms = (time.perf_counter() - self._t0) * 1e3
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        tracer = self._tracer
        ts = time.time()
        span_id = self._contexts[0].span_id
        for ctx, parent in zip(self._contexts, self._parents):
            tracer._emit(
                {
                    "trace": ctx.trace_id,
                    "span": span_id,
                    "parent": parent,
                    "name": self.name,
                    "ts": ts,
                    "dur_ms": round(dur_ms, 4),
                    "attrs": self.attrs,
                }
            )
            ctx.span_id = parent
        return False


class Tracer:
    """Samples requests and records their spans to a ring + JSONL log.

    Parameters
    ----------
    rate:
        Probability in ``[0, 1]`` that :meth:`sample` traces a request.
    directory:
        When set, span records append to ``<directory>/trace.jsonl``
        (created on first record). ``None`` keeps the ring only.
    ring:
        Capacity of the in-memory ring buffer behind ``/trace/recent``.
    seed:
        Seeds the sampling RNG for deterministic traces in tests.
    """

    def __init__(
        self,
        rate: float = 0.0,
        directory=None,
        *,
        ring: int = 1024,
        seed: int | None = None,
    ) -> None:
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValidationError(f"trace rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.directory = None if directory is None else os.fspath(directory)
        self._rng = random.Random(seed)
        #: Bound RNG draw, exposed so hot paths can inline the sampling
        #: coin (``tracer.coin() < tracer.rate``) without a Python call.
        self.coin = self._rng.random
        self._ring: deque = deque(maxlen=int(ring))
        self._lock = threading.Lock()
        self._file: io.TextIOBase | None = None
        self._unwritten: list = []
        self._counter = 0
        self._id_prefix = f"{os.getpid():x}{self._rng.randrange(1 << 32):08x}"
        self.emitted = 0

    # -- identity ------------------------------------------------------
    def _new_id(self, kind: str) -> str:
        self._counter += 1
        return f"{kind}-{self._id_prefix}{self._counter:06x}"

    def _new_span_id(self) -> str:
        return self._new_id("s")

    # -- sampling and propagation --------------------------------------
    def sample(self) -> TraceContext | None:
        """Trace this request? A context when yes, ``None`` when no."""
        if self.rate <= 0.0:
            return None
        if self.rate < 1.0 and self.coin() >= self.rate:
            return None
        return self.begin()

    def begin(self) -> TraceContext:
        """Unconditionally start a trace (no sampling coin).

        For callers that inline the rate check themselves — the server
        draws ``coin()`` directly so the untraced majority of requests
        never enters a Python frame here.
        """
        return TraceContext(self._new_id("t"))

    def activate(self, ctx: TraceContext):
        """Bind ``ctx`` as the current task's trace; returns a token."""
        return _CURRENT.set(ctx)

    def deactivate(self, token) -> None:
        _CURRENT.reset(token)

    def activate_batch(self, contexts):
        """Bind the traced contexts of a micro-batch; returns a token.

        Also masks any request-scoped trace for the duration: a flush
        may run inside the submitting request's task (size trigger) or
        in a timer callback that copied one request's context — spans
        opened under the batch scope must broadcast to the whole batch,
        not attach to whichever request happened to schedule the flush.
        """
        return (_BATCH.set(tuple(contexts)), _CURRENT.set(None))

    def deactivate_batch(self, token) -> None:
        batch_token, current_token = token
        _CURRENT.reset(current_token)
        _BATCH.reset(batch_token)

    @staticmethod
    def current() -> TraceContext | None:
        return _CURRENT.get()

    # -- spans ---------------------------------------------------------
    def span(self, name: str, **attrs):
        """A context manager timing one step of the active trace(s).

        Prefers the request-scoped trace; falls back to the batch-scoped
        trace list (broadcasting one record per traced request); returns
        the shared no-op singleton when neither is bound.
        """
        ctx = _CURRENT.get()
        if ctx is not None:
            return _Span(self, (ctx,), name, attrs)
        batch = _BATCH.get()
        if batch:
            return _Span(self, batch, name, attrs)
        return NOOP_SPAN

    def event(self, name: str, **attrs) -> dict:
        """An instantaneous, always-recorded event (bypasses sampling).

        Joins the active trace when one is bound; otherwise gets a fresh
        trace ID. Used for audit findings, which must never be lost to
        the sampling rate.
        """
        ctx = _CURRENT.get()
        record = {
            "trace": ctx.trace_id if ctx is not None else self._new_id("t"),
            "span": self._new_span_id(),
            "parent": ctx.span_id if ctx is not None else None,
            "name": name,
            "ts": time.time(),
            "dur_ms": 0.0,
            "attrs": attrs,
        }
        self._emit(record)
        return record

    # -- sinks ---------------------------------------------------------
    def _emit(self, record: dict) -> None:
        with self._lock:
            self.emitted += 1
            self._ring.append(record)
            if self.directory is not None:
                # The emit path only parks the raw dict; serialization
                # and the file write happen in one batched pass per
                # FLUSH_EVERY records (and on flush/close) — per-record
                # encode+write in the middle of a request burst costs
                # several times the amortized batch encode.
                self._unwritten.append(record)
                if len(self._unwritten) >= FLUSH_EVERY:
                    self._drain()

    def _drain(self) -> None:
        """Encode and write parked records; caller holds the lock."""
        if not self._unwritten:
            return
        if self._file is None:
            os.makedirs(self.directory, exist_ok=True)
            self._file = open(
                os.path.join(self.directory, "trace.jsonl"),
                "a",
                encoding="utf-8",
            )
        # One reused encoder (dumps() with ``default=`` builds a fresh
        # JSONEncoder per call), one write, one flush for the batch.
        encode = _ENCODER.encode
        self._file.write(
            "".join([encode(record) + "\n" for record in self._unwritten])
        )
        self._unwritten.clear()
        self._file.flush()

    def recent(
        self, limit: int = 100, *, name: str | None = None,
        trace: str | None = None,
    ) -> list:
        """Newest-first records from the ring, optionally filtered."""
        with self._lock:
            records = list(self._ring)
        records.reverse()
        if name is not None:
            records = [r for r in records if r["name"] == name]
        if trace is not None:
            records = [r for r in records if r["trace"] == trace]
        return records[: max(0, int(limit))]

    def flush(self) -> None:
        with self._lock:
            if self.directory is not None:
                self._drain()

    def close(self) -> None:
        with self._lock:
            if self.directory is not None:
                self._drain()
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
