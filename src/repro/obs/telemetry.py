"""The telemetry bundle a serving process threads through its layers.

One :class:`Telemetry` holds the metrics registry and the tracer for a
process, plus the instrument handles the hot paths cache once at
construction (so a request increments pre-resolved children instead of
re-resolving label values). The server builds one and hands it to the
batcher, the durable ledger, and the clients; the solver layer writes
to :func:`repro.obs.metrics.default_registry` instead, which
:meth:`Telemetry.default` adopts so one ``GET /metrics`` scrape covers
the whole stack.

``MechanismServer(..., telemetry=False)`` is the telemetry-off
configuration the overhead benchmark compares against: the server holds
``None`` and skips instrumentation entirely, so "off" really is zero
added work.
"""

from __future__ import annotations

from .metrics import MetricsRegistry, default_registry
from .tracing import Tracer

__all__ = ["Telemetry"]


class Telemetry:
    """Metrics registry + tracer, with the serving instruments prebuilt.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` to instrument. Defaults to the
        process-wide registry so solver-layer counters appear in the
        same scrape.
    trace_rate / trace_dir / trace_ring / trace_seed:
        Forwarded to :class:`Tracer` (a pre-built ``tracer`` wins).
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        tracer: Tracer | None = None,
        trace_rate: float = 0.0,
        trace_dir=None,
        trace_ring: int = 1024,
        trace_seed: int | None = None,
    ) -> None:
        self.registry = default_registry() if registry is None else registry
        self.tracer = (
            Tracer(
                trace_rate,
                trace_dir,
                ring=trace_ring,
                seed=trace_seed,
            )
            if tracer is None
            else tracer
        )
        reg = self.registry
        # Serving-layer instruments. Created here (idempotently) so every
        # family appears in the exposition from the first scrape, and so
        # hot paths can cache children without None checks.
        self.requests = reg.counter(
            "repro_requests_total",
            "Requests handled, by route and response status.",
            labels=("route", "status"),
        )
        self.publish_latency = reg.histogram(
            "repro_publish_latency_seconds",
            "End-to-end publish latency, by deployment spec key.",
            labels=("key",),
        )
        self.ledger_outcomes = reg.counter(
            "repro_ledger_charges_total",
            "Ledger charge decisions, by outcome.",
            labels=("outcome",),
        )
        self.batch_flushes = reg.counter(
            "repro_batch_flushes_total",
            "Micro-batch flushes, by reason.",
            labels=("reason",),
        )
        self.batch_size = reg.histogram(
            "repro_batch_size",
            "Rows fused per micro-batch flush.",
            buckets=tuple(float(1 << i) for i in range(15)),
        )
        self.batch_flush_latency = reg.histogram(
            "repro_batch_flush_seconds",
            "Wall time of one micro-batch execute (gather + fsync).",
        )
        self.gather_latency = reg.histogram(
            "repro_sampler_gather_seconds",
            "Fused alias-table gather time per batch.",
        )
        self.wal_append_latency = reg.histogram(
            "repro_wal_append_seconds",
            "WAL record append time (excluding fsync).",
        )
        self.wal_fsync_latency = reg.histogram(
            "repro_wal_fsync_seconds",
            "WAL fsync time, by fsync mode.",
            labels=("mode",),
        )
        self.wal_journal_bytes = reg.gauge(
            "repro_wal_journal_bytes",
            "Current size of the write-ahead journal in bytes.",
        )
        self.ledger_compactions = reg.counter(
            "repro_ledger_compactions_total",
            "Snapshot-and-truncate compactions of the WAL.",
        )
        self.audit_findings = reg.counter(
            "repro_audit_findings_total",
            "Online audit sweep findings, by flagged verdict.",
            labels=("flagged",),
        )
        self.client_retries = reg.counter(
            "repro_client_retries_total",
            "HTTP client retry attempts, by error kind.",
            labels=("error",),
        )
        self.client_latency = reg.histogram(
            "repro_client_request_seconds",
            "HTTP client logical round-trip time (incl. retries).",
        )
        self.users_near_floor = reg.gauge(
            "repro_budget_users_near_floor",
            "Users within k further charges of their privacy floor.",
            labels=("within",),
        )
        self.user_spent_fraction = reg.gauge(
            "repro_user_spent_fraction",
            "Epsilon-fraction of budget spent, top burners by user.",
            labels=("user",),
        )
        self.deployment_epsilon = reg.gauge(
            "repro_deployment_epsilon_spent",
            "Total epsilon charged through a deployment "
            "(charges * -ln(alpha)), by spec key.",
            labels=("key",),
        )
        # Fleet / overload protection (PR 10). Sheds happen before any
        # ledger charge; the breaker gauges make a durability outage
        # impossible to miss; the degraded pair exposes how much traffic
        # rides the certified geometric fallback.
        self.sheds = reg.counter(
            "repro_serving_shed_total",
            "Requests shed before any ledger charge, by reason.",
            labels=("reason",),
        )
        self.admission_inflight = reg.gauge(
            "repro_serving_admission_inflight",
            "Admitted publishes currently in flight.",
        )
        self.admission_brownout = reg.gauge(
            "repro_serving_brownout_active",
            "1 while sustained overload is shedding optional work.",
        )
        self.brownout_skips = reg.counter(
            "repro_serving_brownout_skips_total",
            "Optional work skipped under brownout, by kind.",
            labels=("kind",),
        )
        self.breaker_state = reg.gauge(
            "repro_wal_breaker_open",
            "1 while the WAL circuit breaker is open (charges follow "
            "the configured failure policy).",
        )
        self.breaker_trips = reg.counter(
            "repro_wal_breaker_trips_total",
            "WAL circuit breaker transitions, by kind (open/recover).",
            labels=("kind",),
        )
        self.degraded_deployments = reg.gauge(
            "repro_serving_degraded_deployments",
            "Quarantined deployments currently served by the geometric "
            "fallback.",
        )
        self.degraded_responses = reg.counter(
            "repro_serving_degraded_responses_total",
            "Responses served by a geometric fallback for a "
            "quarantined bespoke deployment.",
        )
        self.worker_ready = reg.gauge(
            "repro_serving_worker_ready",
            "1 while this worker passes its own readiness checks.",
        )

    @classmethod
    def default(cls, **kwargs) -> "Telemetry":
        """Telemetry over the process-wide default registry."""
        return cls(default_registry(), **kwargs)

    def close(self) -> None:
        self.tracer.close()
