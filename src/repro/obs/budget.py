"""Privacy-budget burn-rate analysis over ledger books.

The ledger enforces the floor; this module makes the approach to it
*visible*. For every user it derives:

* ``spent_fraction`` — how much of the epsilon budget is gone, as
  ``log(cumulative_alpha) / log(floor)`` (the epsilon-fraction, since
  ``epsilon = -ln(alpha)``): 0.0 for an untouched book, 1.0 at the
  floor;
* ``remaining_charges`` — the largest ``k`` with
  ``cumulative * alpha**k >= floor`` at the user's last charged
  ``alpha``: how many more identical releases the ledger would admit
  before answering 429.

``remaining_charges`` is estimated in float logs and then corrected
with exact :class:`fractions.Fraction` comparisons, so it is *exact*
even thousands of charges from the floor where ``alpha**k`` underflows
log arithmetic's precision.

Sources: a live ledger book (:func:`burn_rows_from_book`, used by the
server's scrape-time collector and ``GET /obs/burn``) or a ledger
directory at rest (:func:`burn_rows_from_dir`, used by ``repro ledger
show`` and ``repro obs top`` — recovery replays the WAL, so the rows
reflect exactly what a restarted server would enforce). The durable
ledger import is lazy to keep ``repro.obs`` free of release-layer
imports at module load (the release layer imports ``obs.metrics``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

__all__ = [
    "BurnRow",
    "burn_rows_from_book",
    "burn_rows_from_dir",
    "floor_proximity",
]


@dataclass(frozen=True)
class BurnRow:
    """One user's budget burn-down, derived from their ledger book."""

    user: str
    releases: int
    cumulative_alpha: object
    floor: object
    #: Epsilon-fraction spent: 0.0 fresh, 1.0 at the floor. ``0.0`` when
    #: the floor is 0 (an unlimited book never burns down).
    spent_fraction: float
    #: Exact further charges at ``last_alpha`` before rejection;
    #: ``None`` when unbounded (floor 0) or no alpha is known yet.
    remaining_charges: int | None
    #: The alpha a future charge is assumed to use: the user's last
    #: charged alpha, or the geometric mean of their releases when only
    #: a restored cumulative guarantee is known.
    last_alpha: object | None

    @property
    def at_floor(self) -> bool:
        return self.remaining_charges == 0

    def to_dict(self) -> dict:
        return {
            "user": self.user,
            "releases": self.releases,
            "cumulative_alpha": str(self.cumulative_alpha),
            "floor": str(self.floor),
            "spent_fraction": self.spent_fraction,
            "remaining_charges": self.remaining_charges,
            "last_alpha": None
            if self.last_alpha is None
            else str(self.last_alpha),
        }


def spent_fraction(cumulative, floor) -> float:
    """Epsilon-fraction of the budget consumed, clamped to [0, 1]."""
    if floor is None or floor == 0 or cumulative >= 1:
        return 0.0
    if floor >= 1:
        return 1.0
    fraction = math.log(float(cumulative)) / math.log(float(floor))
    return min(1.0, max(0.0, fraction))


def remaining_charges(cumulative, floor, alpha) -> int | None:
    """Largest ``k >= 0`` with ``cumulative * alpha**k >= floor``.

    ``None`` when unbounded (``floor == 0``) or ``alpha`` is not a
    budget-consuming level (``alpha <= 0`` or ``alpha >= 1``). The float
    log estimate is adjusted with exact Fraction arithmetic, so the
    answer matches what :meth:`PrivacyLedger.try_charge` would admit.
    """
    if floor is None or floor == 0:
        return None
    if alpha is None or not 0 < alpha < 1:
        return None
    cumulative = Fraction(cumulative)
    floor = Fraction(floor)
    if cumulative < floor:
        return 0
    try:
        alpha = Fraction(alpha)
        exact = True
    except (TypeError, ValueError):
        exact = False
    # Log of the ratio via integer logs: float(ratio) underflows to 0.0
    # (and log raises) once the floor is ~1000 half-charges away.
    ratio = floor / cumulative
    log_ratio = math.log(ratio.numerator) - math.log(ratio.denominator)
    log_alpha = (
        math.log(alpha.numerator) - math.log(alpha.denominator)
        if exact
        else math.log(float(alpha))
    )
    estimate = max(0, int(math.floor(log_ratio / log_alpha)))
    if not exact:
        return estimate
    # Walk the float estimate to the exact boundary: k is admitted iff
    # cumulative * alpha**k >= floor.
    while estimate > 0 and cumulative * alpha**estimate < floor:
        estimate -= 1
    while cumulative * alpha ** (estimate + 1) >= floor:
        estimate += 1
    return estimate


def _last_alpha(entries, releases, cumulative):
    """The alpha to project future charges at.

    Prefers the most recent genuinely-charged entry (restore entries
    carry labels ``snapshot``/``recovered`` and fold many releases into
    one ratio). Falls back to the geometric mean
    ``cumulative ** (1/releases)`` when only a recovered total exists.
    """
    for entry in reversed(entries):
        if entry.label not in ("snapshot", "recovered") and 0 < entry.alpha < 1:
            return entry.alpha
    if releases > 0 and 0 < cumulative < 1:
        return float(cumulative) ** (1.0 / releases)
    return None


def burn_row(user, entries, releases, cumulative, floor) -> BurnRow:
    alpha = _last_alpha(entries, releases, cumulative)
    return BurnRow(
        user=user,
        releases=releases,
        cumulative_alpha=cumulative,
        floor=floor,
        spent_fraction=spent_fraction(cumulative, floor),
        remaining_charges=remaining_charges(cumulative, floor, alpha),
        last_alpha=alpha,
    )


def burn_rows_from_book(book) -> list:
    """Burn rows for every user of a (memory or durable) ledger book.

    Sorted most-burned first, ties broken by user name, so the head of
    the list is always the next user to hit the floor.
    """
    rows = []
    for user in list(book._books):
        ledger = book._books.get(user)
        if ledger is None:  # pragma: no cover - concurrent eviction
            continue
        view = book.view(user)
        if view is None:  # pragma: no cover - concurrent eviction
            continue
        rows.append(
            burn_row(
                user,
                ledger.entries,
                view.releases,
                view.cumulative_alpha,
                view.floor,
            )
        )
    rows.sort(key=lambda r: (-r.spent_fraction, r.user))
    return rows


def burn_rows_from_dir(path) -> list:
    """Burn rows recovered from a ledger directory's snapshot + WAL."""
    from ..release.durable_ledger import DurableLedger

    ledger = DurableLedger(path, fsync="off")
    try:
        return burn_rows_from_book(ledger)
    finally:
        ledger.close()


def floor_proximity(rows, ks=(1, 2, 4, 8)) -> dict:
    """How many users are within ``k`` further charges of their floor.

    Returns ``{k: count}`` counting rows whose ``remaining_charges`` is
    known and ``<= k`` — the fuel gauge behind the
    ``repro_budget_users_near_floor`` metric.
    """
    counts = {}
    for k in ks:
        counts[int(k)] = sum(
            1
            for row in rows
            if row.remaining_charges is not None and row.remaining_charges <= k
        )
    return counts
