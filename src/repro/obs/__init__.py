"""Observability for the serving stack: metrics, tracing, budget burn.

Stdlib-only. Three layers, importable independently:

* :mod:`repro.obs.metrics` — counters/gauges/log-bucketed histograms
  with labels, Prometheus text exposition, in-process snapshots;
* :mod:`repro.obs.tracing` — sampled request tracing with
  ContextVar propagation (including micro-batch broadcast), a JSONL
  event log, and an in-memory ring for ``GET /trace/recent``;
* :mod:`repro.obs.budget` — per-user burn-rate rows (spent fraction,
  exact remaining charges) from live books or WAL directories.

:class:`~repro.obs.telemetry.Telemetry` bundles the first two with the
pre-built serving instruments; the server threads one instance through
the batcher, ledgers, and clients.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    render_prometheus,
    set_default_registry,
)
from .tracing import Tracer, TraceContext
from .telemetry import Telemetry
from .budget import (
    BurnRow,
    burn_rows_from_book,
    burn_rows_from_dir,
    floor_proximity,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "render_prometheus",
    "Tracer",
    "TraceContext",
    "Telemetry",
    "BurnRow",
    "burn_rows_from_book",
    "burn_rows_from_dir",
    "floor_proximity",
]
