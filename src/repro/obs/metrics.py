"""Metrics primitives and the Prometheus text exposition.

The serving stack (and the solver layer underneath it) records three
kinds of facts:

* :class:`Counter` — monotone event counts (requests by route/status,
  ledger charge outcomes, solve-cache hits/misses, batch flush reasons);
* :class:`Gauge` — point-in-time levels (journal bytes, users within
  ``k`` charges of their privacy floor, per-user spent fraction);
* :class:`Histogram` — log-bucketed distributions (publish latency per
  deployment, WAL fsync latency, fused-gather duration) with p50/p99
  extraction directly from the buckets.

All three support Prometheus-style labels. A
:class:`MetricsRegistry` owns families, renders the standard text
exposition format (``GET /metrics`` content-negotiates it), and
snapshots to plain dicts for benchmarks and the JSON metrics route.

Design constraints, in order:

1. **Hot-path cost.** ``benchmarks/bench_observability.py`` enforces a
   <= 5% throughput budget for the whole telemetry layer on the batched
   serving path, so the per-observation work is a handful of attribute
   operations: a counter increment is ``self.value += v``; a histogram
   observation is one C ``bisect`` plus three attribute updates. Label
   resolution (``labels(...)``) is the expensive step and is meant to be
   done **once**, outside the loop — callers cache the returned child
   (the server caches one latency-histogram child per deployment).
2. **Concurrent scrapes.** Increments come from the event loop and from
   worker threads; scrapes may run concurrently. Individual updates are
   safe under the GIL, and rendering materializes each family's children
   with ``list(...)`` so a scrape never observes a dict mutated
   mid-iteration. Cumulative histogram buckets are computed at render
   time, so bucket monotonicity holds in every scrape by construction.
3. **Stdlib only.** No prometheus_client; the exposition is ~40 lines.

A process-wide default registry (:func:`default_registry`) is what the
solver-layer instrumentation (solve cache, hybrid certification,
artifact store) writes to, so one scrape of a serving process covers
the whole stack. Tests and benchmarks build private registries.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left, bisect_right

from ..exceptions import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_buckets",
    "default_registry",
    "set_default_registry",
    "render_prometheus",
]

#: Growth factor of the default log-spaced latency buckets. The
#: histogram quantile is exact up to one bucket: the reported value is
#: the upper bound of the bucket holding the rank, so it overestimates
#: the order statistic by at most this factor (asserted against a
#: sorted-array p99 in ``bench_observability.py``).
LATENCY_BUCKET_GROWTH = 2.0


def default_latency_buckets() -> tuple:
    """Log-spaced seconds from 1 microsecond to ~8 seconds (x2 steps)."""
    return tuple(1e-6 * (2.0 ** i) for i in range(24))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _ScalarChild:
    """One labeled time series of a counter or gauge."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount=1.0) -> None:
        self.value += amount

    def set(self, value) -> None:
        self.value = float(value)


class _HistogramChild:
    """One labeled histogram series: bucket counts, sum, and count.

    ``bounds`` holds the finite upper bounds; ``counts`` has one extra
    slot for the implicit ``+Inf`` bucket. Buckets are **not** stored
    cumulatively — the render/quantile paths accumulate on read — so an
    observation is a single increment.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values) -> None:
        """Fold a batch of observations in one pass.

        The deferred-tally path: hot loops park raw samples in a plain
        list (one C-level append per event) and fold them here at
        scrape time — sort once, then one ``bisect_right`` per bucket
        bound instead of one ``bisect_left`` per sample. Identical
        bucketing to :meth:`observe`: a value equal to a bound lands in
        that bound's bucket either way.
        """
        ordered = sorted(values)
        if not ordered:
            return
        counts = self.counts
        previous = 0
        for index, bound in enumerate(self.bounds):
            position = bisect_right(ordered, bound)
            if position != previous:
                counts[index] += position - previous
                previous = position
        size = len(ordered)
        counts[len(self.bounds)] += size - previous
        self.sum += math.fsum(ordered)
        self.count += size

    def quantile(self, q: float):
        """The upper bound of the bucket containing the ``q`` quantile.

        Exact extraction from the buckets: the returned value is a true
        upper bound for the order statistic at rank ``ceil(q * count)``
        and exceeds it by at most one bucket's width (the log growth
        factor for the default bounds). ``None`` when empty; ``inf``
        when the rank lands in the overflow bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            return None
        rank = max(1, math.ceil(q * total))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return math.inf
        return math.inf  # pragma: no cover - seen always reaches total


class _Family:
    """A named metric family holding one child per label-value tuple."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: tuple) -> None:
        _check_name(name)
        for label in labels:
            _check_name(label)
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self._children: dict = {}
        self._lock = threading.Lock()

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *values, **kwargs):
        """The child series for these label values (created on demand).

        Accepts positional values in ``label_names`` order or keyword
        arguments. Callers on hot paths cache the returned child.
        """
        if kwargs:
            if values:
                raise ValidationError(
                    "pass label values positionally or by keyword, not both"
                )
            try:
                values = tuple(str(kwargs[k]) for k in self.label_names)
            except KeyError as err:
                raise ValidationError(
                    f"metric {self.name} is missing label {err}"
                ) from None
            if len(kwargs) != len(self.label_names):
                raise ValidationError(
                    f"metric {self.name} takes labels {self.label_names}, "
                    f"got {tuple(kwargs)}"
                )
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.label_names):
            raise ValidationError(
                f"metric {self.name} takes {len(self.label_names)} label "
                f"value(s) {self.label_names}, got {len(values)}"
            )
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.get(values)
                if child is None:
                    child = self._children[values] = self._new_child()
        return child

    def children(self) -> list:
        """A stable list of ``(label_values, child)`` pairs."""
        return list(self._children.items())

    def _bare(self):
        """The unlabeled child (only for families with no labels)."""
        return self.labels()


class Counter(_Family):
    """A monotonically increasing count (optionally labeled)."""

    kind = "counter"

    def _new_child(self) -> _ScalarChild:
        return _ScalarChild()

    def inc(self, amount=1.0) -> None:
        self._bare().inc(amount)

    @property
    def value(self):
        return self._bare().value


class Gauge(_Family):
    """A value that can go up and down (optionally labeled)."""

    kind = "gauge"

    def _new_child(self) -> _ScalarChild:
        return _ScalarChild()

    def set(self, value) -> None:
        self._bare().set(value)

    def inc(self, amount=1.0) -> None:
        self._bare().inc(amount)

    @property
    def value(self):
        return self._bare().value


class Histogram(_Family):
    """A log-bucketed distribution with quantile extraction."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str, labels: tuple, buckets=None
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(
            default_latency_buckets() if buckets is None else buckets
        )
        if not bounds:
            raise ValidationError(f"histogram {name} needs >= 1 bucket")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValidationError(
                f"histogram {name} buckets must be strictly increasing"
            )
        self.bounds = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value) -> None:
        self._bare().observe(value)

    def observe_many(self, values) -> None:
        self._bare().observe_many(values)

    def quantile(self, q: float):
        return self._bare().quantile(q)

    @property
    def count(self):
        return self._bare().count


_VALID_FIRST = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_VALID_REST = _VALID_FIRST | set("0123456789")


def _check_name(name: str) -> None:
    if (
        not name
        or name[0] not in _VALID_FIRST
        or any(c not in _VALID_REST for c in name[1:])
    ):
        raise ValidationError(
            f"invalid metric/label name {name!r} (must match "
            "[a-zA-Z_:][a-zA-Z0-9_:]*)"
        )


class MetricsRegistry:
    """Owns metric families; renders and snapshots them.

    ``counter``/``gauge``/``histogram`` are idempotent: asking for an
    existing name returns the existing family (and validates that the
    kind and labels agree), so independent modules can share series.

    ``register_collector`` adds a zero-argument callback run before
    every render/snapshot — the hook the serving layer uses to refresh
    scrape-time gauges (budget burn rates are computed from the ledger
    on demand rather than updated on the request hot path).
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._collectors: list = []
        self._lock = threading.Lock()

    # -- family construction -------------------------------------------
    def _family(self, cls, name, help, labels, **kwargs) -> _Family:
        labels = tuple(labels)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValidationError(
                        f"metric {name} is already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.label_names != labels:
                    raise ValidationError(
                        f"metric {name} is already registered with labels "
                        f"{existing.label_names}, not {labels}"
                    )
                return existing
            family = cls(name, help, labels, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labels=()) -> Counter:
        return self._family(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels=()) -> Gauge:
        return self._family(Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "", labels=(), buckets=None
    ) -> Histogram:
        return self._family(
            Histogram, name, help, labels, buckets=buckets
        )

    def get(self, name: str) -> _Family | None:
        return self._families.get(name)

    def register_collector(self, callback) -> None:
        self._collectors.append(callback)

    def _collect(self) -> None:
        for callback in list(self._collectors):
            callback()

    def families(self) -> list:
        return list(self._families.values())

    # -- output --------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        self._collect()
        return render_prometheus(self.families())

    def snapshot(self) -> dict:
        """A plain-dict snapshot (for benches and the JSON route).

        Counters/gauges map label tuples (joined with ``,``) to values;
        histograms additionally expose count/sum/p50/p99.
        """
        self._collect()
        out: dict = {}
        for family in self.families():
            series: dict = {}
            for values, child in family.children():
                key = ",".join(values) if values else ""
                if family.kind == "histogram":
                    series[key] = {
                        "count": child.count,
                        "sum": child.sum,
                        "p50": child.quantile(0.5),
                        "p99": child.quantile(0.99),
                    }
                else:
                    series[key] = child.value
            out[family.name] = {
                "kind": family.kind,
                "labels": list(family.label_names),
                "series": series,
            }
        return out


def _series_name(name, label_names, label_values, extra=()) -> str:
    pairs = [
        f'{label}="{_escape_label(value)}"'
        for label, value in zip(label_names, label_values)
    ]
    pairs.extend(f'{label}="{value}"' for label, value in extra)
    if not pairs:
        return name
    return f"{name}{{{','.join(pairs)}}}"


def render_prometheus(families) -> str:
    """Render metric families to the Prometheus text format."""
    lines: list[str] = []
    for family in families:
        children = family.children()
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if family.kind == "histogram":
            for values, child in children:
                # Cumulative buckets computed on read: a concurrent
                # observation can only make later buckets larger, never
                # break monotonicity within one rendered series.
                counts = list(child.counts)
                running = 0
                for bound, bucket_count in zip(child.bounds, counts):
                    running += bucket_count
                    lines.append(
                        _series_name(
                            f"{family.name}_bucket",
                            family.label_names,
                            values,
                            extra=(("le", _format_value(float(bound))),),
                        )
                        + f" {running}"
                    )
                running += counts[-1]
                lines.append(
                    _series_name(
                        f"{family.name}_bucket",
                        family.label_names,
                        values,
                        extra=(("le", "+Inf"),),
                    )
                    + f" {running}"
                )
                lines.append(
                    _series_name(
                        f"{family.name}_sum", family.label_names, values
                    )
                    + f" {_format_value(child.sum)}"
                )
                lines.append(
                    _series_name(
                        f"{family.name}_count", family.label_names, values
                    )
                    + f" {running}"
                )
        else:
            for values, child in children:
                lines.append(
                    _series_name(family.name, family.label_names, values)
                    + f" {_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry the solver layer instruments against."""
    return _DEFAULT


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the previous one.

    Test isolation hook: solver-layer counters (solve cache, artifact
    store, hybrid certification) always write to the default registry,
    so a test that asserts exact values installs a fresh one.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous
