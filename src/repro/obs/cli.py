"""The ``repro obs`` subcommands: rank burners, tail spans, export.

Each command reads from one of two sources:

* ``--server http://host:port`` — a live :class:`MechanismServer`, via
  its observability routes (``/obs/burn``, ``/trace/recent``,
  ``/metrics``), fetched with stdlib :mod:`urllib`;
* at-rest artifacts — a ``--ledger-dir`` WAL directory (``top``: the
  same recovery a restarting server performs) or a ``--trace-dir``
  JSONL span log (``tail``).

Kept apart from :mod:`repro.cli` so the argparse layer stays a thin
dispatcher and these helpers are unit-testable without a process.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from ..exceptions import ReproError
from .budget import burn_rows_from_dir, floor_proximity

__all__ = ["obs_top", "obs_tail", "obs_export"]

_TIMEOUT = 10.0


def _fetch(url: str) -> bytes:
    try:
        with urllib.request.urlopen(url, timeout=_TIMEOUT) as response:
            return response.read()
    except (urllib.error.URLError, OSError, ValueError) as err:
        raise ReproError(f"could not fetch {url}: {err}") from err


def _fetch_json(url: str) -> dict:
    data = _fetch(url)
    try:
        return json.loads(data)
    except ValueError as err:
        raise ReproError(f"{url} did not return JSON: {err}") from err


def _base(server: str) -> str:
    server = server.rstrip("/")
    if not server.startswith(("http://", "https://")):
        server = f"http://{server}"
    return server


def _format_rows(rows: list[dict], users: int, proximity: dict) -> str:
    lines = [
        f"{'user':<20} {'releases':>8} {'cumulative':>14} "
        f"{'spent':>7} {'left':>6} {'last alpha':>12}"
    ]
    for row in rows:
        remaining = row["remaining_charges"]
        lines.append(
            f"{row['user']:<20} {row['releases']:>8} "
            f"{row['cumulative_alpha']:>14} "
            f"{row['spent_fraction'] * 100:>6.1f}% "
            f"{'inf' if remaining is None else remaining:>6} "
            f"{str(row['last_alpha']):>12}"
        )
    if not rows:
        lines.append("  (no releases recorded)")
    near = ", ".join(
        f"<={k}: {count}" for k, count in sorted(proximity.items())
    )
    lines.append(
        f"{users} user(s); within k charges of the floor: {near or 'n/a'}"
    )
    return "\n".join(lines)


def obs_top(
    *, server: str | None = None, ledger_dir=None, limit: int = 20
) -> str:
    """Rank users by budget burn, live or from a WAL directory."""
    if server is not None:
        payload = _fetch_json(f"{_base(server)}/obs/burn?limit={int(limit)}")
        return _format_rows(
            payload.get("rows", []),
            payload.get("users", 0),
            {
                int(k): v
                for k, v in payload.get("floor_proximity", {}).items()
            },
        )
    if ledger_dir is None:
        raise ReproError("obs top needs --server or --ledger-dir")
    rows = burn_rows_from_dir(ledger_dir)
    return _format_rows(
        [row.to_dict() for row in rows[: int(limit)]],
        len(rows),
        floor_proximity(rows),
    )


def _tail_file(trace_dir, limit: int) -> list[dict]:
    import pathlib

    path = pathlib.Path(trace_dir) / "trace.jsonl"
    if not path.is_file():
        raise ReproError(f"no trace log at {path}")
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue  # torn tail of a live log
    return records[-limit:][::-1]


def _format_spans(records: list[dict]) -> str:
    if not records:
        return "(no spans recorded)"
    lines = []
    for record in records:
        attrs = record.get("attrs") or {}
        extras = " ".join(f"{k}={v}" for k, v in attrs.items())
        lines.append(
            f"{record.get('ts', 0):.6f} {record.get('name', '?'):<16} "
            f"{record.get('dur_ms', 0):>9.3f}ms "
            f"trace={record.get('trace', '?')}"
            + (f" {extras}" if extras else "")
        )
    return "\n".join(lines)


def obs_tail(
    *,
    server: str | None = None,
    trace_dir=None,
    limit: int = 20,
    name: str | None = None,
    trace: str | None = None,
) -> str:
    """Newest-first spans from a live ring buffer or a JSONL log."""
    limit = int(limit)
    if server is not None:
        query = f"limit={limit}"
        if name:
            query += f"&name={name}"
        if trace:
            query += f"&trace={trace}"
        payload = _fetch_json(f"{_base(server)}/trace/recent?{query}")
        return _format_spans(payload.get("spans", []))
    if trace_dir is None:
        raise ReproError("obs tail needs --server or --trace-dir")
    records = _tail_file(trace_dir, max(limit * 10, limit))
    if name is not None:
        records = [r for r in records if r.get("name") == name]
    if trace is not None:
        records = [r for r in records if r.get("trace") == trace]
    return _format_spans(records[:limit])


def obs_export(
    *, server: str, format: str = "prometheus", out=None
) -> str:
    """Dump a live server's metrics (Prometheus text or legacy JSON)."""
    base = _base(server)
    if format == "prometheus":
        text = _fetch(f"{base}/metrics?format=prometheus").decode("utf-8")
    elif format == "json":
        text = json.dumps(_fetch_json(f"{base}/metrics"), indent=2)
    else:
        raise ReproError(
            f"format must be 'prometheus' or 'json', got {format!r}"
        )
    if out is not None:
        import pathlib

        path = pathlib.Path(out)
        path.write_text(text, encoding="utf-8")
        return f"wrote {len(text.splitlines())} line(s) to {path}"
    return text.rstrip("\n")
