"""Command-line interface.

Subcommands::

    repro reproduce figure1            # Figure 1 pmf series + ASCII plot
    repro reproduce table1             # Table 1: optimal = G x interaction
    repro reproduce table2 [-n N] [--alpha A]
    repro reproduce appendix-b         # the non-derivable mechanism
    repro optimal -n N --alpha A [--loss absolute|squared|zero-one]
                  [--space x|factor]
    repro release -n N --alphas A1 A2 ... --true-result R [--seed S]
    repro audit -n N --alpha A [--samples S]
    repro sweep universality|bayesian -n N1 N2 ... --alphas A1 A2 ...
                  [--losses L ...] [--float] [--workers W]
                  [--cache-dir DIR | --no-cache] [--space x|factor]

Fractions are accepted anywhere a privacy level is (e.g. ``--alpha 1/4``).
The sweep command exposes the process-pool (``--workers``) and
persistent solve-cache (``--cache-dir``; disable with ``--no-cache``)
machinery, so heavy theorem-check grids are reachable — and warm re-runs
near-free — without writing Python.
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction

from .analysis.report import render_figure1, render_table1, render_table2
from .analysis.tables import reproduce_table1, reproduce_table2
from .analysis.fractions_fmt import format_matrix, format_value
from .core.counterexample import APPENDIX_B_ALPHA, appendix_b_mechanism, verify_appendix_b
from .core.geometric import GeometricMechanism
from .core.multilevel import MultiLevelRelease
from .core.optimal import optimal_mechanism
from .exceptions import ReproError
from .losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss
from .release.audit import empirical_alpha

__all__ = ["main", "build_parser"]

_LOSSES = {
    "absolute": AbsoluteLoss,
    "squared": SquaredLoss,
    "zero-one": ZeroOneLoss,
}


def _parse_alpha(text: str) -> Fraction:
    try:
        return Fraction(text)
    except (ValueError, ZeroDivisionError) as err:
        raise argparse.ArgumentTypeError(
            f"cannot parse privacy level {text!r}: {err}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Universally Optimal Privacy Mechanisms "
            "for Minimax Agents' (PODS 2010)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate a table/figure from the paper"
    )
    reproduce.add_argument(
        "artifact",
        choices=("figure1", "table1", "table2", "appendix-b"),
    )
    reproduce.add_argument("-n", type=int, default=3)
    reproduce.add_argument("--alpha", type=_parse_alpha, default=Fraction(1, 4))

    optimal = sub.add_parser(
        "optimal", help="solve the bespoke optimal-mechanism LP"
    )
    optimal.add_argument("-n", type=int, required=True)
    optimal.add_argument("--alpha", type=_parse_alpha, required=True)
    optimal.add_argument(
        "--loss", choices=sorted(_LOSSES), default="absolute"
    )
    optimal.add_argument(
        "--side", type=int, nargs="*", default=None,
        help="admissible results (default: all)",
    )
    optimal.add_argument(
        "--space", choices=("x", "factor"), default="x",
        help="LP parameterization: the paper's x-space program, or the "
        "Theorem 2 factor-space reparameterization (certified against "
        "the full program)",
    )

    release = sub.add_parser(
        "release", help="run Algorithm 1 at multiple privacy levels"
    )
    release.add_argument("-n", type=int, required=True)
    release.add_argument(
        "--alphas", type=_parse_alpha, nargs="+", required=True
    )
    release.add_argument("--true-result", type=int, required=True)
    release.add_argument("--seed", type=int, default=None)

    audit = sub.add_parser(
        "audit", help="empirically audit a geometric mechanism's privacy"
    )
    audit.add_argument("-n", type=int, required=True)
    audit.add_argument("--alpha", type=_parse_alpha, required=True)
    audit.add_argument("--samples", type=int, default=20000)
    audit.add_argument("--seed", type=int, default=None)

    tradeoff = sub.add_parser(
        "tradeoff", help="print the privacy-utility frontier for a consumer"
    )
    tradeoff.add_argument("-n", type=int, required=True)
    tradeoff.add_argument(
        "--alphas", type=_parse_alpha, nargs="+", required=True
    )
    tradeoff.add_argument(
        "--loss", choices=sorted(_LOSSES), default="absolute"
    )
    tradeoff.add_argument("--side", type=int, nargs="*", default=None)

    sweep = sub.add_parser(
        "sweep",
        help="run a Theorem 1 universality sweep over a parameter grid",
    )
    sweep.add_argument(
        "kind",
        choices=("universality", "bayesian"),
        help="minimax consumers (Theorem 1) or the GRS09 Bayesian "
        "baseline (uniform prior)",
    )
    sweep.add_argument(
        "-n", type=int, nargs="+", required=True, dest="sizes",
        help="query-result ranges to sweep",
    )
    sweep.add_argument(
        "--alphas", type=_parse_alpha, nargs="+", required=True
    )
    sweep.add_argument(
        "--losses", choices=sorted(_LOSSES), nargs="+",
        default=["absolute"],
    )
    sweep.add_argument(
        "--float", dest="exact", action="store_false",
        help="float regime (default: exact Fractions)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="solve distinct cells on a process pool of this size",
    )
    cache_group = sweep.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache-dir", default=None,
        help="persistent cross-run LP solve cache directory "
        "(warm re-runs perform zero LP solves)",
    )
    cache_group.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent solve cache (including the "
        "REPRO_CACHE_DIR default)",
    )
    sweep.add_argument(
        "--space", choices=("x", "factor"), default="x",
        help="LP parameterization for the bespoke solves "
        "(universality sweeps only)",
    )

    return parser


def _cmd_reproduce(args) -> str:
    if args.artifact == "figure1":
        return render_figure1(Fraction(1, 5))
    if args.artifact == "table1":
        return render_table1(reproduce_table1())
    if args.artifact == "table2":
        return render_table2(reproduce_table2(args.n, args.alpha))
    outcome = verify_appendix_b()
    mechanism = appendix_b_mechanism()
    return "\n".join(
        [
            f"Appendix B mechanism (alpha = {APPENDIX_B_ALPHA}):",
            format_matrix(mechanism),
            f"is 1/2-differentially private: {outcome['is_private']}",
            f"derivable from the geometric mechanism: {outcome['derivable']}",
            "three-entry value at column 1, rows 0..2: "
            + format_value(outcome["witness_value"])
            + " (paper: -0.75/9 = -1/12)",
        ]
    )


def _cmd_optimal(args) -> str:
    loss = _LOSSES[args.loss]()
    result = optimal_mechanism(
        args.n, args.alpha, loss, args.side, exact=True, space=args.space
    )
    return "\n".join(
        [
            f"Optimal alpha={args.alpha} mechanism for loss={args.loss}, "
            f"S={result.side_information}:",
            format_matrix(result.mechanism),
            "minimax loss: "
            + format_value(result.loss)
            + f" = {float(result.loss):.6f}",
        ]
    )


def _cmd_release(args) -> str:
    release = MultiLevelRelease(args.n, args.alphas)
    values = release.release(args.true_result, rng=args.seed)
    lines = [
        f"Algorithm 1 release for true result {args.true_result} "
        f"(n={args.n}):"
    ]
    for alpha, value in zip(release.alphas, values):
        lines.append(f"  level alpha={alpha}: published {value}")
    checks = release.verify_all_coalitions()
    lines.append(
        "collusion resistance (all coalitions): "
        + ("OK" if all(c.holds for c in checks) else "VIOLATED")
    )
    return "\n".join(lines)


def _cmd_audit(args) -> str:
    mechanism = GeometricMechanism(args.n, args.alpha)
    report = empirical_alpha(mechanism, args.samples, rng=args.seed)
    return "\n".join(
        [
            f"Audit of G(n={args.n}, alpha={args.alpha}):",
            f"  exact tightest alpha:     {format_value(report.exact_alpha)}",
            f"  empirical alpha estimate: {report.empirical_alpha:.4f}",
            f"  empirical epsilon:        {report.empirical_epsilon:.4f}",
            f"  samples per input:        {report.samples_per_input}",
            f"  consistent with matrix:   {report.consistent}",
        ]
    )


def _cmd_tradeoff(args) -> str:
    from .analysis.tradeoff import tradeoff_curve

    loss = _LOSSES[args.loss]()
    points = tradeoff_curve(args.n, args.alphas, loss, args.side)
    lines = [
        f"privacy-utility frontier (n={args.n}, loss={args.loss}):",
        f"  {'alpha':>8} {'epsilon':>9} {'optimal loss':>14}",
    ]
    for point in points:
        lines.append(
            f"  {str(point.alpha):>8} {point.epsilon:>9.4f} "
            f"{format_value(point.optimal_loss):>14}"
        )
    return "\n".join(lines)


def _cmd_sweep(args) -> str:
    from .analysis.sweeps import bayesian_universality_sweep, universality_sweep
    from .solvers.cache import SolveCache

    losses = [_LOSSES[name]() for name in args.losses]
    solve_cache = None
    if args.no_cache:
        solve_cache = False
    elif args.cache_dir is not None:
        solve_cache = SolveCache(args.cache_dir)
    if args.kind == "universality":
        cases = [
            (n, alpha, loss, None)
            for n in args.sizes
            for alpha in args.alphas
            for loss in losses
        ]
        records = universality_sweep(
            cases,
            exact=args.exact,
            workers=args.workers,
            solve_cache=solve_cache,
            space=args.space,
        )
    else:
        cases = [
            (n, alpha, loss, [Fraction(1, n + 1)] * (n + 1))
            for n in args.sizes
            for alpha in args.alphas
            for loss in losses
        ]
        records = bayesian_universality_sweep(
            cases,
            exact=args.exact,
            workers=args.workers,
            solve_cache=solve_cache,
        )
    lines = [
        f"{args.kind} sweep over {len(records)} cells "
        f"({'exact' if args.exact else 'float'} regime):",
        f"  {'n':>3} {'alpha':>8} {'loss':<24} {'bespoke':>12} "
        f"{'interaction':>12} holds",
    ]
    for record in records:
        lines.append(
            f"  {record.n:>3} {str(record.alpha):>8} "
            f"{record.loss_name:<24} "
            f"{format_value(record.bespoke_loss):>12} "
            f"{format_value(record.interaction_loss):>12} "
            f"{'yes' if record.holds else 'NO'}"
        )
    holds = all(record.holds for record in records)
    lines.append(
        f"universality holds on all cells: {'yes' if holds else 'NO'}"
    )
    if isinstance(solve_cache, SolveCache):
        # With --workers the solving (and its hits/misses) happens in
        # worker processes sharing the directory, so the per-process
        # counters only describe this process; the on-disk entry count
        # is the cross-process truth.
        stats = solve_cache.stats
        entries = sum(1 for _ in solve_cache.path.rglob("*.json"))
        lines.append(
            f"solve cache {solve_cache.path}: {entries} entries on disk; "
            f"this process: {stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['stores']} stores"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "reproduce": _cmd_reproduce,
        "optimal": _cmd_optimal,
        "release": _cmd_release,
        "audit": _cmd_audit,
        "tradeoff": _cmd_tradeoff,
        "sweep": _cmd_sweep,
    }
    try:
        output = handlers[args.command](args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    try:
        print(output)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
