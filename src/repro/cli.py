"""Command-line interface.

Subcommands::

    repro reproduce figure1            # Figure 1 pmf series + ASCII plot
    repro reproduce table1             # Table 1: optimal = G x interaction
    repro reproduce table2 [-n N] [--alpha A]
    repro reproduce appendix-b         # the non-derivable mechanism
    repro optimal -n N --alpha A [--loss absolute|squared|zero-one]
                  [--space x|factor]
    repro release -n N --alphas A1 A2 ... --true-result R [--seed S]
    repro audit -n N --alpha A [--samples S]
    repro sweep universality|bayesian -n N1 N2 ... --alphas A1 A2 ...
                  [--losses L ...] [--float] [--workers W]
                  [--cache-dir DIR | --no-cache] [--space x|factor]
    repro compile -n N1 N2 ... --alphas A1 A2 ... [--losses L ...]
                  [--side-grid lower upper] [--store DIR] [--cache-dir DIR]
    repro cache verify [--store DIR]
    repro cache gc [--store DIR] [--max-entries K] [--max-age-days D]
                  [--solve-cache DIR]
    repro serve [--host H] [--port P] [--store DIR] [--floor F]
                  [--batch-window S] [--batch-max K] [--audit-rate R]
                  [--audit-every B] [--seed S] [--ledger-dir DIR]
                  [--ledger-fsync always|group|off] [--drain-deadline S]
                  [--trace-rate R] [--trace-dir DIR] [--trace-ring K]
                  [--workers N] [--queue-depth K] [--shed-deadline S]
                  [--degraded 503|geometric]
                  [--wal-failure-policy reject-new-charges|memory-mode-with-alarm]
    repro ledger show|verify|compact [--ledger-dir DIR]
    repro obs top [--server URL | --ledger-dir DIR] [--limit K]
    repro obs tail [--server URL | --trace-dir DIR] [--limit K]
                  [--name SPAN] [--trace ID]
    repro obs export --server URL [--format prometheus|json] [--out F]

Fractions are accepted anywhere a privacy level is (e.g. ``--alpha 1/4``).
The sweep command exposes the process-pool (``--workers``) and
persistent solve-cache (``--cache-dir``; disable with ``--no-cache``)
machinery, so heavy theorem-check grids are reachable — and warm re-runs
near-free — without writing Python.

The artifact lifecycle lives under ``compile`` / ``cache``: ``compile``
pre-builds deployable :class:`~repro.release.artifacts.MechanismArtifact`
entries (exact kernel, alias sampling tables, optimality certificate)
over an ``(n, alpha, loss)`` grid; ``cache verify`` replays every stored
certificate and re-derives every sampling table's pmf with **zero** LP
solves; ``cache gc`` evicts by entry count or age. The store directory
defaults to the ``REPRO_ARTIFACT_DIR`` environment variable.

``serve`` completes the lifecycle: it loads **every** compiled artifact
in the store (verifying each at load), then runs the asyncio
micro-batched statistic service of :mod:`repro.serving` — per-user
privacy accounting (budget floor → HTTP 429), fused heterogeneous
sampling, and the online audit hook — until interrupted. Pre-warm
bespoke side-information deployments with ``compile --side-grid`` so
the server never compiles on the request path.

With ``--ledger-dir`` (or ``REPRO_LEDGER_DIR``) budgets live in a
crash-safe write-ahead-logged :class:`~repro.release.durable_ledger.DurableLedger`
shared by N worker processes; without it they reset with the process.
``SIGTERM``/``SIGINT`` drain gracefully. ``repro ledger`` inspects
(``show``), integrity-checks (``verify``), or compacts (``compact``)
a ledger directory offline; ``show`` includes per-user burn columns
(spent fraction of the epsilon budget, exact remaining charges).

``obs`` is the observability toolbox over :mod:`repro.obs`: ``top``
ranks users by budget burn (live ``/obs/burn`` or a WAL directory at
rest), ``tail`` prints recent trace spans (live ring buffer or a
``--trace-dir`` JSONL log), ``export`` dumps a live server's metrics
as Prometheus text or the legacy JSON snapshot. ``serve`` grows
``--trace-rate``/``--trace-dir``/``--trace-ring`` to configure request
tracing.
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction

from .analysis.report import render_figure1, render_table1, render_table2
from .analysis.tables import reproduce_table1, reproduce_table2
from .analysis.fractions_fmt import format_matrix, format_value
from .core.counterexample import APPENDIX_B_ALPHA, appendix_b_mechanism, verify_appendix_b
from .core.geometric import GeometricMechanism
from .core.multilevel import MultiLevelRelease
from .core.optimal import optimal_mechanism
from .exceptions import ReproError
from .losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss
from .release.audit import empirical_alpha
from .release.durable_ledger import FSYNC_MODES
from .serving.fallback import DEGRADED_MODES

__all__ = ["main", "build_parser"]

_LOSSES = {
    "absolute": AbsoluteLoss,
    "squared": SquaredLoss,
    "zero-one": ZeroOneLoss,
}


def _parse_alpha(text: str) -> Fraction:
    try:
        return Fraction(text)
    except (ValueError, ZeroDivisionError) as err:
        raise argparse.ArgumentTypeError(
            f"cannot parse privacy level {text!r}: {err}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Universally Optimal Privacy Mechanisms "
            "for Minimax Agents' (PODS 2010)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate a table/figure from the paper"
    )
    reproduce.add_argument(
        "artifact",
        choices=("figure1", "table1", "table2", "appendix-b"),
    )
    reproduce.add_argument("-n", type=int, default=3)
    reproduce.add_argument("--alpha", type=_parse_alpha, default=Fraction(1, 4))

    optimal = sub.add_parser(
        "optimal", help="solve the bespoke optimal-mechanism LP"
    )
    optimal.add_argument("-n", type=int, required=True)
    optimal.add_argument("--alpha", type=_parse_alpha, required=True)
    optimal.add_argument(
        "--loss", choices=sorted(_LOSSES), default="absolute"
    )
    optimal.add_argument(
        "--side", type=int, nargs="*", default=None,
        help="admissible results (default: all)",
    )
    optimal.add_argument(
        "--space", choices=("x", "factor"), default="x",
        help="LP parameterization: the paper's x-space program, or the "
        "Theorem 2 factor-space reparameterization (certified against "
        "the full program)",
    )

    release = sub.add_parser(
        "release", help="run Algorithm 1 at multiple privacy levels"
    )
    release.add_argument("-n", type=int, required=True)
    release.add_argument(
        "--alphas", type=_parse_alpha, nargs="+", required=True
    )
    release.add_argument("--true-result", type=int, required=True)
    release.add_argument("--seed", type=int, default=None)

    audit = sub.add_parser(
        "audit", help="empirically audit a geometric mechanism's privacy"
    )
    audit.add_argument("-n", type=int, required=True)
    audit.add_argument("--alpha", type=_parse_alpha, required=True)
    audit.add_argument("--samples", type=int, default=20000)
    audit.add_argument("--seed", type=int, default=None)

    tradeoff = sub.add_parser(
        "tradeoff", help="print the privacy-utility frontier for a consumer"
    )
    tradeoff.add_argument("-n", type=int, required=True)
    tradeoff.add_argument(
        "--alphas", type=_parse_alpha, nargs="+", required=True
    )
    tradeoff.add_argument(
        "--loss", choices=sorted(_LOSSES), default="absolute"
    )
    tradeoff.add_argument("--side", type=int, nargs="*", default=None)

    sweep = sub.add_parser(
        "sweep",
        help="run a Theorem 1 universality sweep over a parameter grid",
    )
    sweep.add_argument(
        "kind",
        choices=("universality", "bayesian"),
        help="minimax consumers (Theorem 1) or the GRS09 Bayesian "
        "baseline (uniform prior)",
    )
    sweep.add_argument(
        "-n", type=int, nargs="+", required=True, dest="sizes",
        help="query-result ranges to sweep",
    )
    sweep.add_argument(
        "--alphas", type=_parse_alpha, nargs="+", required=True
    )
    sweep.add_argument(
        "--losses", choices=sorted(_LOSSES), nargs="+",
        default=["absolute"],
    )
    sweep.add_argument(
        "--float", dest="exact", action="store_false",
        help="float regime (default: exact Fractions)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="solve distinct cells on a process pool of this size",
    )
    cache_group = sweep.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache-dir", default=None,
        help="persistent cross-run LP solve cache directory "
        "(warm re-runs perform zero LP solves)",
    )
    cache_group.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent solve cache (including the "
        "REPRO_CACHE_DIR default)",
    )
    sweep.add_argument(
        "--space", choices=("x", "factor"), default="x",
        help="LP parameterization for the bespoke solves "
        "(universality sweeps only)",
    )

    compile_parser = sub.add_parser(
        "compile",
        help="pre-build deployable mechanism artifacts over a grid",
    )
    compile_parser.add_argument(
        "-n", type=int, nargs="+", required=True, dest="sizes"
    )
    compile_parser.add_argument(
        "--alphas", type=_parse_alpha, nargs="+", required=True
    )
    compile_parser.add_argument(
        "--losses", choices=sorted(_LOSSES), nargs="*",
        default=["absolute"],
        help="bespoke optimal artifacts compiled per (n, alpha) cell in "
        "addition to the geometric artifact; pass no names for "
        "geometric-only",
    )
    compile_parser.add_argument(
        "--side-grid", choices=("lower", "upper"), nargs="+", default=None,
        help="also pre-warm bespoke side-information artifacts per "
        "(n, alpha, loss) cell: 'lower' compiles every lower-bound set "
        "{b..n} (Example 1's sales-receipts consumer), 'upper' every "
        "upper-bound set {0..b} — so a server never compiles on the "
        "request path",
    )
    compile_parser.add_argument(
        "--store", default=None,
        help="artifact store directory (default: REPRO_ARTIFACT_DIR)",
    )
    compile_parser.add_argument(
        "--cache-dir", default=None,
        help="persistent LP solve cache reused for the optimal solves",
    )

    cache = sub.add_parser(
        "cache", help="compiled-artifact store lifecycle"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_verify = cache_sub.add_parser(
        "verify",
        help="replay certificates + pmf/table agreement on every "
        "artifact (zero LP solves)",
    )
    cache_verify.add_argument("--store", default=None)
    cache_gc = cache_sub.add_parser(
        "gc", help="evict artifacts by count and/or age"
    )
    cache_gc.add_argument("--store", default=None)
    cache_gc.add_argument("--max-entries", type=int, default=None)
    cache_gc.add_argument("--max-age-days", type=float, default=None)
    cache_gc.add_argument(
        "--solve-cache", default=None,
        help="also GC this LP solve-cache directory with the same limits",
    )

    serve = sub.add_parser(
        "serve",
        help="serve every compiled artifact as an async micro-batched "
        "statistic service (HTTP/1.1, per-user budgets, online audit)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8790)
    serve.add_argument(
        "--store", default=None,
        help="artifact store directory (default: REPRO_ARTIFACT_DIR)",
    )
    serve.add_argument(
        "--floor", type=_parse_alpha, default=Fraction(0),
        help="per-user privacy floor (joint alpha guarantee the server "
        "refuses to cross; 0 disables enforcement)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.002,
        help="micro-batch deadline in seconds (0 disables batching)",
    )
    serve.add_argument(
        "--batch-max", type=int, default=4096,
        help="micro-batch size bound (flush immediately at this size)",
    )
    serve.add_argument(
        "--audit-rate", type=float, default=0.05,
        help="fraction of responses replayed by the online auditor "
        "(0 disables the hook)",
    )
    serve.add_argument(
        "--audit-every", type=int, default=64,
        help="run an audit sweep every this-many executed batches",
    )
    serve.add_argument(
        "--seed", type=int, default=None,
        help="seed the sampling RNG (reproducible serving for tests)",
    )
    serve.add_argument(
        "--ledger-dir", default=None,
        help="durable privacy-ledger directory (default: the "
        "REPRO_LEDGER_DIR environment variable; unset = in-memory "
        "budgets that reset with the process)",
    )
    serve.add_argument(
        "--ledger-fsync", choices=list(FSYNC_MODES), default="group",
        help="journal fsync policy for --ledger-dir: 'always' fsyncs "
        "every charge, 'group' amortizes one fsync per micro-batch "
        "(group commit, the default), 'off' leaves durability to the "
        "OS page cache (benchmarking only)",
    )
    serve.add_argument(
        "--drain-deadline", type=float, default=5.0,
        help="seconds a graceful shutdown (SIGTERM/SIGINT) waits for "
        "in-flight connections before cancelling them",
    )
    serve.add_argument(
        "--trace-rate", type=float, default=0.0,
        help="fraction of publishes to trace end to end (0 disables "
        "tracing; 1.0 traces every request)",
    )
    serve.add_argument(
        "--trace-dir", default=None,
        help="append sampled trace spans to DIR/trace.jsonl (unset: "
        "in-memory ring buffer only, via GET /trace/recent)",
    )
    serve.add_argument(
        "--trace-ring", type=int, default=1024,
        help="spans kept in the in-memory ring served by /trace/recent",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="serving processes sharing one SO_REUSEPORT listener, the "
        "artifact store, and the durable ledger; >1 starts the "
        "supervised fleet (crash restarts with capped backoff, "
        "lame-duck drain on SIGTERM, rolling reload on SIGHUP)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=0,
        help="per-worker admission bound: publishes in flight beyond "
        "this are shed with 429 + Retry-After *before* any budget "
        "charge (0 disables admission control)",
    )
    serve.add_argument(
        "--shed-deadline", type=float, default=0.0,
        help="shed a publish with 503 when its estimated queue wait "
        "exceeds this many seconds (0 disables deadline shedding)",
    )
    serve.add_argument(
        "--degraded", choices=list(DEGRADED_MODES), default="503",
        help="what a quarantined bespoke artifact serves: '503' "
        "(default) or 'geometric' — fall back to the certificate-"
        "verified same-(n, alpha) geometric mechanism, with responses "
        "marked degraded (universally optimal, so privacy is exact "
        "and every minimax consumer can still post-process optimally)",
    )
    serve.add_argument(
        "--wal-failure-policy",
        choices=["reject-new-charges", "memory-mode-with-alarm",
                 "reject", "memory"],
        default="reject-new-charges",
        help="circuit-breaker policy when the durable ledger's fsync "
        "fails (ENOSPC/EIO): 'reject-new-charges' refuses publishes "
        "with 503 + Retry-After until a recovery probe succeeds; "
        "'memory-mode-with-alarm' keeps serving against a volatile "
        "in-memory overlay, marks responses durability=volatile, and "
        "backfills the WAL on recovery — never a silent downgrade",
    )

    ledger = sub.add_parser(
        "ledger",
        help="inspect, verify, or compact a durable privacy-ledger "
        "directory",
    )
    ledger_sub = ledger.add_subparsers(dest="ledger_command", required=True)
    for name, description in (
        ("show", "per-user budgets and journal statistics"),
        ("verify", "read-only integrity check (checksums, sequence "
         "numbers, cumulative products)"),
        ("compact", "snapshot the state and truncate the journal"),
    ):
        cmd = ledger_sub.add_parser(name, help=description)
        cmd.add_argument(
            "--ledger-dir", default=None,
            help="ledger directory (default: REPRO_LEDGER_DIR)",
        )

    obs = sub.add_parser(
        "obs",
        help="observability toolbox: rank budget burners, tail trace "
        "spans, export metrics",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_top = obs_sub.add_parser(
        "top", help="rank users by privacy-budget burn"
    )
    obs_top.add_argument(
        "--server", default=None,
        help="live server base URL (e.g. http://127.0.0.1:8790)",
    )
    obs_top.add_argument(
        "--ledger-dir", default=None,
        help="rank from a ledger directory at rest "
        "(default: REPRO_LEDGER_DIR when --server is not given)",
    )
    obs_top.add_argument("--limit", type=int, default=20)
    obs_tail = obs_sub.add_parser(
        "tail", help="print recent trace spans, newest first"
    )
    obs_tail.add_argument(
        "--server", default=None,
        help="live server base URL (reads the /trace/recent ring)",
    )
    obs_tail.add_argument(
        "--trace-dir", default=None,
        help="read a trace.jsonl log written by serve --trace-dir",
    )
    obs_tail.add_argument("--limit", type=int, default=20)
    obs_tail.add_argument(
        "--name", default=None, help="only spans with this name"
    )
    obs_tail.add_argument(
        "--trace", default=None, help="only spans of this trace id"
    )
    obs_export = obs_sub.add_parser(
        "export", help="dump a live server's metrics"
    )
    obs_export.add_argument("--server", required=True)
    obs_export.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus"
    )
    obs_export.add_argument(
        "--out", default=None, help="write to this file instead of stdout"
    )

    return parser


def _cmd_reproduce(args) -> str:
    if args.artifact == "figure1":
        return render_figure1(Fraction(1, 5))
    if args.artifact == "table1":
        return render_table1(reproduce_table1())
    if args.artifact == "table2":
        return render_table2(reproduce_table2(args.n, args.alpha))
    outcome = verify_appendix_b()
    mechanism = appendix_b_mechanism()
    return "\n".join(
        [
            f"Appendix B mechanism (alpha = {APPENDIX_B_ALPHA}):",
            format_matrix(mechanism),
            f"is 1/2-differentially private: {outcome['is_private']}",
            f"derivable from the geometric mechanism: {outcome['derivable']}",
            "three-entry value at column 1, rows 0..2: "
            + format_value(outcome["witness_value"])
            + " (paper: -0.75/9 = -1/12)",
        ]
    )


def _cmd_optimal(args) -> str:
    loss = _LOSSES[args.loss]()
    result = optimal_mechanism(
        args.n, args.alpha, loss, args.side, exact=True, space=args.space
    )
    return "\n".join(
        [
            f"Optimal alpha={args.alpha} mechanism for loss={args.loss}, "
            f"S={result.side_information}:",
            format_matrix(result.mechanism),
            "minimax loss: "
            + format_value(result.loss)
            + f" = {float(result.loss):.6f}",
        ]
    )


def _cmd_release(args) -> str:
    release = MultiLevelRelease(args.n, args.alphas)
    values = release.release(args.true_result, rng=args.seed)
    lines = [
        f"Algorithm 1 release for true result {args.true_result} "
        f"(n={args.n}):"
    ]
    for alpha, value in zip(release.alphas, values):
        lines.append(f"  level alpha={alpha}: published {value}")
    checks = release.verify_all_coalitions()
    lines.append(
        "collusion resistance (all coalitions): "
        + ("OK" if all(c.holds for c in checks) else "VIOLATED")
    )
    return "\n".join(lines)


def _cmd_audit(args) -> str:
    mechanism = GeometricMechanism(args.n, args.alpha)
    report = empirical_alpha(mechanism, args.samples, rng=args.seed)
    return "\n".join(
        [
            f"Audit of G(n={args.n}, alpha={args.alpha}):",
            f"  exact tightest alpha:     {format_value(report.exact_alpha)}",
            f"  empirical alpha estimate: {report.empirical_alpha:.4f}",
            f"  empirical epsilon:        {report.empirical_epsilon:.4f}",
            f"  samples per input:        {report.samples_per_input}",
            f"  consistent with matrix:   {report.consistent}",
        ]
    )


def _cmd_tradeoff(args) -> str:
    from .analysis.tradeoff import tradeoff_curve

    loss = _LOSSES[args.loss]()
    points = tradeoff_curve(args.n, args.alphas, loss, args.side)
    lines = [
        f"privacy-utility frontier (n={args.n}, loss={args.loss}):",
        f"  {'alpha':>8} {'epsilon':>9} {'optimal loss':>14}",
    ]
    for point in points:
        lines.append(
            f"  {str(point.alpha):>8} {point.epsilon:>9.4f} "
            f"{format_value(point.optimal_loss):>14}"
        )
    return "\n".join(lines)


def _cmd_sweep(args) -> str:
    from .analysis.sweeps import bayesian_universality_sweep, universality_sweep
    from .solvers.cache import SolveCache

    losses = [_LOSSES[name]() for name in args.losses]
    solve_cache = None
    if args.no_cache:
        solve_cache = False
    elif args.cache_dir is not None:
        solve_cache = SolveCache(args.cache_dir)
    if args.kind == "universality":
        cases = [
            (n, alpha, loss, None)
            for n in args.sizes
            for alpha in args.alphas
            for loss in losses
        ]
        records = universality_sweep(
            cases,
            exact=args.exact,
            workers=args.workers,
            solve_cache=solve_cache,
            space=args.space,
        )
    else:
        cases = [
            (n, alpha, loss, [Fraction(1, n + 1)] * (n + 1))
            for n in args.sizes
            for alpha in args.alphas
            for loss in losses
        ]
        records = bayesian_universality_sweep(
            cases,
            exact=args.exact,
            workers=args.workers,
            solve_cache=solve_cache,
        )
    lines = [
        f"{args.kind} sweep over {len(records)} cells "
        f"({'exact' if args.exact else 'float'} regime):",
        f"  {'n':>3} {'alpha':>8} {'loss':<24} {'bespoke':>12} "
        f"{'interaction':>12} holds",
    ]
    for record in records:
        lines.append(
            f"  {record.n:>3} {str(record.alpha):>8} "
            f"{record.loss_name:<24} "
            f"{format_value(record.bespoke_loss):>12} "
            f"{format_value(record.interaction_loss):>12} "
            f"{'yes' if record.holds else 'NO'}"
        )
    holds = all(record.holds for record in records)
    lines.append(
        f"universality holds on all cells: {'yes' if holds else 'NO'}"
    )
    if isinstance(solve_cache, SolveCache):
        # With --workers the solving (and its hits/misses) happens in
        # worker processes sharing the directory, so the per-process
        # counters only describe this process; the on-disk entry count
        # is the cross-process truth.
        stats = solve_cache.stats
        entries = sum(1 for _ in solve_cache.path.rglob("*.json"))
        lines.append(
            f"solve cache {solve_cache.path}: {entries} entries on disk; "
            f"this process: {stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['stores']} stores"
        )
    return "\n".join(lines)


def _resolve_cli_store(path):
    from .release.artifacts import ArtifactStore, default_artifact_store

    if path is not None:
        return ArtifactStore(path)
    store = default_artifact_store()
    if store is None:
        raise ReproError(
            "no artifact store: pass --store DIR or set REPRO_ARTIFACT_DIR"
        )
    return store


def _cmd_compile(args) -> str:
    from .release.artifacts import ArtifactSpec
    from .solvers.cache import SolveCache

    store = _resolve_cli_store(args.store)
    solve_cache = (
        SolveCache(args.cache_dir) if args.cache_dir is not None else None
    )
    side_grid = getattr(args, "side_grid", None) or ()
    specs = []
    for n in args.sizes:
        sides = []
        if "lower" in side_grid:
            # "result >= b" side information, one set per threshold.
            sides.extend(tuple(range(b, n + 1)) for b in range(1, n + 1))
        if "upper" in side_grid:
            # "result <= b" side information.
            sides.extend(tuple(range(0, b + 1)) for b in range(n))
        for alpha in args.alphas:
            specs.append(ArtifactSpec("geometric", n, alpha))
            for loss in args.losses:
                specs.append(ArtifactSpec("optimal", n, alpha, loss=loss))
                for side in sides:
                    specs.append(
                        ArtifactSpec("optimal", n, alpha, loss=loss, side=side)
                    )
    lines = [f"compiling {len(specs)} artifacts into {store.path}:"]
    before = store.stats["compiles"]
    for spec in specs:
        artifact = store.get_or_compile(spec, solve_cache=solve_cache)
        fresh = store.stats["compiles"] > before
        before = store.stats["compiles"]
        label = spec.loss if spec.kind == "optimal" else "-"
        loss_value = (
            format_value(artifact.loss_value)
            if artifact.loss_value is not None
            else "-"
        )
        side = (
            "all"
            if spec.side is None
            else "{%d..%d}" % (min(spec.side), max(spec.side))
        )
        lines.append(
            f"  {'compiled' if fresh else 'cached  '} {spec.kind:<9} "
            f"n={spec.n} alpha={spec.alpha} loss={label} side={side} "
            f"key={spec.key()[:12]} loss_value={loss_value}"
        )
    stats = store.stats
    lines.append(
        f"store: {stats['compiles']} compiled this run, "
        f"{stats['hits'] + stats['misses']} lookups "
        f"({stats['hits']} hits)"
    )
    if solve_cache is not None:
        lines.append(
            f"solve cache {solve_cache.path}: "
            f"{solve_cache.stats['hits']} hits, "
            f"{solve_cache.stats['misses']} misses"
        )
    return "\n".join(lines)


def _cmd_cache(args) -> str:
    store = _resolve_cli_store(args.store)
    if args.cache_command == "verify":
        reports = store.verify_all()
        lines = [
            f"verifying {len(reports)} artifacts in {store.path} "
            "(certificate replay + exact pmf/table agreement; 0 LP solves):"
        ]
        failed = 0
        for report in reports:
            if report.ok:
                lines.append(
                    f"  OK   {report.kind:<9} {report.key[:12]} "
                    f"checks={','.join(report.checks)}"
                )
            else:
                failed += 1
                lines.append(
                    f"  FAIL {report.kind:<9} {report.key[:12]} "
                    f"failures={','.join(report.failures)}: {report.detail}"
                )
        if failed:
            raise ReproError(
                f"{failed} of {len(reports)} artifacts failed "
                "verification:\n" + "\n".join(lines)
            )
        lines.append(f"all {len(reports)} artifacts verified")
        return "\n".join(lines)
    removed = store.gc(
        max_entries=args.max_entries, max_age_days=args.max_age_days
    )
    lines = [
        f"artifact store {store.path}: evicted {removed} entries, "
        f"{len(store.keys())} remain"
    ]
    if args.solve_cache is not None:
        from .solvers.cache import SolveCache

        solve_cache = SolveCache(args.solve_cache)
        dropped = solve_cache.gc(
            max_entries=args.max_entries, max_age_days=args.max_age_days
        )
        lines.append(
            f"solve cache {solve_cache.path}: evicted {dropped} entries"
        )
    return "\n".join(lines)


def _resolve_ledger_dir(value):
    import os

    return value if value is not None else os.environ.get("REPRO_LEDGER_DIR")


def _cmd_serve_fleet(args, store, ledger_dir) -> str:
    """The ``--workers N`` path: a supervised SO_REUSEPORT fleet."""
    from .serving.supervisor import ServingSupervisor

    worker_config = {
        "store": str(store.path),
        "floor": str(args.floor),
        "ledger_dir": ledger_dir,
        "ledger_fsync": args.ledger_fsync,
        "drain_deadline": args.drain_deadline,
        "batch_window": args.batch_window,
        "batch_max": args.batch_max,
        "audit_rate": args.audit_rate,
        "audit_every": args.audit_every,
        "seed": args.seed,
        "trace_rate": args.trace_rate,
        "queue_depth": args.queue_depth,
        "shed_deadline": args.shed_deadline,
        "degraded": args.degraded,
        "wal_failure_policy": args.wal_failure_policy,
    }
    supervisor = ServingSupervisor(
        worker_config,
        workers=args.workers,
        host=args.host,
        port=args.port,
        drain_deadline=args.drain_deadline,
    )
    supervisor.start()
    budgets = (
        f"durable ({ledger_dir}, fsync={args.ledger_fsync}, "
        "shared WAL)" if ledger_dir
        else "in-memory PER WORKER (floors are per-process without "
        "--ledger-dir!)"
    )
    print(
        f"fleet of {args.workers} workers on "
        f"http://{args.host}:{supervisor.port} "
        f"(floor={args.floor}, queue_depth={args.queue_depth}, "
        f"shed_deadline={args.shed_deadline}s, degraded={args.degraded}, "
        f"wal_failure_policy={args.wal_failure_policy}, "
        f"budgets {budgets}; SIGTERM drains, SIGHUP rolls)",
        flush=True,
    )
    supervisor.run(install_signal_handlers=True)
    status = supervisor.status()
    stats = status["stats"]
    published = sum(slot["published"] for slot in status["slots"])
    return (
        f"fleet drained: {published} statistics across the fleet, "
        f"{stats['spawns']} spawns, {stats['restarts']} restarts, "
        f"{stats['heartbeat_kills']} heartbeat kills"
    )


def _cmd_serve(args) -> str:
    import asyncio

    from .serving.server import MechanismServer

    store = _resolve_cli_store(args.store)
    ledger_dir = _resolve_ledger_dir(args.ledger_dir)
    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    if args.workers > 1:
        return _cmd_serve_fleet(args, store, ledger_dir)
    server = MechanismServer(
        store,
        floor=args.floor,
        ledger_dir=ledger_dir,
        ledger_fsync=args.ledger_fsync,
        drain_deadline=args.drain_deadline,
        batch_window=args.batch_window,
        batch_max=args.batch_max,
        audit_rate=args.audit_rate,
        audit_every=args.audit_every,
        seed=args.seed,
        trace_rate=args.trace_rate,
        trace_dir=args.trace_dir,
        trace_ring=args.trace_ring,
        queue_depth=args.queue_depth,
        shed_deadline=args.shed_deadline,
        degraded=args.degraded,
        wal_failure_policy=args.wal_failure_policy,
    )
    loaded = server.load_store()
    if not loaded:
        raise ReproError(
            f"artifact store {store.path} is empty: run `repro compile` "
            "first (the server never solves on the request path)"
        )
    lines = [f"loaded {loaded} verified deployments from {store.path}:"]
    for deployment in server.deployments:
        spec = deployment.spec
        lines.append(
            f"  {spec.kind:<9} n={spec.n} alpha={spec.alpha} "
            f"key={spec.key()[:12]}"
        )
    for key, entry in server.quarantined.items():
        lines.append(
            f"  QUARANTINED {key[:12]}: {entry['reason']}"
        )
    print("\n".join(lines), flush=True)

    async def _run() -> None:
        await server.start(host=args.host, port=args.port)
        budgets = (
            f"durable ({ledger_dir}, fsync={args.ledger_fsync})"
            if ledger_dir
            else "in-memory (reset on restart; set --ledger-dir)"
        )
        print(
            f"serving on http://{args.host}:{server.port} "
            f"(floor={args.floor}, window={args.batch_window}s, "
            f"batch_max={args.batch_max}, audit_rate={args.audit_rate}, "
            f"budgets {budgets})",
            flush=True,
        )
        try:
            await server.serve_forever(install_signal_handlers=True)
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    stats = server.batcher.stats
    return (
        f"served {server.metrics['published']} statistics in "
        f"{stats['batches']} batches "
        f"(max batch {stats['max_batch']}, "
        f"{server.metrics['rejected_budget']} budget rejections, "
        f"{server.metrics['audit_flagged']} audit flags)"
    )


def _cmd_ledger(args) -> str:
    from .release.durable_ledger import DurableLedger, verify_ledger_dir

    ledger_dir = _resolve_ledger_dir(args.ledger_dir)
    if ledger_dir is None:
        raise ReproError(
            "no ledger directory: pass --ledger-dir or set REPRO_LEDGER_DIR"
        )
    if args.ledger_command == "verify":
        report = verify_ledger_dir(ledger_dir)
        lines = [
            f"ledger {report['path']}: "
            f"{'OK' if report['ok'] else 'DAMAGED'}",
            f"  records={report['records']} seq={report['seq']} "
            f"snapshot_seq={report['snapshot_seq']} "
            f"users={report['users']}",
        ]
        if report.get("floor") is not None:
            lines.append(f"  floor={report['floor']}")
        if report["torn_tail_bytes"]:
            lines.append(
                f"  torn tail: {report['torn_tail_bytes']} byte(s) "
                "(recovery will truncate; not a failure)"
            )
        for failure in report["failures"]:
            lines.append(f"  FAIL: {failure}")
        if not report["ok"]:
            raise ReproError("\n".join(lines))
        return "\n".join(lines)
    ledger = DurableLedger(ledger_dir)
    try:
        if args.ledger_command == "compact":
            result = ledger.compact()
            return (
                f"compacted {ledger.path}: journal "
                f"{result['journal_bytes_before']} -> "
                f"{result['journal_bytes_after']} bytes "
                f"(snapshot seq {result['snapshot_seq']}, "
                f"{result['users']} users)"
            )
        stats = ledger.stats()
        lines = [
            f"ledger {stats['path']}: floor={ledger.floor} "
            f"seq={stats['seq']} journal_bytes={stats['journal_bytes']} "
            f"replay_entries={stats['replay_entries']}",
        ]
        from .obs.budget import burn_rows_from_book

        burn = {row.user: row for row in burn_rows_from_book(ledger)}
        users = sorted(ledger._books)
        for user in users:
            budget = ledger.view(user)
            row = burn.get(user)
            extra = ""
            if row is not None:
                left = (
                    "inf"
                    if row.remaining_charges is None
                    else row.remaining_charges
                )
                extra = (
                    f" spent={row.spent_fraction * 100:.1f}% "
                    f"charges_left={left}"
                )
            lines.append(
                f"  {user}: releases={budget.releases} "
                f"cumulative={budget.cumulative_alpha} "
                f"(epsilon={budget.cumulative_epsilon:.4f}) "
                f"remaining={budget.remaining_alpha}"
                + extra
            )
        if not users:
            lines.append("  (no releases recorded)")
        return "\n".join(lines)
    finally:
        ledger.close()


def _cmd_obs(args) -> str:
    from .obs.cli import obs_export, obs_tail, obs_top

    if args.obs_command == "top":
        ledger_dir = args.ledger_dir
        if args.server is None:
            ledger_dir = _resolve_ledger_dir(ledger_dir)
        return obs_top(
            server=args.server, ledger_dir=ledger_dir, limit=args.limit
        )
    if args.obs_command == "tail":
        return obs_tail(
            server=args.server,
            trace_dir=args.trace_dir,
            limit=args.limit,
            name=args.name,
            trace=args.trace,
        )
    return obs_export(
        server=args.server, format=args.format, out=args.out
    )


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "reproduce": _cmd_reproduce,
        "optimal": _cmd_optimal,
        "release": _cmd_release,
        "audit": _cmd_audit,
        "tradeoff": _cmd_tradeoff,
        "sweep": _cmd_sweep,
        "compile": _cmd_compile,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "ledger": _cmd_ledger,
        "obs": _cmd_obs,
    }
    try:
        output = handlers[args.command](args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    try:
        print(output)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
