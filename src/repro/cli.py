"""Command-line interface.

Subcommands::

    repro reproduce figure1            # Figure 1 pmf series + ASCII plot
    repro reproduce table1             # Table 1: optimal = G x interaction
    repro reproduce table2 [-n N] [--alpha A]
    repro reproduce appendix-b         # the non-derivable mechanism
    repro optimal -n N --alpha A [--loss absolute|squared|zero-one]
    repro release -n N --alphas A1 A2 ... --true-result R [--seed S]
    repro audit -n N --alpha A [--samples S]

Fractions are accepted anywhere a privacy level is (e.g. ``--alpha 1/4``).
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction

from .analysis.report import render_figure1, render_table1, render_table2
from .analysis.tables import reproduce_table1, reproduce_table2
from .analysis.fractions_fmt import format_matrix, format_value
from .core.counterexample import APPENDIX_B_ALPHA, appendix_b_mechanism, verify_appendix_b
from .core.geometric import GeometricMechanism
from .core.multilevel import MultiLevelRelease
from .core.optimal import optimal_mechanism
from .exceptions import ReproError
from .losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss
from .release.audit import empirical_alpha

__all__ = ["main", "build_parser"]

_LOSSES = {
    "absolute": AbsoluteLoss,
    "squared": SquaredLoss,
    "zero-one": ZeroOneLoss,
}


def _parse_alpha(text: str) -> Fraction:
    try:
        return Fraction(text)
    except (ValueError, ZeroDivisionError) as err:
        raise argparse.ArgumentTypeError(
            f"cannot parse privacy level {text!r}: {err}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Universally Optimal Privacy Mechanisms "
            "for Minimax Agents' (PODS 2010)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate a table/figure from the paper"
    )
    reproduce.add_argument(
        "artifact",
        choices=("figure1", "table1", "table2", "appendix-b"),
    )
    reproduce.add_argument("-n", type=int, default=3)
    reproduce.add_argument("--alpha", type=_parse_alpha, default=Fraction(1, 4))

    optimal = sub.add_parser(
        "optimal", help="solve the bespoke optimal-mechanism LP"
    )
    optimal.add_argument("-n", type=int, required=True)
    optimal.add_argument("--alpha", type=_parse_alpha, required=True)
    optimal.add_argument(
        "--loss", choices=sorted(_LOSSES), default="absolute"
    )
    optimal.add_argument(
        "--side", type=int, nargs="*", default=None,
        help="admissible results (default: all)",
    )

    release = sub.add_parser(
        "release", help="run Algorithm 1 at multiple privacy levels"
    )
    release.add_argument("-n", type=int, required=True)
    release.add_argument(
        "--alphas", type=_parse_alpha, nargs="+", required=True
    )
    release.add_argument("--true-result", type=int, required=True)
    release.add_argument("--seed", type=int, default=None)

    audit = sub.add_parser(
        "audit", help="empirically audit a geometric mechanism's privacy"
    )
    audit.add_argument("-n", type=int, required=True)
    audit.add_argument("--alpha", type=_parse_alpha, required=True)
    audit.add_argument("--samples", type=int, default=20000)
    audit.add_argument("--seed", type=int, default=None)

    tradeoff = sub.add_parser(
        "tradeoff", help="print the privacy-utility frontier for a consumer"
    )
    tradeoff.add_argument("-n", type=int, required=True)
    tradeoff.add_argument(
        "--alphas", type=_parse_alpha, nargs="+", required=True
    )
    tradeoff.add_argument(
        "--loss", choices=sorted(_LOSSES), default="absolute"
    )
    tradeoff.add_argument("--side", type=int, nargs="*", default=None)

    return parser


def _cmd_reproduce(args) -> str:
    if args.artifact == "figure1":
        return render_figure1(Fraction(1, 5))
    if args.artifact == "table1":
        return render_table1(reproduce_table1())
    if args.artifact == "table2":
        return render_table2(reproduce_table2(args.n, args.alpha))
    outcome = verify_appendix_b()
    mechanism = appendix_b_mechanism()
    return "\n".join(
        [
            f"Appendix B mechanism (alpha = {APPENDIX_B_ALPHA}):",
            format_matrix(mechanism),
            f"is 1/2-differentially private: {outcome['is_private']}",
            f"derivable from the geometric mechanism: {outcome['derivable']}",
            "three-entry value at column 1, rows 0..2: "
            + format_value(outcome["witness_value"])
            + " (paper: -0.75/9 = -1/12)",
        ]
    )


def _cmd_optimal(args) -> str:
    loss = _LOSSES[args.loss]()
    result = optimal_mechanism(
        args.n, args.alpha, loss, args.side, exact=True
    )
    return "\n".join(
        [
            f"Optimal alpha={args.alpha} mechanism for loss={args.loss}, "
            f"S={result.side_information}:",
            format_matrix(result.mechanism),
            "minimax loss: "
            + format_value(result.loss)
            + f" = {float(result.loss):.6f}",
        ]
    )


def _cmd_release(args) -> str:
    release = MultiLevelRelease(args.n, args.alphas)
    values = release.release(args.true_result, rng=args.seed)
    lines = [
        f"Algorithm 1 release for true result {args.true_result} "
        f"(n={args.n}):"
    ]
    for alpha, value in zip(release.alphas, values):
        lines.append(f"  level alpha={alpha}: published {value}")
    checks = release.verify_all_coalitions()
    lines.append(
        "collusion resistance (all coalitions): "
        + ("OK" if all(c.holds for c in checks) else "VIOLATED")
    )
    return "\n".join(lines)


def _cmd_audit(args) -> str:
    mechanism = GeometricMechanism(args.n, args.alpha)
    report = empirical_alpha(mechanism, args.samples, rng=args.seed)
    return "\n".join(
        [
            f"Audit of G(n={args.n}, alpha={args.alpha}):",
            f"  exact tightest alpha:     {format_value(report.exact_alpha)}",
            f"  empirical alpha estimate: {report.empirical_alpha:.4f}",
            f"  empirical epsilon:        {report.empirical_epsilon:.4f}",
            f"  samples per input:        {report.samples_per_input}",
            f"  consistent with matrix:   {report.consistent}",
        ]
    )


def _cmd_tradeoff(args) -> str:
    from .analysis.tradeoff import tradeoff_curve

    loss = _LOSSES[args.loss]()
    points = tradeoff_curve(args.n, args.alphas, loss, args.side)
    lines = [
        f"privacy-utility frontier (n={args.n}, loss={args.loss}):",
        f"  {'alpha':>8} {'epsilon':>9} {'optimal loss':>14}",
    ]
    for point in points:
        lines.append(
            f"  {str(point.alpha):>8} {point.epsilon:>9.4f} "
            f"{format_value(point.optimal_loss):>14}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "reproduce": _cmd_reproduce,
        "optimal": _cmd_optimal,
        "release": _cmd_release,
        "audit": _cmd_audit,
        "tradeoff": _cmd_tradeoff,
    }
    try:
        output = handlers[args.command](args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    try:
        print(output)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
