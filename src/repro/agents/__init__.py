"""Decision-theoretic information consumers.

Section 2.3 models consumers as *minimax* (risk-averse) agents: each has
a monotone loss function, side information restricting the possible true
results, and evaluates a mechanism by its worst-case expected loss.
Section 2.7 contrasts them with the *Bayesian* agents of Ghosh,
Roughgarden & Sundararajan (STOC 2009), who instead carry a prior and
evaluate expected loss under it — the baseline model this library also
implements for comparison benchmarks.
"""

from .bayesian import BayesianAgent, bayesian_optimal_mechanism
from .minimax import MinimaxAgent
from .rationality import interact_and_report, tailored_loss
from .side_information import SideInformation

__all__ = [
    "SideInformation",
    "MinimaxAgent",
    "BayesianAgent",
    "bayesian_optimal_mechanism",
    "interact_and_report",
    "tailored_loss",
]
