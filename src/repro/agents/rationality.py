"""Rational-interaction pipelines.

Small conveniences that tie an agent to a deployed mechanism: computing
the loss an agent achieves *after* interacting optimally (the quantity
Theorem 1 equates with the bespoke optimum), and running the full
publish-observe-reinterpret loop on sampled data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.mechanism import Mechanism
from ..sampling.rng import ensure_generator
from .minimax import MinimaxAgent

__all__ = ["tailored_loss", "interact_and_report", "InteractionTrace"]


def tailored_loss(agent: MinimaxAgent, deployed: Mechanism, **solver_kwargs):
    """Loss the agent achieves by interacting optimally with ``deployed``.

    This is the left-hand side of Theorem 1's utility claim; comparing it
    against ``agent.bespoke_mechanism(alpha).loss`` is the universality
    check run throughout the benchmarks.
    """
    return agent.best_interaction(deployed, **solver_kwargs).loss


@dataclass(frozen=True)
class InteractionTrace:
    """One full publish/observe/reinterpret round.

    Attributes
    ----------
    true_result:
        The unperturbed count.
    published:
        What the mechanism released.
    reinterpreted:
        The agent's final estimate after applying its optimal kernel.
    """

    true_result: int
    published: int
    reinterpreted: int


def interact_and_report(
    agent: MinimaxAgent,
    deployed: Mechanism,
    true_result: int,
    rng=None,
    **solver_kwargs,
) -> InteractionTrace:
    """Sample the deployed mechanism once and post-process rationally."""
    rng = ensure_generator(rng)
    interaction = agent.best_interaction(deployed, **solver_kwargs)
    published = deployed.sample(true_result, rng)
    final = agent.reinterpret(published, interaction.kernel, rng)
    return InteractionTrace(
        true_result=int(true_result),
        published=published,
        reinterpreted=final,
    )
