"""Minimax (risk-averse) information consumers (Section 2.3).

A :class:`MinimaxAgent` bundles a monotone loss function with side
information. It can evaluate its disutility for any mechanism
(Equation 1), compute its optimal randomized interaction with a deployed
mechanism (Section 2.4.3), request its bespoke optimal mechanism
(Section 2.5), and post-process observed outputs. The universality
theorem says the first two paths meet: interacting optimally with the
geometric mechanism achieves the bespoke optimum.
"""

from __future__ import annotations

import numpy as np

from ..core.interaction import InteractionResult, optimal_interaction
from ..core.mechanism import Mechanism
from ..core.optimal import OptimalMechanismResult, optimal_mechanism
from ..exceptions import ValidationError
from ..losses.base import LossFunction, check_monotone
from ..sampling.rng import ensure_generator
from .side_information import SideInformation

__all__ = ["MinimaxAgent"]


class MinimaxAgent:
    """A risk-averse rational information consumer.

    Parameters
    ----------
    loss:
        The agent's loss function (validated against the paper's
        monotonicity assumption for the given ``n``).
    side_information:
        A :class:`SideInformation`, an iterable of admissible results, or
        ``None`` for no side information.
    n:
        Maximum query result the agent reasons over.
    name:
        Optional label for reports.

    Examples
    --------
    >>> from fractions import Fraction as F
    >>> from repro.losses import AbsoluteLoss
    >>> from repro.core.geometric import GeometricMechanism
    >>> agent = MinimaxAgent(AbsoluteLoss(), None, n=3)
    >>> g = GeometricMechanism(3, F(1, 4))
    >>> interaction = agent.best_interaction(g)
    >>> float(interaction.loss) <= float(agent.disutility(g))
    True
    """

    def __init__(
        self,
        loss: LossFunction,
        side_information=None,
        *,
        n: int,
        name: str | None = None,
        validate: bool = True,
    ) -> None:
        if not isinstance(loss, LossFunction):
            raise ValidationError(
                f"loss must be a LossFunction, got {type(loss).__name__}"
            )
        if side_information is None:
            side_information = SideInformation.full(n)
        elif not isinstance(side_information, SideInformation):
            side_information = SideInformation(side_information, n)
        elif side_information.n != n:
            raise ValidationError(
                f"side information covers n={side_information.n}, "
                f"agent expects n={n}"
            )
        if validate:
            check_monotone(loss, n)
        self.loss = loss
        self.side_information = side_information
        self.n = side_information.n
        self.name = name

    # ------------------------------------------------------------------
    def disutility(self, mechanism: Mechanism):
        """Equation 1: worst-case expected loss over the side information.

        Evaluates the mechanism *as deployed*, without interaction.
        """
        return mechanism.worst_case_loss(self.loss, self.side_information)

    def best_interaction(
        self, deployed: Mechanism, *, backend=None, exact: bool | None = None
    ) -> InteractionResult:
        """The agent's optimal randomized post-processing (Section 2.4.3)."""
        return optimal_interaction(
            deployed,
            self.loss,
            self.side_information,
            backend=backend,
            exact=exact,
        )

    def bespoke_mechanism(
        self,
        alpha,
        *,
        backend=None,
        exact: bool | None = None,
        refine: bool = False,
    ) -> OptimalMechanismResult:
        """The agent's tailored optimal alpha-DP mechanism (Section 2.5)."""
        return optimal_mechanism(
            self.n,
            alpha,
            self.loss,
            self.side_information,
            backend=backend,
            exact=exact,
            refine=refine,
        )

    def reinterpret(
        self, observed: int, kernel: np.ndarray, rng=None
    ) -> int:
        """Apply an interaction kernel to one observed output.

        Samples ``r'`` from row ``observed`` of ``kernel`` — the runtime
        counterpart of :meth:`best_interaction` for consumers receiving a
        published result rather than a whole mechanism.
        """
        kernel = np.asarray(kernel)
        if not 0 <= observed < kernel.shape[0]:
            raise ValidationError(
                f"observed result {observed} outside [0, {kernel.shape[0] - 1}]"
            )
        rng = ensure_generator(rng)
        row = np.asarray(kernel[observed], dtype=float)
        row = np.clip(row, 0.0, None)
        total = float(row.sum())
        if not np.isfinite(total) or total <= 0.0:
            raise ValidationError(
                f"interaction kernel row {observed} has no positive mass "
                f"(sum={total!r}); a reinterpretation row must be a "
                "probability distribution"
            )
        row = row / total
        return int(rng.choice(kernel.shape[1], p=row))

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<MinimaxAgent{label} n={self.n} loss={self.loss.describe()} "
            f"S={list(self.side_information.members)}>"
        )
