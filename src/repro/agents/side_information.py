"""Side information: what a consumer already knows about the result.

Section 2.3: a consumer knows the true result cannot fall outside a set
``S`` of ``{0..n}`` — e.g. the population of San Diego upper-bounds the
flu count, and a drug company's own sales lower-bound it. Side
information is *set-valued* (not probabilistic); this is exactly what
distinguishes the paper's minimax model from the Bayesian model of
Ghosh et al., whose agents must carry a full prior.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..exceptions import SideInformationError
from ..validation import check_result_range

__all__ = ["SideInformation"]


class SideInformation:
    """An immutable non-empty subset of the result range ``{0..n}``.

    Parameters
    ----------
    members:
        Iterable of admissible results.
    n:
        The maximum query result the set must respect.

    Examples
    --------
    >>> s = SideInformation.interval(2, 5, n=10)
    >>> 3 in s
    True
    >>> len(s)
    4
    """

    __slots__ = ("_members", "n")

    def __init__(self, members: Iterable[int], n: int) -> None:
        self.n = check_result_range(n)
        cleaned = sorted({int(i) for i in members})
        if not cleaned:
            raise SideInformationError("side information must be non-empty")
        if cleaned[0] < 0 or cleaned[-1] > self.n:
            raise SideInformationError(
                f"side information {cleaned} falls outside [0, {self.n}]"
            )
        self._members: tuple[int, ...] = tuple(cleaned)

    # ------------------------------------------------------------------
    @classmethod
    def full(cls, n: int) -> "SideInformation":
        """No side information: the full range ``{0..n}``."""
        n = check_result_range(n)
        return cls(range(n + 1), n)

    @classmethod
    def interval(cls, low: int, high: int, *, n: int) -> "SideInformation":
        """The contiguous range ``{low..high}`` (the paper's examples)."""
        if low > high:
            raise SideInformationError(
                f"interval is empty: low={low} > high={high}"
            )
        return cls(range(low, high + 1), n)

    @classmethod
    def at_least(cls, low: int, *, n: int) -> "SideInformation":
        """Lower bound only — e.g. the drug company's ``{l..n}``."""
        return cls.interval(low, check_result_range(n), n=n)

    @classmethod
    def at_most(cls, high: int, *, n: int) -> "SideInformation":
        """Upper bound only — e.g. a population cap ``{0..high}``."""
        return cls.interval(0, high, n=n)

    # ------------------------------------------------------------------
    @property
    def members(self) -> tuple[int, ...]:
        """Sorted tuple of admissible results."""
        return self._members

    @property
    def is_trivial(self) -> bool:
        """Whether the set is the full range (no actual information)."""
        return len(self._members) == self.n + 1

    def __contains__(self, value: object) -> bool:
        return value in self._members

    def __iter__(self) -> Iterator[int]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SideInformation):
            return NotImplemented
        return self.n == other.n and self._members == other._members

    def __hash__(self) -> int:
        return hash((self.n, self._members))

    def intersect(self, other: "SideInformation") -> "SideInformation":
        """Combine two pieces of side information (set intersection)."""
        if self.n != other.n:
            raise SideInformationError(
                f"cannot intersect side information over different ranges "
                f"({self.n} vs {other.n})"
            )
        common = set(self._members) & set(other._members)
        if not common:
            raise SideInformationError(
                "side information sets are contradictory (empty intersection)"
            )
        return SideInformation(common, self.n)

    def __repr__(self) -> str:
        if self.is_trivial:
            return f"<SideInformation full 0..{self.n}>"
        if self._members == tuple(
            range(self._members[0], self._members[-1] + 1)
        ):
            return (
                f"<SideInformation {self._members[0]}.."
                f"{self._members[-1]} of 0..{self.n}>"
            )
        return f"<SideInformation {list(self._members)} of 0..{self.n}>"
