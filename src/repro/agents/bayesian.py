"""Bayesian information consumers — the GRS09 baseline (Section 2.7).

Ghosh, Roughgarden & Sundararajan (STOC 2009) model consumers with a
*prior* ``p`` over true results and evaluate mechanisms by prior-expected
loss ``sum_i p_i sum_r x[i,r] l(i,r)``. Two structural contrasts with the
minimax model, both surfaced by this module and its benchmarks:

* a Bayesian agent's optimal post-processing is *deterministic* — for
  each observed output it remaps to the single estimate minimizing
  posterior expected loss — whereas minimax agents genuinely randomize;
* the Bayesian bespoke-mechanism LP has a *linear* objective (no
  epigraph variable).

The GRS09 universality result (geometric is simultaneously optimal for
all Bayesian consumers too) is reproduced as a benchmark, since this
paper's Theorem 1 strictly generalizes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..core.mechanism import Mechanism
from ..exceptions import ValidationError
from ..losses.base import LossFunction, check_monotone, loss_matrix
from ..solvers.base import LinearProgram, choose_backend
from ..solvers.cache import resolve_cache
from ..validation import as_fraction, check_alpha, check_result_range, is_exact_array

__all__ = [
    "BayesianAgent",
    "BayesianInteraction",
    "bayesian_optimal_mechanism",
]


@dataclass(frozen=True)
class BayesianInteraction:
    """A Bayesian agent's optimal deterministic interaction.

    Attributes
    ----------
    remap:
        ``remap[r]`` is the estimate the agent substitutes for observed
        output ``r``.
    kernel:
        The same remap as a 0/1 stochastic matrix (for composing with
        :meth:`Mechanism.post_process`).
    induced:
        The induced mechanism ``y @ kernel``.
    loss:
        Prior-expected loss of the induced mechanism.
    """

    remap: tuple[int, ...]
    kernel: np.ndarray
    induced: Mechanism
    loss: object


class BayesianAgent:
    """A Bayesian rational consumer with prior ``p`` and loss ``l``.

    Parameters
    ----------
    loss:
        Monotone loss function (same class as minimax agents).
    prior:
        Probability vector of length ``n + 1`` (Fractions keep the
        analysis exact).
    n:
        Maximum query result.
    """

    def __init__(
        self,
        loss: LossFunction,
        prior,
        *,
        n: int,
        name: str | None = None,
        validate: bool = True,
    ) -> None:
        if not isinstance(loss, LossFunction):
            raise ValidationError(
                f"loss must be a LossFunction, got {type(loss).__name__}"
            )
        n = check_result_range(n)
        prior = list(prior)
        if len(prior) != n + 1:
            raise ValidationError(
                f"prior must have length {n + 1}, got {len(prior)}"
            )
        if any(entry < 0 for entry in prior):
            raise ValidationError("prior entries must be >= 0")
        total = sum(prior)
        exact = all(
            isinstance(entry, (int, Fraction)) and not isinstance(entry, bool)
            for entry in prior
        )
        if exact:
            if total != 1:
                raise ValidationError(f"prior sums to {total}, expected 1")
            prior = [as_fraction(entry) for entry in prior]
        else:
            if abs(float(total) - 1.0) > 1e-9:
                raise ValidationError(f"prior sums to {total}, expected 1")
            prior = [float(entry) for entry in prior]
        if validate:
            check_monotone(loss, n)
        self.loss = loss
        self.prior = tuple(prior)
        self.n = n
        self.name = name
        self._exact_prior = exact

    # ------------------------------------------------------------------
    def expected_loss(self, mechanism: Mechanism):
        """Prior-expected loss ``sum_i p_i sum_r x[i,r] l(i,r)``."""
        table = loss_matrix(self.loss, self.n)
        matrix = mechanism.matrix
        return sum(
            self.prior[i] * sum(
                table[i, r] * matrix[i, r] for r in range(self.n + 1)
            )
            for i in range(self.n + 1)
        )

    def best_interaction(self, deployed: Mechanism) -> BayesianInteraction:
        """Optimal deterministic remap: posterior-loss minimization.

        For each observed output ``r`` the agent substitutes
        ``argmin_{r'} sum_i p_i y[i, r] l(i, r')`` (ties break to the
        smallest estimate). No LP is needed — this is the closed-form
        Bayesian decision rule.
        """
        matrix = deployed.matrix
        table = loss_matrix(self.loss, self.n)
        size = self.n + 1
        remap = []
        for r in range(size):
            scores = [
                sum(
                    self.prior[i] * matrix[i, r] * table[i, r_prime]
                    for i in range(size)
                )
                for r_prime in range(size)
            ]
            best = min(range(size), key=lambda j: (scores[j], j))
            remap.append(best)
        exact = deployed.is_exact and self._exact_prior
        kernel = np.zeros((size, size), dtype=object if exact else float)
        if exact:
            kernel[...] = Fraction(0)
        for r, target in enumerate(remap):
            kernel[r, target] = Fraction(1) if exact else 1.0
        induced = deployed.post_process(kernel, name="bayesian-induced")
        return BayesianInteraction(
            remap=tuple(remap),
            kernel=kernel,
            induced=induced,
            loss=self.expected_loss(induced),
        )

    def bespoke_mechanism(
        self, alpha, *, backend=None, exact=None, solve_cache=None
    ):
        """The agent's optimal alpha-DP mechanism (GRS09's LP)."""
        return bayesian_optimal_mechanism(
            self.n,
            alpha,
            self.loss,
            self.prior,
            backend=backend,
            exact=exact,
            solve_cache=solve_cache,
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<BayesianAgent{label} n={self.n} loss={self.loss.describe()}>"


def bayesian_optimal_mechanism(
    n: int,
    alpha,
    loss,
    prior,
    *,
    backend=None,
    exact: bool | None = None,
    solve_cache=None,
) -> tuple[Mechanism, object]:
    """Solve GRS09's LP: minimize prior-expected loss under alpha-DP.

    Returns ``(mechanism, optimal_loss)``. The objective is linear in the
    mechanism entries — ``sum_{i,r} p_i l(i,r) x[i,r]`` — subject to the
    same privacy and stochasticity constraints as the minimax LP.
    ``solve_cache`` consults/fills a persistent content-addressed solve
    cache (see :mod:`repro.solvers.cache`) before/after solving.
    """
    n = check_result_range(n)
    check_alpha(alpha)
    table = loss_matrix(loss, n)
    prior = list(prior)
    if len(prior) != n + 1:
        raise ValidationError(
            f"prior must have length {n + 1}, got {len(prior)}"
        )
    if exact is None:
        exact = (
            isinstance(alpha, (Fraction, int))
            and not isinstance(alpha, bool)
            and is_exact_array(table)
            and all(
                isinstance(entry, (int, Fraction))
                and not isinstance(entry, bool)
                for entry in prior
            )
        )
    if exact:
        alpha = as_fraction(alpha, name="alpha")
        prior = [as_fraction(entry) for entry in prior]
    else:
        alpha = float(alpha)
        table = np.vectorize(float)(table)
        prior = [float(entry) for entry in prior]
    size = n + 1
    program = LinearProgram(size * size)
    objective = []
    for i in range(size):
        for r in range(size):
            coeff = prior[i] * table[i, r]
            if coeff != 0:
                objective.append((i * size + r, coeff))
    program.set_objective(objective)
    for i in range(n):
        for r in range(size):
            upper = i * size + r
            lower = (i + 1) * size + r
            program.add_le([(upper, -1), (lower, alpha)], 0)
            program.add_le([(lower, -1), (upper, alpha)], 0)
    for i in range(size):
        program.add_eq([(i * size + r, 1) for r in range(size)], 1)
    cache = resolve_cache(solve_cache)
    key = cache.key(program) if cache is not None else None
    solution = cache.get_key(key) if cache is not None else None
    if solution is None:
        if backend is None:
            backend = choose_backend(exact=exact, size_hint=program.num_vars)
        solution = backend.solve(program)
        if cache is not None:
            cache.put_key(key, solution)
    matrix = np.empty((size, size), dtype=object if exact else float)
    for i in range(size):
        for r in range(size):
            matrix[i, r] = solution.values[i * size + r]
    if not exact:
        matrix = np.clip(matrix.astype(float), 0.0, None)
        matrix = matrix / matrix.sum(axis=1, keepdims=True)
    mechanism = Mechanism(matrix, name=f"bayes-optimal(alpha={alpha})")
    achieved = sum(
        prior[i] * sum(table[i, r] * matrix[i, r] for r in range(size))
        for i in range(size)
    )
    return mechanism, achieved
