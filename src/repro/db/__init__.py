"""Database substrate: rows, schemas, predicates, count queries.

The paper's setting (Section 2.1): a database is a collection of rows,
one per individual, drawn from an arbitrary domain; a *count query* is
defined by a predicate and returns how many rows satisfy it — a number
in ``{0..n}`` with sensitivity 1. This subpackage provides that
substrate end-to-end: typed schemas, a predicate DSL, databases with
neighbor enumeration, count queries, a query engine that attaches
privacy mechanisms, and synthetic-population generators reproducing the
paper's running flu-survey example.
"""

from .database import Database, Row
from .engine import PrivateQueryResult, QueryEngine
from .generators import flu_population, random_population
from .io import database_from_csv, database_to_csv, load_csv, save_csv
from .neighbors import enumerate_neighbors, verify_unit_sensitivity
from .predicates import (
    And,
    Between,
    Eq,
    Ge,
    In,
    Le,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from .queries import CountQuery
from .schema import Attribute, Schema

__all__ = [
    "Attribute",
    "Schema",
    "Row",
    "Database",
    "Predicate",
    "TruePredicate",
    "Eq",
    "Ge",
    "Le",
    "Between",
    "In",
    "And",
    "Or",
    "Not",
    "CountQuery",
    "QueryEngine",
    "PrivateQueryResult",
    "flu_population",
    "random_population",
    "enumerate_neighbors",
    "verify_unit_sensitivity",
    "database_to_csv",
    "database_from_csv",
    "load_csv",
    "save_csv",
]
