"""Predicate DSL for count queries.

Section 2.1: "Given a predicate p : D -> {True, False}, the result of a
count query is the number of rows that satisfy this predicate. [...]
Though simple in form, count queries are expressive because varying the
predicate naturally yields a rich space of queries."

Predicates here are small composable objects evaluated against row
mappings; combinators (:class:`And`, :class:`Or`, :class:`Not`) build
the paper's example — *adult, resides in San Diego, contracted flu in
October* — from atomic comparisons.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence

from ..exceptions import QueryError

__all__ = [
    "Predicate",
    "TruePredicate",
    "Eq",
    "Ge",
    "Le",
    "Between",
    "In",
    "And",
    "Or",
    "Not",
]


class Predicate(abc.ABC):
    """A boolean condition on a single row."""

    @abc.abstractmethod
    def evaluate(self, row: Mapping[str, object]) -> bool:
        """Return whether ``row`` satisfies the predicate."""

    def __call__(self, row: Mapping[str, object]) -> bool:
        return self.evaluate(row)

    def __and__(self, other: "Predicate") -> "And":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable rendering of the condition."""

    def __repr__(self) -> str:
        return f"<Predicate {self.describe()}>"


def _fetch(row: Mapping[str, object], attribute: str):
    try:
        return row[attribute]
    except KeyError:
        raise QueryError(
            f"row has no attribute {attribute!r}"
        ) from None


class TruePredicate(Predicate):
    """Satisfied by every row — counts the database size."""

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return True

    def describe(self) -> str:
        return "TRUE"


class Eq(Predicate):
    """``row[attribute] == value``."""

    def __init__(self, attribute: str, value: object) -> None:
        self.attribute = attribute
        self.value = value

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return _fetch(row, self.attribute) == self.value

    def describe(self) -> str:
        return f"{self.attribute} == {self.value!r}"


class Ge(Predicate):
    """``row[attribute] >= bound``."""

    def __init__(self, attribute: str, bound) -> None:
        self.attribute = attribute
        self.bound = bound

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return _fetch(row, self.attribute) >= self.bound

    def describe(self) -> str:
        return f"{self.attribute} >= {self.bound!r}"


class Le(Predicate):
    """``row[attribute] <= bound``."""

    def __init__(self, attribute: str, bound) -> None:
        self.attribute = attribute
        self.bound = bound

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return _fetch(row, self.attribute) <= self.bound

    def describe(self) -> str:
        return f"{self.attribute} <= {self.bound!r}"


class Between(Predicate):
    """``low <= row[attribute] <= high``."""

    def __init__(self, attribute: str, low, high) -> None:
        if low > high:
            raise QueryError(f"Between bounds reversed: {low} > {high}")
        self.attribute = attribute
        self.low = low
        self.high = high

    def evaluate(self, row: Mapping[str, object]) -> bool:
        value = _fetch(row, self.attribute)
        return self.low <= value <= self.high

    def describe(self) -> str:
        return f"{self.low!r} <= {self.attribute} <= {self.high!r}"


class In(Predicate):
    """``row[attribute] in values``."""

    def __init__(self, attribute: str, values: Sequence) -> None:
        values = tuple(values)
        if not values:
            raise QueryError("In predicate needs at least one value")
        self.attribute = attribute
        self.values = values

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return _fetch(row, self.attribute) in self.values

    def describe(self) -> str:
        return f"{self.attribute} in {list(self.values)!r}"


class And(Predicate):
    """Conjunction of sub-predicates."""

    def __init__(self, parts: Sequence[Predicate]) -> None:
        parts = tuple(parts)
        if not parts:
            raise QueryError("And needs at least one part")
        self.parts = parts

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return all(part.evaluate(row) for part in self.parts)

    def describe(self) -> str:
        return "(" + " AND ".join(p.describe() for p in self.parts) + ")"


class Or(Predicate):
    """Disjunction of sub-predicates."""

    def __init__(self, parts: Sequence[Predicate]) -> None:
        parts = tuple(parts)
        if not parts:
            raise QueryError("Or needs at least one part")
        self.parts = parts

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return any(part.evaluate(row) for part in self.parts)

    def describe(self) -> str:
        return "(" + " OR ".join(p.describe() for p in self.parts) + ")"


class Not(Predicate):
    """Negation of a sub-predicate."""

    def __init__(self, part: Predicate) -> None:
        self.part = part

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return not self.part.evaluate(row)

    def describe(self) -> str:
        return f"NOT {self.part.describe()}"
