"""Synthetic population generators.

The paper's running example — "How many adults from San Diego contracted
the flu this October?" — needs a population with cities, ages, flu
status, and drug purchases. No real survey data ships with the paper (or
is needed: only the count matters), so these generators synthesize
populations with controlled statistics, preserving the relevant
behaviour: sensitivity-1 counts over a realistic schema.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..sampling.rng import ensure_generator
from .database import Database
from .predicates import And, Eq, Ge
from .queries import CountQuery
from .schema import Attribute, Schema

__all__ = [
    "FLU_SCHEMA",
    "flu_population",
    "flu_query",
    "drug_purchases_lower_bound",
    "random_population",
]

#: Schema of the paper's flu-survey example.
FLU_SCHEMA = Schema(
    [
        Attribute("city", "categorical", ("san_diego", "los_angeles", "sacramento")),
        Attribute("age", "int", (0, 100)),
        Attribute("has_flu", "bool"),
        Attribute("bought_flu_drug", "bool"),
    ]
)


def flu_population(
    size: int,
    rng=None,
    *,
    flu_rate: float = 0.2,
    san_diego_share: float = 0.5,
    drug_uptake: float = 0.6,
) -> Database:
    """Generate a synthetic flu-survey population.

    Parameters
    ----------
    size:
        Number of individuals (database rows).
    rng:
        Seed or generator for reproducibility.
    flu_rate:
        Probability an individual has the flu.
    san_diego_share:
        Probability an individual lives in San Diego.
    drug_uptake:
        Probability a flu sufferer bought the drug (non-sufferers may
        buy it too, at a fifth of this rate) — this is what makes drug
        sales a *lower bound*, not the exact count, matching Example 1.
    """
    if size < 1:
        raise ValidationError(f"size must be >= 1, got {size}")
    for label, value in (
        ("flu_rate", flu_rate),
        ("san_diego_share", san_diego_share),
        ("drug_uptake", drug_uptake),
    ):
        if not 0 <= value <= 1:
            raise ValidationError(f"{label} must be in [0, 1], got {value}")
    rng = ensure_generator(rng)
    database = Database(FLU_SCHEMA)
    other_cities = ("los_angeles", "sacramento")
    for _ in range(size):
        in_san_diego = rng.random() < san_diego_share
        city = (
            "san_diego"
            if in_san_diego
            else other_cities[int(rng.integers(0, len(other_cities)))]
        )
        has_flu = bool(rng.random() < flu_rate)
        if has_flu:
            bought = bool(rng.random() < drug_uptake)
        else:
            bought = bool(rng.random() < drug_uptake / 5.0)
        database.add_row(
            {
                "city": city,
                "age": int(rng.integers(0, 101)),
                "has_flu": has_flu,
                "bought_flu_drug": bought,
            }
        )
    return database


def flu_query(*, adults_only: bool = True) -> CountQuery:
    """The paper's query Q: adults from San Diego who contracted flu."""
    parts = [Eq("city", "san_diego"), Eq("has_flu", True)]
    if adults_only:
        parts.append(Ge("age", 18))
    return CountQuery(
        And(tuple(parts)),
        name="Q: adults from San Diego who contracted the flu",
    )


def drug_purchases_lower_bound(database: Database) -> int:
    """The drug company's side information from Example 1.

    Counts San Diego drug purchases by individuals *with* flu — the
    company knows at least this many San Diegans are infected. (Its
    actual knowledge is total sales; purchases by healthy individuals
    are why the bound is conservative.)
    """
    return database.count(
        And(
            (
                Eq("city", "san_diego"),
                Eq("has_flu", True),
                Eq("bought_flu_drug", True),
                Ge("age", 18),
            )
        )
    )


def random_population(
    schema: Schema, size: int, rng=None
) -> Database:
    """Generate a uniform random population for an arbitrary schema."""
    if size < 1:
        raise ValidationError(f"size must be >= 1, got {size}")
    rng = ensure_generator(rng)
    database = Database(schema)
    for _ in range(size):
        row: dict[str, object] = {}
        for attribute in schema.attributes:
            if attribute.kind == "bool":
                row[attribute.name] = bool(rng.integers(0, 2))
            elif attribute.kind == "int":
                low, high = attribute.domain or (0, 100)
                row[attribute.name] = int(rng.integers(low, high + 1))
            else:
                row[attribute.name] = attribute.domain[
                    int(rng.integers(0, len(attribute.domain)))
                ]
        database.add_row(row)
    return database
