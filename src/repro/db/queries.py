"""Count queries.

A count query is fully determined by its predicate; its result on a
database of ``n`` rows lies in ``{0..n}`` and replacing any single row
changes the result by at most one (unit sensitivity) — the property that
makes the paper's Definition 2 the right privacy condition.
"""

from __future__ import annotations

from ..exceptions import QueryError
from .database import Database
from .predicates import Predicate

__all__ = ["CountQuery"]


class CountQuery:
    """A count query ``q(d) = #{rows of d satisfying predicate}``.

    Parameters
    ----------
    predicate:
        A :class:`~repro.db.predicates.Predicate`.
    name:
        Optional label for reports — e.g. the paper's
        "adults in San Diego with flu this October".
    """

    def __init__(self, predicate: Predicate, *, name: str | None = None) -> None:
        if not isinstance(predicate, Predicate):
            raise QueryError(
                f"predicate must be a Predicate, got {type(predicate).__name__}"
            )
        self.predicate = predicate
        self.name = name

    def evaluate(self, database: Database) -> int:
        """The exact (unperturbed) query result."""
        if not isinstance(database, Database):
            raise QueryError(
                f"expected a Database, got {type(database).__name__}"
            )
        return database.count(self.predicate)

    def __call__(self, database: Database) -> int:
        return self.evaluate(database)

    @staticmethod
    def sensitivity() -> int:
        """Global sensitivity of any count query: 1.

        Replacing one row flips at most one unit of the count; verified
        exhaustively for concrete databases by
        :func:`repro.db.neighbors.verify_unit_sensitivity`.
        """
        return 1

    def result_range(self, database: Database) -> range:
        """The result set ``{0..n}`` for this database's size."""
        return range(database.size + 1)

    def describe(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"{label}COUNT WHERE {self.predicate.describe()}"

    def __repr__(self) -> str:
        return f"<CountQuery {self.describe()}>"
