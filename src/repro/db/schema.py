"""Typed schemas for database rows.

A :class:`Schema` is an ordered collection of :class:`Attribute`
definitions; each attribute is boolean, integer-ranged, or categorical
over an explicit domain. Schemas validate rows at insertion time so
that predicate evaluation never encounters malformed data.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from ..exceptions import SchemaError

__all__ = ["Attribute", "Schema"]


@dataclass(frozen=True)
class Attribute:
    """One column of a row domain.

    Parameters
    ----------
    name:
        Attribute name (non-empty, unique within a schema).
    kind:
        One of ``"bool"``, ``"int"``, ``"categorical"``.
    domain:
        For categorical attributes, the tuple of admissible values;
        for int attributes an optional ``(low, high)`` inclusive range.
    """

    name: str
    kind: str
    domain: tuple | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be non-empty, got {self.name!r}")
        if self.kind not in ("bool", "int", "categorical"):
            raise SchemaError(
                f"attribute kind must be bool/int/categorical, "
                f"got {self.kind!r}"
            )
        if self.kind == "categorical":
            if not self.domain:
                raise SchemaError(
                    f"categorical attribute {self.name!r} needs a domain"
                )
            object.__setattr__(self, "domain", tuple(self.domain))
        elif self.kind == "int" and self.domain is not None:
            domain = tuple(self.domain)
            if (
                len(domain) != 2
                or not all(isinstance(v, int) for v in domain)
                or domain[0] > domain[1]
            ):
                raise SchemaError(
                    f"int attribute {self.name!r} domain must be "
                    f"(low, high) with low <= high, got {self.domain!r}"
                )
            object.__setattr__(self, "domain", domain)
        elif self.kind == "bool" and self.domain is not None:
            raise SchemaError(
                f"bool attribute {self.name!r} must not declare a domain"
            )

    def validate(self, value: object) -> None:
        """Raise :class:`SchemaError` unless ``value`` fits this attribute."""
        if self.kind == "bool":
            if not isinstance(value, bool):
                raise SchemaError(
                    f"{self.name!r} expects a bool, got {value!r}"
                )
        elif self.kind == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(
                    f"{self.name!r} expects an int, got {value!r}"
                )
            if self.domain is not None and not (
                self.domain[0] <= value <= self.domain[1]
            ):
                raise SchemaError(
                    f"{self.name!r}={value} outside range {self.domain}"
                )
        else:
            if value not in self.domain:
                raise SchemaError(
                    f"{self.name!r}={value!r} not in domain {self.domain}"
                )


class Schema:
    """An ordered, named collection of attributes.

    Examples
    --------
    >>> schema = Schema([
    ...     Attribute("city", "categorical", ("san_diego", "la")),
    ...     Attribute("age", "int", (0, 120)),
    ...     Attribute("has_flu", "bool"),
    ... ])
    >>> schema.validate_row({"city": "la", "age": 30, "has_flu": False})
    """

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        attributes = tuple(attributes)
        if not attributes:
            raise SchemaError("schema must have at least one attribute")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {names}")
        if not all(isinstance(a, Attribute) for a in attributes):
            raise SchemaError("schema entries must be Attribute instances")
        self._attributes = attributes
        self._by_name = {a.name: a for a in attributes}

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {list(self.names)}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def validate_row(self, row: Mapping[str, object]) -> None:
        """Raise :class:`SchemaError` unless ``row`` matches exactly."""
        if not isinstance(row, Mapping):
            raise SchemaError(f"row must be a mapping, got {type(row).__name__}")
        missing = [n for n in self.names if n not in row]
        if missing:
            raise SchemaError(f"row missing attributes: {missing}")
        extra = [k for k in row if k not in self._by_name]
        if extra:
            raise SchemaError(f"row has unknown attributes: {extra}")
        for attribute in self._attributes:
            attribute.validate(row[attribute.name])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{a.name}:{a.kind}" for a in self._attributes
        )
        return f"<Schema {parts}>"
