"""Neighbor enumeration and sensitivity verification.

The paper's privacy definition quantifies over *neighboring* databases —
those differing in a single individual's data. For concrete (small)
databases these helpers enumerate neighbors over a finite row universe
and verify that count queries really have unit sensitivity, turning the
paper's modeling assumption into an executable check.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from ..exceptions import ValidationError
from .database import Database
from .queries import CountQuery

__all__ = ["enumerate_neighbors", "verify_unit_sensitivity"]


def enumerate_neighbors(
    database: Database, row_universe: Iterable[Mapping[str, object]]
) -> Iterator[Database]:
    """Yield every neighbor obtained by swapping one row.

    ``row_universe`` is the set of candidate replacement rows (the finite
    row domain ``D``). Unchanged replacements are skipped.
    """
    universe = list(row_universe)
    if not universe:
        raise ValidationError("row universe must be non-empty")
    for index in range(database.size):
        current = database[index]
        for candidate in universe:
            if dict(candidate) == dict(current):
                continue
            yield database.replace_row(index, candidate)


def verify_unit_sensitivity(
    query: CountQuery,
    database: Database,
    row_universe: Iterable[Mapping[str, object]],
) -> bool:
    """Exhaustively check ``|q(d) - q(d')| <= 1`` over all neighbors.

    Returns True when the bound holds for every neighbor (it always does
    for count queries; the check exists so the substrate's core privacy
    assumption is tested rather than assumed).
    """
    baseline = query.evaluate(database)
    for neighbor in enumerate_neighbors(database, row_universe):
        if abs(query.evaluate(neighbor) - baseline) > 1:
            return False
    return True
