"""Databases: ordered collections of schema-validated rows.

A database of ``n`` rows is a point in ``D^n`` (Section 2.1). Neighbor
semantics follow the paper: two databases are adjacent when they differ
in *one individual's data* — i.e. one row is replaced, keeping the
database size fixed.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from types import MappingProxyType

from ..exceptions import QueryError, ValidationError
from .schema import Schema

__all__ = ["Row", "Database"]


class Row(Mapping):
    """An immutable, schema-validated row.

    Behaves as a read-only mapping from attribute name to value.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[str, object], schema: Schema) -> None:
        schema.validate_row(data)
        self._data = MappingProxyType(dict(data))

    def __getitem__(self, key: str):
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def replace(self, schema: Schema, **changes) -> "Row":
        """Return a copy with some attributes changed (re-validated)."""
        merged = dict(self._data)
        merged.update(changes)
        return Row(merged, schema)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return dict(self._data) == dict(other._data)
        if isinstance(other, Mapping):
            return dict(self._data) == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._data.items())))

    def __repr__(self) -> str:
        return f"Row({dict(self._data)!r})"


class Database:
    """An ordered collection of rows over a fixed schema.

    Parameters
    ----------
    schema:
        The row schema.
    rows:
        Initial rows (mappings; validated on insert).

    Examples
    --------
    >>> from repro.db.schema import Attribute, Schema
    >>> schema = Schema([Attribute("has_flu", "bool")])
    >>> db = Database(schema, [{"has_flu": True}, {"has_flu": False}])
    >>> db.size
    2
    """

    def __init__(
        self, schema: Schema, rows: Iterable[Mapping[str, object]] = ()
    ) -> None:
        if not isinstance(schema, Schema):
            raise ValidationError("schema must be a Schema instance")
        self.schema = schema
        self._rows: list[Row] = []
        for row in rows:
            self.add_row(row)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of rows ``n`` (the count-query range is ``{0..n}``)."""
        return len(self._rows)

    @property
    def rows(self) -> tuple[Row, ...]:
        return tuple(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    # ------------------------------------------------------------------
    def add_row(self, row: Mapping[str, object]) -> None:
        """Validate and append one row."""
        self._rows.append(
            row if isinstance(row, Row) else Row(row, self.schema)
        )

    def replace_row(self, index: int, row: Mapping[str, object]) -> "Database":
        """Return a *neighboring* database with row ``index`` replaced.

        This is the paper's adjacency relation: same size, one
        individual's data changed. The original is not modified.
        """
        if not 0 <= index < len(self._rows):
            raise ValidationError(
                f"row index {index} outside [0, {len(self._rows) - 1}]"
            )
        neighbor = Database(self.schema)
        for position, existing in enumerate(self._rows):
            neighbor.add_row(row if position == index else existing)
        return neighbor

    def count(self, predicate) -> int:
        """Evaluate a predicate count over all rows."""
        if not callable(predicate):
            raise QueryError("predicate must be callable on rows")
        return sum(1 for row in self._rows if predicate(row))

    def project(self, attribute: str) -> list:
        """Column projection (for inspection and generators)."""
        self.schema.attribute(attribute)
        return [row[attribute] for row in self._rows]

    def __repr__(self) -> str:
        return f"<Database n={self.size} schema={self.schema!r}>"
