"""CSV import/export for databases.

Survey data usually arrives as CSV; these helpers round-trip a
:class:`~repro.db.database.Database` through the format with full schema
validation on load — bools are serialized as ``true``/``false``, ints as
decimal text, categorical values verbatim.
"""

from __future__ import annotations

import csv
import io
import pathlib

from ..exceptions import SchemaError, ValidationError
from .database import Database
from .schema import Schema

__all__ = ["database_to_csv", "database_from_csv", "load_csv", "save_csv"]


def _encode(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _decode(text: str, kind: str) -> object:
    if kind == "bool":
        lowered = text.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise SchemaError(f"cannot parse bool from {text!r}")
    if kind == "int":
        try:
            return int(text.strip())
        except ValueError:
            raise SchemaError(f"cannot parse int from {text!r}") from None
    return text


def database_to_csv(database: Database) -> str:
    """Serialize a database to CSV text (header = attribute names)."""
    if not isinstance(database, Database):
        raise ValidationError(
            f"expected a Database, got {type(database).__name__}"
        )
    buffer = io.StringIO()
    names = database.schema.names
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(names)
    for row in database:
        writer.writerow([_encode(row[name]) for name in names])
    return buffer.getvalue()


def database_from_csv(text: str, schema: Schema) -> Database:
    """Parse CSV text into a schema-validated database.

    The header must list exactly the schema's attributes (any order);
    every row is validated on insert.
    """
    if not isinstance(schema, Schema):
        raise ValidationError("schema must be a Schema instance")
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise SchemaError("CSV input is empty (no header)") from None
    header = [column.strip() for column in header]
    if sorted(header) != sorted(schema.names):
        raise SchemaError(
            f"CSV header {header} does not match schema attributes "
            f"{list(schema.names)}"
        )
    kinds = {name: schema.attribute(name).kind for name in header}
    database = Database(schema)
    for line_number, cells in enumerate(reader, start=2):
        if not cells:
            continue  # tolerate trailing blank lines
        if len(cells) != len(header):
            raise SchemaError(
                f"CSV line {line_number}: expected {len(header)} cells, "
                f"got {len(cells)}"
            )
        row = {
            name: _decode(cell, kinds[name])
            for name, cell in zip(header, cells)
        }
        database.add_row(row)
    return database


def save_csv(database: Database, path) -> None:
    """Write a database to a CSV file."""
    pathlib.Path(path).write_text(database_to_csv(database))


def load_csv(path, schema: Schema) -> Database:
    """Read a CSV file into a schema-validated database."""
    return database_from_csv(pathlib.Path(path).read_text(), schema)
