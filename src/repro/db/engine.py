"""Query engine: evaluate count queries and release them privately.

Ties the database substrate to the mechanism core: the engine evaluates
a count query exactly, then samples a differentially-private release
through a mechanism — by default the geometric mechanism the paper
proves universally optimal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.geometric import GeometricMechanism
from ..core.mechanism import Mechanism
from ..exceptions import QueryError, ValidationError
from ..sampling.rng import ensure_generator
from .database import Database
from .queries import CountQuery

__all__ = ["PrivateQueryResult", "QueryEngine"]


@dataclass(frozen=True)
class PrivateQueryResult:
    """A privately-released query answer.

    Attributes
    ----------
    query:
        The count query that was answered.
    value:
        The *published* (perturbed) result.
    true_value:
        The exact result (kept for experiment bookkeeping; a production
        deployment would not expose it).
    alpha:
        Privacy level of the release.
    mechanism:
        The mechanism that produced the release.
    """

    query: CountQuery
    value: int
    true_value: int
    alpha: object
    mechanism: Mechanism

    def error(self) -> int:
        """Absolute error of this release."""
        return abs(self.value - self.true_value)


class QueryEngine:
    """Evaluates count queries over one database and releases them.

    Parameters
    ----------
    database:
        The underlying database.

    Examples
    --------
    >>> from repro.db import Attribute, Schema, Database, Eq, CountQuery
    >>> schema = Schema([Attribute("has_flu", "bool")])
    >>> db = Database(schema, [{"has_flu": True}, {"has_flu": False}])
    >>> engine = QueryEngine(db)
    >>> engine.answer_exact(CountQuery(Eq("has_flu", True)))
    1
    """

    def __init__(self, database: Database) -> None:
        if not isinstance(database, Database):
            raise ValidationError(
                f"expected a Database, got {type(database).__name__}"
            )
        self.database = database

    def answer_exact(self, query: CountQuery) -> int:
        """The unperturbed query result."""
        return query.evaluate(self.database)

    def answer_private(
        self,
        query: CountQuery,
        alpha=None,
        *,
        mechanism: Mechanism | None = None,
        rng=None,
    ) -> PrivateQueryResult:
        """Release a differentially private answer.

        Exactly one of ``alpha`` (deploy the geometric mechanism at that
        level — the paper's universally optimal choice) or ``mechanism``
        (deploy a custom one) must be provided.
        """
        if (alpha is None) == (mechanism is None):
            raise QueryError(
                "provide exactly one of alpha or mechanism"
            )
        true_value = self.answer_exact(query)
        n = self.database.size
        if mechanism is None:
            mechanism = GeometricMechanism(n, alpha)
        else:
            if mechanism.n != n:
                raise QueryError(
                    f"mechanism covers n={mechanism.n}, database has "
                    f"n={n} rows"
                )
            alpha = getattr(mechanism, "alpha", None)
        rng = ensure_generator(rng)
        published = mechanism.sample(true_value, rng)
        return PrivateQueryResult(
            query=query,
            value=published,
            true_value=true_value,
            alpha=alpha,
            mechanism=mechanism,
        )
