"""repro — Universally Optimal Privacy Mechanisms for Minimax Agents.

A full reproduction of Gupte & Sundararajan, PODS 2010 (arXiv:1001.2767):
the geometric mechanism, minimax information consumers, optimal-mechanism
and optimal-interaction linear programs, the derivability
characterization (Theorem 2), universal optimality (Theorem 1), and
collusion-resistant multi-level release (Algorithm 1) — plus the
database, agent, solver and analysis substrates they stand on.

Quickstart
----------
>>> from fractions import Fraction
>>> import repro
>>> g = repro.GeometricMechanism(3, Fraction(1, 4))
>>> agent = repro.MinimaxAgent(repro.AbsoluteLoss(), None, n=3)
>>> interaction = agent.best_interaction(g)           # Section 2.4.3 LP
>>> bespoke = agent.bespoke_mechanism(Fraction(1, 4)) # Section 2.5 LP
>>> interaction.loss == bespoke.loss                  # Theorem 1
True
"""

from .agents import (
    BayesianAgent,
    MinimaxAgent,
    SideInformation,
    bayesian_optimal_mechanism,
)
from .core import (
    APPENDIX_B_ALPHA,
    GeometricMechanism,
    Mechanism,
    MultiLevelRelease,
    UnboundedGeometricMechanism,
    alpha_to_epsilon,
    appendix_b_mechanism,
    analyze_structure,
    assert_differentially_private,
    check_derivability,
    compose_with_geometric,
    derivation_factor,
    derive_mechanism,
    cached_geometric_mechanism,
    epsilon_to_alpha,
    geometric_matrix,
    gprime_inverse,
    gprime_matrix,
    is_derivable_from_geometric,
    is_differentially_private,
    optimal_interaction,
    optimal_mechanism,
    privacy_chain_kernel,
    randomized_response_mechanism,
    tightest_alpha,
    truncated_laplace_mechanism,
    verify_appendix_b,
)
from .db import (
    CountQuery,
    Database,
    QueryEngine,
    Schema,
)
from .exceptions import (
    InfeasibleProgramError,
    LossFunctionError,
    NotDerivableError,
    NotPrivateError,
    NotStochasticError,
    QueryError,
    ReproError,
    SchemaError,
    SideInformationError,
    SolverError,
    UnboundedProgramError,
    ValidationError,
)
from .losses import (
    AbsoluteLoss,
    CappedLoss,
    LossFunction,
    cached_loss_matrix,
    PowerLoss,
    SquaredLoss,
    TabularLoss,
    ThresholdLoss,
    ZeroOneLoss,
)
from .release import (
    ArtifactSpec,
    ArtifactStore,
    MechanismArtifact,
    MultiLevelPublisher,
    Publisher,
    compile_artifact,
    empirical_alpha,
    set_default_artifact_store,
    verify_artifact,
)
from .obs import (
    MetricsRegistry,
    Telemetry,
    Tracer,
    burn_rows_from_book,
    burn_rows_from_dir,
    default_registry,
)
from .serving import InProcessClient, MechanismServer, MicroBatcher, OnlineAuditor
from .solvers import SolveCache, set_default_cache

__version__ = "1.0.0"


def clear_caches() -> None:
    """Reset every in-memory memoization layer the library maintains.

    Long-lived serving processes call this for memory hygiene: it clears
    the memoized loss tables, the shared LP constraint blocks, the
    geometric-mechanism and ``G'``-inverse caches, the memoized alias
    sampling tables, the in-memory tier of every live artifact store,
    and the in-memory tier of the default persistent solve cache.
    On-disk solve-cache and artifact entries are untouched (they are
    content-addressed and never stale).
    """
    from .core.geometric import (
        _cached_geometric_mechanism,
        _gprime_inverse_cached,
    )
    from .core.optimal import _shared_constraint_blocks
    from .losses import clear_loss_table_cache
    from .release.artifacts import clear_artifact_memory
    from .sampling.alias import clear_alias_cache
    from .solvers.cache import default_cache

    _cached_geometric_mechanism.cache_clear()
    _gprime_inverse_cached.cache_clear()
    _shared_constraint_blocks.cache_clear()
    clear_loss_table_cache()
    clear_alias_cache()
    clear_artifact_memory()
    default = default_cache()
    if default is not None:
        default.clear_memory()

__all__ = [
    "__version__",
    # mechanisms
    "Mechanism",
    "GeometricMechanism",
    "UnboundedGeometricMechanism",
    "geometric_matrix",
    "cached_geometric_mechanism",
    "gprime_inverse",
    "gprime_matrix",
    "truncated_laplace_mechanism",
    "randomized_response_mechanism",
    # privacy
    "alpha_to_epsilon",
    "epsilon_to_alpha",
    "is_differentially_private",
    "assert_differentially_private",
    "tightest_alpha",
    # derivability / characterization
    "is_derivable_from_geometric",
    "check_derivability",
    "derivation_factor",
    "derive_mechanism",
    "compose_with_geometric",
    "privacy_chain_kernel",
    "analyze_structure",
    # LPs
    "optimal_interaction",
    "optimal_mechanism",
    "bayesian_optimal_mechanism",
    # multi-level release
    "MultiLevelRelease",
    "MultiLevelPublisher",
    "Publisher",
    "empirical_alpha",
    # appendix artifacts
    "APPENDIX_B_ALPHA",
    "appendix_b_mechanism",
    "verify_appendix_b",
    # agents
    "MinimaxAgent",
    "BayesianAgent",
    "SideInformation",
    # caching / compiled artifacts
    "SolveCache",
    "set_default_cache",
    "clear_caches",
    "ArtifactSpec",
    "ArtifactStore",
    "MechanismArtifact",
    "compile_artifact",
    "verify_artifact",
    "set_default_artifact_store",
    # serving
    "MechanismServer",
    "InProcessClient",
    "MicroBatcher",
    "OnlineAuditor",
    # observability
    "MetricsRegistry",
    "Telemetry",
    "Tracer",
    "default_registry",
    "burn_rows_from_book",
    "burn_rows_from_dir",
    # losses
    "LossFunction",
    "cached_loss_matrix",
    "AbsoluteLoss",
    "SquaredLoss",
    "ZeroOneLoss",
    "PowerLoss",
    "ThresholdLoss",
    "CappedLoss",
    "TabularLoss",
    # database substrate
    "Schema",
    "Database",
    "CountQuery",
    "QueryEngine",
    # exceptions
    "ReproError",
    "ValidationError",
    "NotStochasticError",
    "NotPrivateError",
    "NotDerivableError",
    "SolverError",
    "InfeasibleProgramError",
    "UnboundedProgramError",
    "SchemaError",
    "QueryError",
    "SideInformationError",
    "LossFunctionError",
]
