"""Empirical privacy auditing from samples.

A deployed mechanism's matrix may not be available to an auditor; what is
available is the ability to run it. These tools estimate the mechanism
matrix from repeated sampling and measure the *empirical* privacy level —
the tightest alpha consistent with the estimated row ratios. Estimates
converge to the exact :func:`repro.core.privacy.tightest_alpha` as the
sample count grows (tested); additive smoothing keeps finite-sample
zero-cells from collapsing the estimate to zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.mechanism import Mechanism
from ..core.privacy import alpha_to_epsilon, tightest_alpha
from ..exceptions import ValidationError
from ..sampling.rng import ensure_generator

__all__ = ["empirical_mechanism_matrix", "empirical_alpha", "AuditReport"]


def empirical_mechanism_matrix(
    mechanism: Mechanism,
    samples_per_input: int,
    rng=None,
    *,
    smoothing: float = 0.5,
) -> np.ndarray:
    """Estimate the mechanism matrix by sampling each input row.

    Parameters
    ----------
    mechanism:
        The mechanism under audit (treated as a black-box sampler).
    samples_per_input:
        Number of draws per true result.
    smoothing:
        Additive (Laplace/Jeffreys-style) smoothing count per cell;
        0 disables smoothing.
    """
    if samples_per_input < 1:
        raise ValidationError(
            f"samples_per_input must be >= 1, got {samples_per_input}"
        )
    if smoothing < 0:
        raise ValidationError(f"smoothing must be >= 0, got {smoothing}")
    rng = ensure_generator(rng)
    size = mechanism.size
    counts = np.full((size, size), float(smoothing))
    for i in range(size):
        draws = mechanism.sample_many(i, samples_per_input, rng)
        counts[i] += np.bincount(
            np.asarray(draws, dtype=np.int64), minlength=size
        )
    return counts / counts.sum(axis=1, keepdims=True)


@dataclass(frozen=True)
class AuditReport:
    """Outcome of an empirical privacy audit.

    Attributes
    ----------
    claimed_alpha:
        The level the deployer claims (None when unknown).
    exact_alpha:
        Tightest alpha of the true matrix (ground truth, available here
        because we audit our own mechanisms).
    empirical_alpha:
        Tightest alpha of the sampled estimate.
    empirical_epsilon:
        The same in epsilon convention.
    samples_per_input:
        Sampling effort.
    consistent:
        Whether the empirical estimate does not *overstate* privacy
        beyond sampling slack (empirical >= claimed - slack is not
        required; what matters is the estimate staying near truth).
    """

    claimed_alpha: object
    exact_alpha: object
    empirical_alpha: float
    empirical_epsilon: float
    samples_per_input: int
    consistent: bool


def empirical_alpha(
    mechanism: Mechanism,
    samples_per_input: int = 20000,
    rng=None,
    *,
    smoothing: float = 0.5,
    slack: float = 0.1,
) -> AuditReport:
    """Audit a mechanism's privacy level empirically.

    ``consistent`` is true when the empirical estimate lies within
    ``slack`` of the exact tightest alpha computed from the matrix.
    """
    estimated = empirical_mechanism_matrix(
        mechanism, samples_per_input, rng, smoothing=smoothing
    )
    exact = tightest_alpha(mechanism.matrix)
    estimate = float(tightest_alpha(estimated))
    claimed = getattr(mechanism, "alpha", None)
    return AuditReport(
        claimed_alpha=claimed,
        exact_alpha=exact,
        empirical_alpha=estimate,
        empirical_epsilon=alpha_to_epsilon(max(estimate, 1e-12)),
        samples_per_input=samples_per_input,
        consistent=abs(estimate - float(exact)) <= slack,
    )
