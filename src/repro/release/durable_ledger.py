"""Crash-safe, durable privacy-budget accounting.

The serving layer's :class:`~repro.release.ledger.ConcurrentPrivacyLedger`
enforces the paper's composition argument (Section 2.6: independent
releases multiply their alpha guarantees, epsilons add) — but an
in-memory ledger resets when the process dies, silently refilling every
user's budget. That is a *privacy violation*, not an availability bug:
the composition invariant must survive crashes, torn writes, and full
disks. This module is the durability layer:

* :class:`DurableLedger` — a write-ahead-logged ledger book. Every
  charge is appended to ``wal.jsonl`` (one checksummed JSON record per
  line, exact ``Fraction`` serialization) and — in the default
  ``fsync="always"`` mode — fsync'd **before** the charge is
  acknowledged, so a response is only ever released against a durable
  charge. ``fsync="group"`` defers the fsync to an explicit
  :meth:`DurableLedger.sync` so a serving tick can amortize one fsync
  across a whole micro-batch (group commit) while keeping the same
  release-implies-durable invariant.
* **Conservative recovery** — on open, the snapshot is loaded and the
  journal replayed. A torn or corrupt *tail* (a crash mid-append) is
  truncated: an un-fsync'd charge was never acknowledged, so no response
  was released against it and dropping it is floor-legal. A record that
  parses and checksums, however, is **always kept**, even when the crash
  means we cannot know whether the response went out — ambiguity
  over-protects, never over-spends. Corruption *before* valid records
  (a damaged middle) is refused loudly with
  :class:`LedgerCorruptionError`, because skipping it would drop
  admitted charges.
* **Snapshot + compaction** — :meth:`DurableLedger.compact` atomically
  writes ``snapshot.json`` (checksummed; cumulative guarantee and
  release count per user, plus the idempotency replay cache) and then
  truncates the journal. A crash between the two is safe: replay skips
  journal records at or below the snapshot's sequence number.
* **Multi-process sharing** — every mutation holds an advisory
  ``flock`` on ``ledger.lock`` and first catches up on records appended
  by sibling processes (incremental from the last applied byte offset),
  so N serving workers charge one ledger with a single floor.
* **Idempotency** — a charge may carry an idempotency key; the key and
  the eventual response are journaled, so a retried publish is answered
  from the replay cache instead of double-charging the budget
  (:class:`ChargeDecision` outcome ``"replayed"``; a key whose charge
  was journaled but whose response was lost in a crash resolves as
  ``"pending"`` — charged once, safe to re-sample).

:class:`MemoryLedgerBook` offers the same interface without a
directory, so the server code is identical in both modes.

Filesystem access goes through a :class:`LedgerFS` seam and crash
points through a fault-injector hook, so the chaos suite
(:mod:`repro.serving.faults`) can deterministically kill the process at
``charge.before-append`` / mid-append (torn write) /
``charge.before-fsync`` / ``charge.after-fsync`` and assert the
recovery invariants.
"""

from __future__ import annotations

import contextlib
import errno
import json
import os
import tempfile
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path

try:  # pragma: no cover - fcntl exists on every POSIX we target
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from ..core.privacy import alpha_to_epsilon
from ..exceptions import ReproError
from ..obs.tracing import current_trace
from ..validation import check_alpha
from .ledger import ConcurrentPrivacyLedger

__all__ = [
    "ChargeDecision",
    "DurableLedger",
    "LedgerCorruptionError",
    "LedgerFS",
    "LedgerUnavailableError",
    "MemoryLedgerBook",
    "UserBudget",
    "verify_ledger_dir",
]

#: Journal fsync policies. ``always`` fsyncs inside every append (the
#: standalone-safe default); ``group`` defers to :meth:`DurableLedger.sync`
#: (the serving tick calls it once per micro-batch flush, before any
#: response of that batch is released); ``off`` never fsyncs (benchmark
#: baseline only — crash durability is then up to the OS page cache).
FSYNC_MODES = ("always", "group", "off")

_WAL_NAME = "wal.jsonl"
_SNAPSHOT_NAME = "snapshot.json"
_META_NAME = "meta.json"
_LOCK_NAME = "ledger.lock"
_FORMAT_VERSION = 1

#: Deferred WAL-append latency samples fold into the histogram at this
#: many pending entries (and at every scrape) — keeps the hot append
#: path to one list append while bounding memory between scrapes.
_LAT_FOLD_CAP = 65536


class LedgerUnavailableError(ReproError):
    """The durable ledger cannot currently persist charges (disk full,
    fsync failure, or a prior injected crash); the charge was NOT
    recorded."""


class LedgerCorruptionError(ReproError):
    """The journal or snapshot is damaged in a way recovery must not
    paper over (corruption *before* valid records would drop admitted
    charges)."""


class LedgerFS:
    """The filesystem operations the ledger performs, as a seam.

    The chaos harness substitutes :class:`repro.serving.faults.FaultyFS`
    to inject torn writes, short writes, ``ENOSPC``, and fsync failures
    at exactly these call sites. ``write`` treats a short write as an
    ``OSError`` so the caller's rollback path handles real-world partial
    writes the same way as injected ones.
    """

    def open_append(self, path):
        return open(path, "ab", buffering=0)

    def write(self, handle, data: bytes) -> None:
        written = handle.write(data)
        if written is not None and written != len(data):
            raise OSError(
                errno.EIO, f"short write: {written}/{len(data)} bytes"
            )

    def fsync(self, handle) -> None:
        os.fsync(handle.fileno())

    def truncate(self, handle, size: int) -> None:
        handle.truncate(size)

    def replace(self, source, destination) -> None:
        os.replace(source, destination)

    def fsync_dir(self, path) -> None:
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


REAL_FS = LedgerFS()


class _NoFaults:
    """Zero-overhead default for the crash-point hook."""

    __slots__ = ()

    def crash(self, point: str) -> None:
        return None


NO_FAULTS = _NoFaults()


@dataclass(frozen=True)
class UserBudget:
    """A read-only statement of one user's accounting."""

    user: str
    releases: int
    floor: object
    cumulative_alpha: object
    remaining_alpha: object

    @property
    def cumulative_epsilon(self) -> float:
        return alpha_to_epsilon(max(self.cumulative_alpha, 0))


@dataclass(frozen=True)
class ChargeDecision:
    """The outcome of a charge-or-reject against a ledger book.

    ``outcome`` is one of:

    * ``"charged"`` — the charge was admitted (and, for a durable book,
      journaled; under ``fsync="always"`` it is already on disk);
    * ``"rejected"`` — admitting it would cross the floor; nothing was
      recorded;
    * ``"replayed"`` — the idempotency key was already charged *and* its
      response recorded: ``replay`` holds the original ``(status,
      response)`` and no budget was spent;
    * ``"pending"`` — the key was charged but no response was recorded
      (a crash or lost reply); the budget is already spent, so the
      caller should produce a fresh response *without* charging again.
    """

    outcome: str
    user: str
    cumulative_alpha: object
    remaining_alpha: object
    replay: tuple | None = None

    @property
    def charged(self) -> bool:
        return self.outcome == "charged"


def _encode_record(record: dict) -> bytes:
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = format(zlib.crc32(body.encode("utf-8")), "08x")
    framed = dict(record)
    framed["crc"] = crc
    return (
        json.dumps(framed, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
        + b"\n"
    )


def _decode_record(line: bytes) -> dict | None:
    """Parse and checksum one journal line; ``None`` = torn/corrupt."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(obj, dict):
        return None
    crc = obj.pop("crc", None)
    body = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    if crc != format(zlib.crc32(body.encode("utf-8")), "08x"):
        return None
    if not isinstance(obj.get("seq"), int):
        return None
    return obj


def _scan_wal(data: bytes, *, start_seq: int | None = None):
    """Walk the journal bytes record by record.

    Returns ``(records, good_size, torn_bytes, failure)``:

    * ``records`` — every valid record, in order;
    * ``good_size`` — byte length of the valid prefix;
    * ``torn_bytes`` — trailing bytes that failed to parse/checksum
      (``0`` when the journal is clean);
    * ``failure`` — a human-readable reason when the damage is **not** a
      clean tail (valid records exist after the bad region), i.e. real
      corruption recovery must refuse to skip.
    """
    records: list[dict] = []
    offset = 0
    previous_seq = start_seq
    n = len(data)
    while offset < n:
        newline = data.find(b"\n", offset)
        if newline < 0:
            # Unterminated final line: a torn append.
            return records, offset, n - offset, None
        line = data[offset:newline]
        record = _decode_record(line) if line else None
        if record is None or (
            previous_seq is not None and record["seq"] != previous_seq + 1
        ):
            remainder = data[newline + 1:]
            for tail_line in remainder.split(b"\n"):
                if tail_line and _decode_record(tail_line) is not None:
                    return (
                        records,
                        offset,
                        n - offset,
                        f"corrupt record at byte {offset} precedes "
                        f"{len(records)} valid trailing record(s)",
                    )
            return records, offset, n - offset, None
        records.append(record)
        previous_seq = record["seq"]
        offset = newline + 1
    return records, offset, 0, None


def _atomic_json_write(path: Path, payload: dict, fs: LedgerFS) -> None:
    """Write ``payload`` to ``path`` atomically and durably."""
    handle = tempfile.NamedTemporaryFile(
        mode="wb", dir=path.parent, prefix=f".{path.name}-", delete=False
    )
    try:
        with handle:
            fs.write(handle, _encode_record(payload))
            handle.flush()
            fs.fsync(handle)
        fs.replace(handle.name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(handle.name)
        raise
    fs.fsync_dir(path.parent)


def _read_checked_json(path: Path) -> dict | None:
    """Read a file written by :func:`_atomic_json_write`; ``None`` when
    missing, raises :class:`LedgerCorruptionError` when damaged."""
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return None
    record = _decode_record(data.strip())
    if record is None:
        raise LedgerCorruptionError(f"{path} is corrupt (checksum mismatch)")
    return record


class _ReplayCache:
    """Bounded idempotency-key cache.

    Entries are ``{"user", "status", "response"}``; ``status is None``
    marks a *pending* charge (journaled, response not yet recorded).
    Pending entries are never evicted — dropping one would let a retry
    double-charge; completed entries age out FIFO past ``cap``.
    """

    def __init__(self, cap: int) -> None:
        self.cap = int(cap)
        self._entries: OrderedDict[str, dict] = OrderedDict()

    def get(self, idem: str) -> dict | None:
        return self._entries.get(idem)

    def put(self, idem: str, entry: dict) -> None:
        self._entries[idem] = entry
        self._entries.move_to_end(idem)
        while len(self._entries) > self.cap:
            for key, value in self._entries.items():
                if value.get("status") is not None:
                    del self._entries[key]
                    break
            else:
                break

    def items(self):
        return self._entries.items()

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def _fraction(text) -> Fraction:
    try:
        return Fraction(str(text))
    except (ValueError, ZeroDivisionError) as err:
        raise LedgerCorruptionError(
            f"unparseable exact fraction {text!r}: {err}"
        ) from None


class MemoryLedgerBook:
    """The process-local ledger book: per-user
    :class:`ConcurrentPrivacyLedger` accounting plus an in-memory
    idempotency replay cache. Budgets die with the process — the
    serving default only when no ``--ledger-dir`` is given."""

    durable = False

    def __init__(
        self, floor=0, *, replay_cap: int = 65536, telemetry=None
    ) -> None:
        check_alpha(floor, allow_endpoints=True)
        self.floor = floor
        self.telemetry = telemetry
        self._books: dict[str, ConcurrentPrivacyLedger] = {}
        self._replay = _ReplayCache(replay_cap)
        self._lock = threading.Lock()

    # -- the shared LedgerBook interface --------------------------------
    def book(self, user: str) -> ConcurrentPrivacyLedger:
        """The (created-on-first-use) ledger accounting for ``user``."""
        ledger = self._books.get(user)
        if ledger is None:
            ledger = self._books[user] = ConcurrentPrivacyLedger(self.floor)
        return ledger

    def charge(
        self, user: str, alpha, *, label: str = "release", idem=None
    ) -> ChargeDecision:
        with self._lock:
            if idem is not None:
                decision = self._replay_decision(user, idem)
                if decision is not None:
                    return decision
            book = self.book(user)
            if not book.try_charge(alpha, label=label):
                return ChargeDecision(
                    "rejected", user, book.cumulative_alpha,
                    book.remaining_alpha,
                )
            if idem is not None:
                self._replay.put(
                    idem, {"user": user, "status": None, "response": None}
                )
            return ChargeDecision(
                "charged", user, book.cumulative_alpha, book.remaining_alpha
            )

    def _replay_decision(self, user, idem) -> ChargeDecision | None:
        hit = self._replay.get(idem)
        if hit is None:
            return None
        book = self.book(hit.get("user") or user)
        if hit.get("status") is not None:
            return ChargeDecision(
                "replayed", user, book.cumulative_alpha,
                book.remaining_alpha, replay=(hit["status"], hit["response"]),
            )
        return ChargeDecision(
            "pending", user, book.cumulative_alpha, book.remaining_alpha
        )

    def record_result(self, idem: str, status: int, response: dict) -> None:
        """Attach the released response to its idempotency key."""
        with self._lock:
            hit = self._replay.get(idem) or {"user": None}
            self._replay.put(
                idem,
                {"user": hit.get("user"), "status": int(status),
                 "response": response},
            )

    def view(self, user: str) -> UserBudget | None:
        book = self._books.get(user)
        if book is None:
            return None
        return UserBudget(
            user=user,
            releases=len(book),
            floor=book.floor,
            cumulative_alpha=book.cumulative_alpha,
            remaining_alpha=book.remaining_alpha,
        )

    def users(self) -> int:
        return len(self._books)

    def sync(self) -> None:
        """Nothing to flush — memory books are as durable as they get."""

    def close(self) -> None:
        pass

    def stats(self) -> dict:
        return {
            "backend": "memory",
            "users": len(self._books),
            "replay_entries": len(self._replay),
        }

    def __repr__(self) -> str:
        return (
            f"<MemoryLedgerBook users={len(self._books)} floor={self.floor}>"
        )


class DurableLedger(MemoryLedgerBook):
    """A :class:`MemoryLedgerBook` backed by a checksummed, fsync'd,
    append-only JSONL write-ahead log (see the module docstring for the
    protocol and recovery semantics).

    Parameters
    ----------
    directory:
        The ledger directory (created if missing): ``wal.jsonl``,
        ``snapshot.json``, ``meta.json``, ``ledger.lock``.
    floor:
        Per-user privacy floor. ``None`` adopts the floor persisted in
        ``meta.json`` (0 for a fresh directory); an explicit value
        overrides and re-persists it.
    fsync:
        One of :data:`FSYNC_MODES`.
    snapshot_every:
        Auto-compact after this many journal appends (``0`` disables;
        :meth:`compact` always works explicitly).
    replay_cap:
        Bound on completed idempotency-replay entries held (pending
        charges are never evicted).
    fs / faults:
        The filesystem seam and crash-point hook for fault injection.
    """

    durable = True

    def __init__(
        self,
        directory,
        floor=None,
        *,
        fsync: str = "always",
        snapshot_every: int = 4096,
        replay_cap: int = 65536,
        fs: LedgerFS | None = None,
        faults=None,
        telemetry=None,
    ) -> None:
        if fsync not in FSYNC_MODES:
            raise ReproError(
                f"fsync must be one of {FSYNC_MODES}, got {fsync!r}"
            )
        self.path = Path(directory).expanduser()
        self.path.mkdir(parents=True, exist_ok=True)
        self._fs = fs if fs is not None else REAL_FS
        self._faults = faults if faults is not None else NO_FAULTS
        self._mode = fsync
        self._fsyncs = 0
        self._compactions = 0
        self._last_fsync_s: float | None = None
        self.snapshot_every = int(snapshot_every)
        self._wal_path = self.path / _WAL_NAME
        self._snapshot_path = self.path / _SNAPSHOT_NAME
        self._wal = None
        self._lock_handle = None
        self._seq = 0
        self._snapshot_seq = 0
        self._size = 0
        self._snap_stat: tuple | None = None
        self._appends_since_snapshot = 0
        self._dirty = False
        self._failed: str | None = None
        self._closed = False
        floor = self._resolve_floor(floor)
        self._wal_lat_pending: list = []
        super().__init__(floor, replay_cap=replay_cap, telemetry=telemetry)
        if telemetry is not None:
            # Deferred WAL-append latency: each charge parks one raw
            # duration (a C-level list append); this collector folds
            # them into the histogram at scrape time.
            telemetry.registry.register_collector(self._fold_wal_latency)
        with self._exclusive():
            pass  # recovery happens in the catch-up under the first lock

    # -- metadata ------------------------------------------------------
    def _resolve_floor(self, floor):
        meta = _read_checked_json(self.path / _META_NAME)
        if meta is not None and meta.get("version") != _FORMAT_VERSION:
            raise LedgerCorruptionError(
                f"ledger format version {meta.get('version')!r} is not "
                f"{_FORMAT_VERSION}"
            )
        stored = None if meta is None else _fraction(meta["floor"])
        if floor is None:
            floor = stored if stored is not None else 0
        check_alpha(floor, allow_endpoints=True)
        floor = Fraction(floor)
        if stored is None or stored != floor:
            _atomic_json_write(
                self.path / _META_NAME,
                {"version": _FORMAT_VERSION, "seq": 0,
                 "floor": str(floor)},
                self._fs,
            )
        return floor

    # -- locking and cross-process catch-up ----------------------------
    def _flock(self):
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return
        if self._lock_handle is None:
            self._lock_handle = open(self.path / _LOCK_NAME, "a+")
        fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_EX)

    def _funlock(self):
        if fcntl is None or self._lock_handle is None:  # pragma: no cover
            return
        fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_UN)

    @contextlib.contextmanager
    def _exclusive(self):
        with self._lock:
            if self._failed:
                raise LedgerUnavailableError(self._failed)
            if self._closed:
                raise LedgerUnavailableError("ledger is closed")
            self._flock()
            try:
                self._catch_up()
                yield
            except BaseException as err:
                if not isinstance(err, (Exception, GeneratorExit)):
                    # A simulated (or real) crash mid-protocol: this
                    # in-process instance no longer matches the disk.
                    # Refuse further use; recovery = open a new ledger.
                    self._failed = f"crashed mid-operation: {err!r}"
                raise
            finally:
                self._funlock()

    def _wal_handle(self):
        if self._wal is None:
            self._wal = self._fs.open_append(self._wal_path)
        return self._wal

    def _stat_snapshot(self):
        try:
            stat = os.stat(self._snapshot_path)
        except FileNotFoundError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _catch_up(self) -> None:
        """Apply whatever sibling processes appended since our offset."""
        try:
            wal_size = os.path.getsize(self._wal_path)
        except FileNotFoundError:
            wal_size = 0
        if wal_size == self._size and self._stat_snapshot() == self._snap_stat:
            return
        if wal_size > self._size and self._stat_snapshot() == self._snap_stat:
            with open(self._wal_path, "rb") as handle:
                handle.seek(self._size)
                data = handle.read()
            records, good, torn, failure = _scan_wal(
                data, start_seq=self._seq
            )
            if failure is None and not (torn and records == []):
                if torn:
                    self._truncate_wal(self._size + good)
                for record in records:
                    self._apply(record)
                self._size += good
                return
        self._reload()

    def _truncate_wal(self, size: int) -> None:
        handle = self._wal_handle()
        self._fs.truncate(handle, size)
        if self._mode != "off":
            self._fs.fsync(handle)

    def _reload(self) -> None:
        """Full recovery: snapshot, then journal replay, truncating a
        torn tail and refusing mid-journal corruption."""
        self._books.clear()
        self._replay.clear()
        self._seq = 0
        self._snapshot_seq = 0
        snapshot = _read_checked_json(self._snapshot_path)
        if snapshot is not None:
            if snapshot.get("version") != _FORMAT_VERSION:
                raise LedgerCorruptionError(
                    f"snapshot version {snapshot.get('version')!r} is not "
                    f"{_FORMAT_VERSION}"
                )
            self._snapshot_seq = self._seq = int(snapshot["seq"])
            for user, state in snapshot.get("users", {}).items():
                book = self.book(user)
                book.restore(
                    _fraction(state["cum"]), label="snapshot",
                    releases=int(state.get("releases", 1)),
                )
            for idem, entry in snapshot.get("replay", {}).items():
                self._replay.put(idem, dict(entry))
        self._snap_stat = self._stat_snapshot()
        try:
            data = self._wal_path.read_bytes()
        except FileNotFoundError:
            data = b""
        records, good, torn, failure = _scan_wal(data)
        if failure is not None:
            raise LedgerCorruptionError(
                f"{self._wal_path}: {failure}; refusing to drop admitted "
                "charges — restore from snapshot/backup or repair manually"
            )
        applied = [r for r in records if r["seq"] > self._snapshot_seq]
        if applied and applied[0]["seq"] != self._snapshot_seq + 1:
            raise LedgerCorruptionError(
                f"{self._wal_path}: journal starts at seq "
                f"{applied[0]['seq']} but the snapshot ends at "
                f"{self._snapshot_seq}; records are missing"
            )
        if torn:
            self._truncate_wal(good)
        for record in applied:
            self._apply(record)
        self._size = good

    def _apply(self, record: dict) -> None:
        op = record.get("op")
        if op == "charge":
            user = record["user"]
            book = self.book(user)
            book.restore(
                _fraction(record["cum"]),
                label=record.get("label", "release"),
            )
            idem = record.get("idem")
            if idem is not None:
                existing = self._replay.get(idem)
                if existing is None or existing.get("status") is None:
                    self._replay.put(
                        idem,
                        {"user": user, "status": None, "response": None},
                    )
        elif op == "result":
            self._replay.put(
                record["idem"],
                {
                    "user": record.get("user"),
                    "status": record.get("status"),
                    "response": record.get("response"),
                },
            )
        # Unknown ops are ignored for forward compatibility.
        self._seq = record["seq"]

    def _fold_wal_latency(self) -> None:
        """Fold deferred append durations into the latency histogram.

        Registered as a scrape-time collector; also triggered by the
        append path at :data:`_LAT_FOLD_CAP` pending samples so the
        parked list stays bounded between scrapes.
        """
        pending = self._wal_lat_pending
        if pending:
            self._wal_lat_pending = []
            self.telemetry.wal_append_latency.observe_many(pending)

    # -- the append protocol -------------------------------------------
    def _append(self, record: dict) -> None:
        """Append one record; on I/O failure roll back to the last
        known-good journal length so the ledger stays usable."""
        line = _encode_record(record)
        handle = self._wal_handle()
        start = self._size
        obs = self.telemetry
        # Untraced requests (the vast majority at low sampling rates)
        # must not pay for span machinery on every charge — one C-level
        # ContextVar read decides; metrics stay unconditional.
        traced = obs is not None and current_trace() is not None
        try:
            t0 = time.perf_counter()
            if traced:
                with obs.tracer.span("wal.append", seq=record["seq"]):
                    self._fs.write(handle, line)
            else:
                self._fs.write(handle, line)
            if obs is not None:
                pending = self._wal_lat_pending
                pending.append(time.perf_counter() - t0)
                if len(pending) >= _LAT_FOLD_CAP:
                    self._fold_wal_latency()
            self._faults.crash("charge.before-fsync")
            if self._mode == "always":
                t1 = time.perf_counter()
                if traced:
                    with obs.tracer.span("wal.fsync", mode="always"):
                        self._fs.fsync(handle)
                else:
                    self._fs.fsync(handle)
                self._last_fsync_s = time.perf_counter() - t1
                self._fsyncs += 1
                if obs is not None:
                    obs.wal_fsync_latency.labels("always").observe(
                        self._last_fsync_s
                    )
            elif self._mode == "group":
                self._dirty = True
        except OSError as err:
            try:
                self._fs.truncate(handle, start)
                if self._mode != "off":
                    self._fs.fsync(handle)
            except OSError as rollback_err:
                self._failed = (
                    f"journal rollback failed ({rollback_err}) after a "
                    f"failed append ({err}); the ledger is read-only"
                )
                raise LedgerUnavailableError(self._failed) from err
            raise LedgerUnavailableError(
                f"could not persist the charge: {err}"
            ) from err
        self._size = start + len(line)
        self._seq = record["seq"]
        self._appends_since_snapshot += 1

    # -- the LedgerBook interface, durably -----------------------------
    def charge(
        self, user: str, alpha, *, label: str = "release", idem=None
    ) -> ChargeDecision:
        check_alpha(alpha)
        alpha = Fraction(alpha)
        with self._exclusive():
            if idem is not None:
                decision = self._replay_decision(user, idem)
                if decision is not None:
                    return decision
            book = self.book(user)
            if not book.can_afford(alpha):
                return ChargeDecision(
                    "rejected", user, book.cumulative_alpha,
                    book.remaining_alpha,
                )
            record = {
                "op": "charge",
                "seq": self._seq + 1,
                "user": user,
                "alpha": str(alpha),
                "cum": str(book.cumulative_alpha * alpha),
                "label": label,
            }
            if idem is not None:
                record["idem"] = idem
            self._faults.crash("charge.before-append")
            self._append(record)
            self._faults.crash("charge.after-fsync")
            book.charge(alpha, label=label)
            if idem is not None:
                self._replay.put(
                    idem, {"user": user, "status": None, "response": None}
                )
            decision = ChargeDecision(
                "charged", user, book.cumulative_alpha, book.remaining_alpha
            )
            self._maybe_compact()
            return decision

    def record_result(self, idem: str, status: int, response: dict) -> None:
        """Journal the released response for idempotent replay.

        Best-effort relative to the charge itself: losing this record in
        a crash downgrades a future retry from ``"replayed"`` to
        ``"pending"`` (re-sample, never re-charge).
        """
        with self._exclusive():
            hit = self._replay.get(idem) or {"user": None}
            record = {
                "op": "result",
                "seq": self._seq + 1,
                "idem": idem,
                "user": hit.get("user"),
                "status": int(status),
                "response": response,
            }
            self._faults.crash("result.before-append")
            self._append(record)
            self._replay.put(
                idem,
                {"user": hit.get("user"), "status": int(status),
                 "response": response},
            )
            self._maybe_compact()

    def view(self, user: str) -> UserBudget | None:
        with self._exclusive():
            return super().view(user)

    def users(self) -> int:
        with self._exclusive():
            return len(self._books)

    def sync(self) -> None:
        """Group commit: fsync everything appended since the last sync.

        Under ``fsync="group"`` the serving tick calls this once per
        micro-batch flush, *before* any response of the batch is
        released — one fsync amortized over the whole batch.
        """
        with self._lock:
            if self._failed:
                raise LedgerUnavailableError(self._failed)
            if self._dirty and self._wal is not None:
                obs = self.telemetry
                t0 = time.perf_counter()
                try:
                    if obs is not None:
                        # Inside a micro-batch execute this span is
                        # batch-scoped: it lands in every traced
                        # request whose charge this fsync commits.
                        with obs.tracer.span("wal.fsync", mode="group"):
                            self._fs.fsync(self._wal)
                    else:
                        self._fs.fsync(self._wal)
                except OSError as err:
                    self._failed = f"group-commit fsync failed: {err}"
                    raise LedgerUnavailableError(self._failed) from err
                self._dirty = False
                self._last_fsync_s = time.perf_counter() - t0
                self._fsyncs += 1
                if obs is not None:
                    obs.wal_fsync_latency.labels("group").observe(
                        self._last_fsync_s
                    )

    def probe(self) -> None:
        """Durability probe: journal a no-op record and fsync it.

        The serving circuit breaker's half-open state calls this on a
        freshly opened ledger — one append plus one *unconditional*
        fsync (even under ``fsync="off"``) proves the WAL is writable
        end-to-end before durable charging resumes. Raises
        :class:`LedgerUnavailableError` when it is not. The record's op
        is unknown to replay and ignored, so probes cost journal bytes
        but never touch budgets.
        """
        with self._exclusive():
            self._append({"op": "probe", "seq": self._seq + 1})
            try:
                self._fs.fsync(self._wal_handle())
            except OSError as err:
                self._failed = f"probe fsync failed: {err}"
                raise LedgerUnavailableError(self._failed) from err
            self._dirty = False
            self._fsyncs += 1

    # -- snapshot + compaction -----------------------------------------
    def _maybe_compact(self) -> None:
        if (
            self.snapshot_every > 0
            and self._appends_since_snapshot >= self.snapshot_every
        ):
            self._compact_locked()

    def compact(self) -> dict:
        """Snapshot the state and truncate the journal; returns stats."""
        with self._exclusive():
            before = self._size
            self._compact_locked()
            return {
                "snapshot_seq": self._snapshot_seq,
                "journal_bytes_before": before,
                "journal_bytes_after": self._size,
                "users": len(self._books),
            }

    def _compact_locked(self) -> None:
        if self._dirty:
            self._fs.fsync(self._wal_handle())
            self._dirty = False
        payload = {
            "version": _FORMAT_VERSION,
            "seq": self._seq,
            "floor": str(Fraction(self.floor)),
            "users": {
                user: {
                    "cum": str(book.cumulative_alpha),
                    "releases": len(book),
                }
                for user, book in self._books.items()
            },
            "replay": {idem: entry for idem, entry in self._replay.items()},
        }
        _atomic_json_write(self._snapshot_path, payload, self._fs)
        self._faults.crash("compact.after-snapshot")
        self._truncate_wal(0)
        self._size = 0
        self._snapshot_seq = self._seq
        self._appends_since_snapshot = 0
        self._snap_stat = self._stat_snapshot()
        self._compactions += 1
        if self.telemetry is not None:
            self.telemetry.ledger_compactions.inc()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Flush pending bytes and release the journal handle."""
        with self._lock:
            self._closed = True
            if self._wal is not None:
                with contextlib.suppress(OSError, ValueError):
                    if self._dirty and not self._failed:
                        self._fs.fsync(self._wal)
                with contextlib.suppress(OSError):
                    self._wal.close()
                self._wal = None
            if self._lock_handle is not None:
                with contextlib.suppress(OSError):
                    self._lock_handle.close()
                self._lock_handle = None

    def stats(self) -> dict:
        return {
            "backend": "durable",
            "path": str(self.path),
            "fsync": self._mode,
            "users": len(self._books),
            "seq": self._seq,
            "snapshot_seq": self._snapshot_seq,
            "journal_bytes": self._size,
            "replay_entries": len(self._replay),
            "fsyncs": self._fsyncs,
            "compactions": self._compactions,
            "last_fsync_ms": None
            if self._last_fsync_s is None
            else round(self._last_fsync_s * 1e3, 4),
            # Non-None once the instance has refused further writes
            # (failed rollback, failed group fsync, mid-protocol crash);
            # readiness checks and the WAL circuit breaker key off it.
            "failed": self._failed,
        }

    def __repr__(self) -> str:
        return (
            f"<DurableLedger path={str(self.path)!r} users="
            f"{len(self._books)} seq={self._seq} fsync={self._mode}>"
        )


def verify_ledger_dir(directory) -> dict:
    """Read-only integrity check of a ledger directory.

    Returns a report dict: ``ok`` is ``False`` only for damage recovery
    would refuse (mid-journal corruption, bad snapshot/meta checksums,
    sequence gaps). A torn tail is reported (``torn_tail_bytes``) but is
    *not* a failure — recovery truncates it by design.
    """
    path = Path(directory).expanduser()
    failures: list[str] = []
    report = {
        "path": str(path),
        "ok": True,
        "records": 0,
        "users": 0,
        "seq": 0,
        "snapshot_seq": 0,
        "torn_tail_bytes": 0,
        "failures": failures,
    }
    snapshot_seq = 0
    users: set[str] = set()
    cumulative: dict[str, Fraction] = {}
    try:
        meta = _read_checked_json(path / _META_NAME)
    except LedgerCorruptionError as err:
        failures.append(str(err))
        meta = None
    if meta is not None:
        report["floor"] = meta.get("floor")
    try:
        snapshot = _read_checked_json(path / _SNAPSHOT_NAME)
    except LedgerCorruptionError as err:
        failures.append(str(err))
        snapshot = None
    if snapshot is not None:
        snapshot_seq = int(snapshot.get("seq", 0))
        for user, state in snapshot.get("users", {}).items():
            users.add(user)
            try:
                cumulative[user] = _fraction(state["cum"])
            except LedgerCorruptionError as err:
                failures.append(f"snapshot user {user!r}: {err}")
    report["snapshot_seq"] = snapshot_seq
    try:
        data = (path / _WAL_NAME).read_bytes()
    except FileNotFoundError:
        data = b""
    records, _good, torn, failure = _scan_wal(data)
    if failure is not None:
        failures.append(failure)
    report["torn_tail_bytes"] = torn
    applied = [r for r in records if r["seq"] > snapshot_seq]
    if applied and applied[0]["seq"] != snapshot_seq + 1:
        failures.append(
            f"journal starts at seq {applied[0]['seq']} but the snapshot "
            f"ends at {snapshot_seq}"
        )
    for record in applied:
        if record.get("op") == "charge":
            user = record["user"]
            users.add(user)
            try:
                step = _fraction(record["alpha"])
                claimed = _fraction(record["cum"])
            except LedgerCorruptionError as err:
                failures.append(f"seq {record['seq']}: {err}")
                continue
            expected = cumulative.get(user, Fraction(1)) * step
            if expected != claimed:
                failures.append(
                    f"seq {record['seq']}: cumulative {claimed} does not "
                    f"equal running product {expected} for user {user!r}"
                )
            cumulative[user] = claimed
    report["records"] = len(records)
    report["users"] = len(users)
    report["seq"] = max(
        [snapshot_seq] + [r["seq"] for r in records], default=0
    )
    report["ok"] = not failures
    return report
