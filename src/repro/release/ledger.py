"""Privacy-budget ledger for repeated releases.

Each independent release about the same database composes: answering the
same (or any) count query twice at levels ``alpha_1`` and ``alpha_2``
lets an adversary combine likelihood ratios, so the joint guarantee
degrades to the *product* ``alpha_1 * alpha_2`` (in the epsilon
convention: epsilons add). Section 2.6 motivates Algorithm 1 exactly to
avoid paying this cost for multi-level releases of one statistic.

:class:`PrivacyLedger` makes the composition explicit for everything
else: it records each release, tracks the cumulative guarantee exactly
(Fractions compose exactly), and refuses releases that would drop the
database below a configured privacy floor.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from fractions import Fraction

from ..core.privacy import alpha_to_epsilon
from ..exceptions import ReproError, ValidationError
from ..validation import check_alpha

__all__ = [
    "BudgetExceededError",
    "LedgerEntry",
    "PrivacyLedger",
    "ConcurrentPrivacyLedger",
]


class BudgetExceededError(ReproError):
    """A release would exhaust the ledger's privacy floor."""


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded release.

    Attributes
    ----------
    label:
        Caller-supplied description of the release.
    alpha:
        The release's privacy level.
    cumulative_alpha:
        The joint guarantee over all releases up to and including this
        one (product of levels).
    """

    label: str
    alpha: object
    cumulative_alpha: object


class PrivacyLedger:
    """Tracks cumulative privacy loss across independent releases.

    Parameters
    ----------
    floor:
        The weakest joint guarantee the data owner will tolerate; the
        ledger refuses releases that would push the cumulative level
        below it. ``floor = 0`` disables enforcement.

    Examples
    --------
    >>> ledger = PrivacyLedger(floor=Fraction(1, 16))
    >>> ledger.charge(Fraction(1, 2), label="flu count")
    >>> ledger.charge(Fraction(1, 4), label="age histogram cell")
    >>> ledger.cumulative_alpha
    Fraction(1, 8)
    >>> ledger.remaining_alpha
    Fraction(1, 2)
    """

    def __init__(self, floor=0) -> None:
        check_alpha(floor, allow_endpoints=True)
        if floor == 1:
            raise ValidationError(
                "floor = 1 (absolute privacy) would forbid every release"
            )
        self.floor = floor
        self._entries: list[LedgerEntry] = []
        self._restored = 0

    # ------------------------------------------------------------------
    @property
    def entries(self) -> tuple[LedgerEntry, ...]:
        """All recorded releases, in order."""
        return tuple(self._entries)

    @property
    def cumulative_alpha(self):
        """The joint guarantee so far (1 when nothing was released)."""
        if not self._entries:
            return Fraction(1)
        return self._entries[-1].cumulative_alpha

    @property
    def cumulative_epsilon(self) -> float:
        """The joint guarantee in the epsilon convention (sums)."""
        return alpha_to_epsilon(max(self.cumulative_alpha, 0))

    @property
    def remaining_alpha(self):
        """The weakest further release the floor still allows.

        A future release at level ``a`` keeps the ledger legal iff
        ``cumulative * a >= floor``, i.e. ``a >= floor / cumulative``.
        Returns 0 when enforcement is disabled, 1 when nothing is left.
        """
        if self.floor == 0:
            return 0
        allowance = self.floor / self.cumulative_alpha
        return min(allowance, Fraction(1))

    def can_afford(self, alpha) -> bool:
        """Whether a release at ``alpha`` fits in the remaining budget."""
        check_alpha(alpha)
        if self.floor == 0:
            return True
        return self.cumulative_alpha * alpha >= self.floor

    def charge(self, alpha, *, label: str = "release") -> None:
        """Record a release at level ``alpha``.

        Raises
        ------
        BudgetExceededError
            When the floor would be crossed; the ledger is unchanged.
        """
        check_alpha(alpha)
        proposed = self.cumulative_alpha * alpha
        if self.floor != 0 and proposed < self.floor:
            raise BudgetExceededError(
                f"release {label!r} at alpha={alpha} would take the joint "
                f"guarantee to {proposed}, below the floor {self.floor}"
            )
        self._entries.append(
            LedgerEntry(
                label=label, alpha=alpha, cumulative_alpha=proposed
            )
        )

    def restore(self, cumulative, *, label: str = "recovered",
                releases: int = 1) -> None:
        """Seed the ledger with an externally-recovered joint guarantee.

        The durability layer (:mod:`repro.release.durable_ledger`)
        rebuilds in-memory books from its write-ahead log and snapshots:
        each replayed record carries the exact cumulative guarantee, so
        recovery *sets* it rather than re-deriving it, and the floor is
        deliberately not re-checked — a recovered ledger may already sit
        at (never below) its floor, and refusing to restore it would
        drop admitted charges. ``releases`` counts how many releases the
        restored state summarizes (a compacted snapshot entry stands for
        many), so :func:`len` stays truthful.
        """
        check_alpha(cumulative, allow_endpoints=True)
        if cumulative == 0:
            raise ValidationError("cannot restore a zero joint guarantee")
        if releases < 1:
            raise ValidationError(
                f"restored state must summarize >= 1 release(s), "
                f"got {releases}"
            )
        current = self.cumulative_alpha
        self._entries.append(
            LedgerEntry(
                label=label,
                alpha=Fraction(cumulative) / current,
                cumulative_alpha=Fraction(cumulative),
            )
        )
        self._restored += releases - 1

    def try_charge(self, alpha, *, label: str = "release") -> bool:
        """Charge-or-reject: record the release iff it fits the floor.

        The refusal-as-value twin of :meth:`charge` for serving paths
        that treat a rejection as flow control (an HTTP 429) rather than
        an exception. Returns ``True`` when the release was recorded.
        """
        try:
            self.charge(alpha, label=label)
        except BudgetExceededError:
            return False
        return True

    def report(self) -> str:
        """A plain-text statement of the ledger."""
        lines = [
            f"privacy ledger: {len(self._entries)} release(s), "
            f"floor={self.floor}"
        ]
        for index, entry in enumerate(self._entries):
            lines.append(
                f"  {index + 1}. {entry.label}: alpha={entry.alpha} "
                f"-> cumulative {entry.cumulative_alpha}"
            )
        lines.append(
            f"joint guarantee: alpha={self.cumulative_alpha} "
            f"(epsilon={self.cumulative_epsilon:.4f})"
        )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._entries) + self._restored

    def __repr__(self) -> str:
        return (
            f"<PrivacyLedger entries={len(self._entries)} "
            f"cumulative={self.cumulative_alpha} floor={self.floor}>"
        )


class ConcurrentPrivacyLedger(PrivacyLedger):
    """A :class:`PrivacyLedger` safe under concurrent charging.

    The base class's :meth:`~PrivacyLedger.charge` is already atomic
    *within* one thread, but a serving process charges from many places
    at once: worker threads, executor pools, and asyncio handlers that
    must never interleave a ``can_afford`` check with someone else's
    ``charge`` between their check and their append. This subclass
    serializes the read-modify-write under one lock, so the invariant

        ``cumulative_alpha >= floor``  (after every successful charge)

    holds no matter how many racers call :meth:`charge` /
    :meth:`try_charge` simultaneously — over-admission (two racers both
    passing ``can_afford`` for the last budget slot) is impossible.

    asyncio-safety note: a single event loop never preempts between the
    check and the append, so the lock is uncontended there; it exists for
    threads, and it is deliberately *not* an ``asyncio.Lock`` so the same
    ledger object can be shared by loops and threads alike. The lock is
    never held across anything blocking — charging is pure arithmetic.
    """

    def __init__(self, floor=0) -> None:
        super().__init__(floor)
        self._lock = threading.Lock()

    def charge(self, alpha, *, label: str = "release") -> None:
        with self._lock:
            super().charge(alpha, label=label)

    def restore(self, cumulative, *, label: str = "recovered",
                releases: int = 1) -> None:
        with self._lock:
            super().restore(cumulative, label=label, releases=releases)

    def __repr__(self) -> str:
        return (
            f"<ConcurrentPrivacyLedger entries={len(self._entries)} "
            f"cumulative={self.cumulative_alpha} floor={self.floor}>"
        )
