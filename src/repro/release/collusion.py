"""Collusion attacks against multi-release schemes.

Section 2.6's warning made executable: when the *naive* scheme releases
independently-perturbed copies of the same count at several privacy
levels, colluders can average the copies and cancel noise (their
estimate concentrates as in Chernoff bounds). Against Algorithm 1's
correlated chain, every extra release is a randomized function of the
first, so the averaging attack gains nothing over the least-private
release alone — the behavioural counterpart of Lemma 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.geometric import GeometricMechanism
from ..core.multilevel import MultiLevelRelease
from ..exceptions import ValidationError
from ..sampling.rng import ensure_generator
from ..validation import check_index, check_result_range

__all__ = [
    "AveragingAttackResult",
    "averaging_attack",
    "compare_release_strategies",
]


@dataclass(frozen=True)
class AveragingAttackResult:
    """Metrics of an averaging attack on multi-release samples.

    Attributes
    ----------
    hit_rate:
        Fraction of trials where the attack recovers the true count.
    mse:
        Mean squared error of the attack's estimates.
    mean_absolute_error:
        Mean absolute error of the attack's estimates.
    """

    hit_rate: float
    mse: float
    mean_absolute_error: float


def averaging_attack(
    samples: np.ndarray, true_result: int, n: int
) -> AveragingAttackResult:
    """Round-the-average estimator over per-trial release tuples.

    Parameters
    ----------
    samples:
        Array of shape ``(trials, k)`` — each row one multi-release.
    true_result:
        The count the attacker tries to recover.
    n:
        Result-range maximum (estimates are clipped into ``[0, n]``).
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2 or samples.shape[0] < 1:
        raise ValidationError(
            f"samples must be (trials, k) with trials >= 1, "
            f"got shape {samples.shape}"
        )
    n = check_result_range(n)
    true_result = check_index(true_result, n, name="true_result")
    estimates = np.clip(np.rint(samples.mean(axis=1)), 0, n)
    errors = estimates - true_result
    return AveragingAttackResult(
        hit_rate=float(np.mean(estimates == true_result)),
        mse=float(np.mean(errors**2)),
        mean_absolute_error=float(np.mean(np.abs(errors))),
    )


@dataclass(frozen=True)
class StrategyComparison:
    """Side-by-side attack metrics for the two release strategies.

    Attributes
    ----------
    naive:
        Averaging attack against k independent releases.
    chained:
        The same attack against Algorithm 1's correlated releases.
    single_best:
        Baseline: using only the least-private release (no collusion).
    """

    naive: AveragingAttackResult
    chained: AveragingAttackResult
    single_best: AveragingAttackResult


def compare_release_strategies(
    n: int,
    alphas,
    true_result: int,
    trials: int = 2000,
    rng=None,
) -> StrategyComparison:
    """Run the averaging attack against naive vs chained releases.

    Expected shape (asserted by the benchmark): the naive scheme's
    hit rate materially exceeds the single-release baseline, while the
    chained scheme's does not — colluding against Algorithm 1 is useless.
    """
    n = check_result_range(n)
    true_result = check_index(true_result, n, name="true_result")
    if trials < 1:
        raise ValidationError(f"trials must be >= 1, got {trials}")
    levels = list(alphas)
    rng = ensure_generator(rng)
    release = MultiLevelRelease(n, levels)
    chained_samples = release.release_many(true_result, trials, rng)
    mechanisms = [GeometricMechanism(n, alpha) for alpha in levels]
    naive_samples = np.column_stack(
        [
            mechanism.sample_many(true_result, trials, rng)
            for mechanism in mechanisms
        ]
    )
    single = chained_samples[:, :1]
    return StrategyComparison(
        naive=averaging_attack(naive_samples, true_result, n),
        chained=averaging_attack(chained_samples, true_result, n),
        single_best=averaging_attack(single, true_result, n),
    )
