"""Deployment-level multi-tier release (wrapping Algorithm 1).

The paper's motivating scenario: one version of the flu report for
government executives (high utility, low alpha) and one for the public
Internet (high privacy, larger alpha). :class:`MultiLevelPublisher`
evaluates the query once and runs Algorithm 1's correlated chain so the
tiers are collusion-resistant by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.multilevel import MultiLevelRelease
from ..db.database import Database
from ..db.engine import QueryEngine
from ..db.queries import CountQuery
from ..exceptions import ValidationError
from ..sampling.rng import ensure_generator

__all__ = ["TieredRelease", "MultiLevelPublisher"]


@dataclass(frozen=True)
class TieredRelease:
    """Results of one multi-tier publication.

    Attributes
    ----------
    query_description:
        What was counted.
    results:
        Mapping from tier name to published value.
    alphas:
        Mapping from tier name to that tier's privacy level.
    """

    query_description: str
    results: dict[str, int]
    alphas: dict[str, object]


class MultiLevelPublisher:
    """Publishes one query at several named trust tiers.

    Parameters
    ----------
    database:
        The sensitive database.
    tiers:
        Mapping from tier name to privacy level; levels must be
        pairwise distinct. Tiers are served least-private-first
        internally, per Algorithm 1.

    Examples
    --------
    >>> from fractions import Fraction as F
    >>> from repro.db import Attribute, Schema, Database
    >>> schema = Schema([Attribute("has_flu", "bool")])
    >>> db = Database(schema, [{"has_flu": True}] * 3)
    >>> pub = MultiLevelPublisher(db, {"gov": F(1, 4), "web": F(1, 2)})
    >>> sorted(pub.tier_names)
    ['gov', 'web']
    """

    def __init__(self, database: Database, tiers: dict) -> None:
        if not isinstance(database, Database):
            raise ValidationError(
                f"expected a Database, got {type(database).__name__}"
            )
        if not tiers:
            raise ValidationError("at least one tier is required")
        levels = list(tiers.values())
        if len(set(levels)) != len(levels):
            raise ValidationError("tier privacy levels must be distinct")
        self._engine = QueryEngine(database)
        # Algorithm 1 wants levels ascending (least private first).
        ordered = sorted(tiers.items(), key=lambda item: item[1])
        self._tier_names = tuple(name for name, _ in ordered)
        self._release = MultiLevelRelease(
            database.size, [alpha for _, alpha in ordered]
        )
        self._alphas = dict(ordered)

    @property
    def tier_names(self) -> tuple[str, ...]:
        """Tier names, least private first."""
        return self._tier_names

    @property
    def chain(self) -> MultiLevelRelease:
        """The underlying Algorithm 1 release chain."""
        return self._release

    def publish(self, query: CountQuery, rng=None) -> TieredRelease:
        """Evaluate the query once and release every tier's value."""
        rng = ensure_generator(rng)
        true_value = self._engine.answer_exact(query)
        values = self._release.release(true_value, rng)
        return TieredRelease(
            query_description=query.describe(),
            results=dict(zip(self._tier_names, values)),
            alphas=dict(self._alphas),
        )

    def verify_collusion_resistance(self):
        """Run Lemma 4's check over every coalition of tiers."""
        return self._release.verify_all_coalitions()
