"""Single-level publication of count-query results.

The non-interactive setting the paper targets (Section 1): a statistic is
computed once and *published* — to mass media, a report, the Internet —
for consumers whose loss functions and side information are unknown at
release time. By Theorem 1 the right mechanism to deploy is geometric;
the publisher does exactly that and records everything an auditor needs.

The batch hot path draws from precomputed per-row alias tables
(:mod:`repro.sampling.alias`): O(1) per sample, one vectorized tick per
batch, distributed identically to the per-release path because the
range-restricted geometric rows fold the unbounded noise tails into the
cap outputs exactly (Definition 4). A publisher can also be constructed
from a compiled :class:`~repro.release.artifacts.MechanismArtifact`
(:meth:`Publisher.from_artifact`), in which case the kernel and tables
come straight from the verified artifact and no mechanism is ever
rebuilt in the serving process.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..core.geometric import GeometricMechanism
from ..core.mechanism import Mechanism
from ..db.database import Database
from ..db.engine import QueryEngine
from ..db.queries import CountQuery
from ..exceptions import ValidationError
from ..sampling.alias import RowAliasSampler, cached_geometric_sampler
from ..sampling.rng import ensure_generator

__all__ = ["PublishedStatistic", "Publisher"]


@dataclass(frozen=True)
class PublishedStatistic:
    """One published aggregate statistic.

    Attributes
    ----------
    query_description:
        Human-readable description of what was counted.
    value:
        The published (perturbed) count.
    alpha:
        Privacy level of the release.
    n:
        Database size (the public result range is ``{0..n}``).
    """

    query_description: str
    value: int
    alpha: object
    n: int


class Publisher:
    """Publishes geometric-mechanism releases for one database.

    Single statistics go through :meth:`publish`; query batches should
    use :meth:`publish_batch`, which draws all noise via one vectorized
    alias-table gather while keeping each release distributed
    identically to :meth:`publish`.

    Parameters
    ----------
    database:
        The sensitive database.
    alpha:
        Default privacy level for releases.
    artifact:
        Optional compiled :class:`~repro.release.artifacts.MechanismArtifact`
        to deploy instead of constructing the mechanism here; its ``n``
        must match the database and its ``alpha`` overrides the
        ``alpha`` argument. See :meth:`from_artifact`.
    """

    def __init__(self, database: Database, alpha, *, artifact=None) -> None:
        if not isinstance(database, Database):
            raise ValidationError(
                f"expected a Database, got {type(database).__name__}"
            )
        self._engine = QueryEngine(database)
        if artifact is not None:
            if artifact.n != database.size:
                raise ValidationError(
                    f"artifact is compiled for n={artifact.n}, database "
                    f"has size {database.size}"
                )
            if alpha is not None and Fraction(alpha) != artifact.alpha:
                raise ValidationError(
                    f"artifact privacy level {artifact.alpha} does not "
                    f"match requested alpha {alpha}"
                )
            self.alpha = artifact.alpha
            self._mechanism = artifact.mechanism()
            self._sampler = artifact.sampler
        else:
            self.alpha = alpha
            self._mechanism = GeometricMechanism(database.size, alpha)
            self._sampler = cached_geometric_sampler(database.size, alpha)

    @classmethod
    def from_artifact(cls, database: Database, artifact) -> "Publisher":
        """Deploy a precompiled artifact: the zero-solve publish path.

        The serving process never touches an LP solver or even the
        mechanism constructor — kernel and alias tables come from the
        (verifiable) artifact as compiled by ``repro compile``.
        """
        return cls(database, None, artifact=artifact)

    @property
    def n(self) -> int:
        """Database size / maximum count."""
        return self._engine.database.size

    @property
    def mechanism(self) -> Mechanism:
        """The deployed geometric mechanism."""
        return self._mechanism

    @property
    def sampler(self) -> RowAliasSampler:
        """The deployed per-row alias sampler (the batch hot path)."""
        return self._sampler

    def publish(self, query: CountQuery, rng=None) -> PublishedStatistic:
        """Evaluate ``query`` and release one geometric perturbation.

        Draws through the same precomputed alias tables as
        :meth:`publish_batch` (:meth:`RowAliasSampler.sample_one`): one
        uniform, two lookups, one compare — no per-release noise
        sampling or clipping, and no distributional drift between the
        scalar and batch paths, since both walk identical tables whose
        rows carry the folded tail mass of Definition 4 exactly.
        """
        if not isinstance(query, CountQuery):
            raise ValidationError(
                f"expected CountQuery, got {type(query).__name__}"
            )
        rng = ensure_generator(rng)
        true_value = self._engine.answer_exact(query)
        value = self._sampler.sample_one(true_value, rng)
        return PublishedStatistic(
            query_description=query.describe(),
            value=value,
            alpha=self.alpha,
            n=self.n,
        )

    def publish_many(
        self, query: CountQuery, count: int, rng=None
    ) -> list[PublishedStatistic]:
        """Release ``count`` independent perturbations of one query.

        Intended for calibration experiments only — publishing many
        independent releases of the same statistic composes privacy loss
        (each release is a fresh alpha-DP computation) and is exactly the
        collusion weakness Algorithm 1 exists to avoid.
        """
        if count < 0:
            raise ValidationError(f"count must be >= 0, got {count}")
        rng = ensure_generator(rng)
        return [self.publish(query, rng) for _ in range(count)]

    def publish_batch(
        self, queries: Iterable[CountQuery], rng=None
    ) -> list[PublishedStatistic]:
        """Release one geometric perturbation per query, vectorized.

        The fast path for heavy traffic: evaluates every query exactly,
        then draws every release in one alias-table gather — O(1) work
        per sample (one uniform, two lookups, one compare; see
        :class:`repro.sampling.alias.RowAliasSampler`). Each row's table
        encodes the range-restricted geometric distribution exactly, cap
        outputs carrying the folded tail mass of Definition 4, so each
        release is distributed identically to :meth:`publish`. With a
        seeded ``rng`` the batch is reproducible: the same seed and
        query batch yield identical releases.

        Like :meth:`publish_many`, releasing many statistics composes
        privacy loss; the per-release guarantee is alpha-DP.
        """
        queries = list(queries)
        for query in queries:
            if not isinstance(query, CountQuery):
                raise ValidationError(
                    f"expected CountQuery, got {type(query).__name__}"
                )
        if not queries:
            return []
        rng = ensure_generator(rng)
        true_values = np.array(
            [self._engine.answer_exact(query) for query in queries],
            dtype=np.int64,
        )
        published = self._sampler.sample(true_values, rng)
        return [
            PublishedStatistic(
                query_description=query.describe(),
                value=int(value),
                alpha=self.alpha,
                n=self.n,
            )
            for query, value in zip(queries, published)
        ]
