"""Single-level publication of count-query results.

The non-interactive setting the paper targets (Section 1): a statistic is
computed once and *published* — to mass media, a report, the Internet —
for consumers whose loss functions and side information are unknown at
release time. By Theorem 1 the right mechanism to deploy is geometric;
the publisher does exactly that and records everything an auditor needs.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..core.geometric import GeometricMechanism
from ..core.mechanism import Mechanism
from ..db.database import Database
from ..db.engine import QueryEngine
from ..db.queries import CountQuery
from ..exceptions import ValidationError
from ..sampling.geometric import sample_two_sided_geometric
from ..sampling.rng import ensure_generator

__all__ = ["PublishedStatistic", "Publisher"]


@dataclass(frozen=True)
class PublishedStatistic:
    """One published aggregate statistic.

    Attributes
    ----------
    query_description:
        Human-readable description of what was counted.
    value:
        The published (perturbed) count.
    alpha:
        Privacy level of the release.
    n:
        Database size (the public result range is ``{0..n}``).
    """

    query_description: str
    value: int
    alpha: object
    n: int


class Publisher:
    """Publishes geometric-mechanism releases for one database.

    Single statistics go through :meth:`publish`; query batches should
    use :meth:`publish_batch`, which draws all noise in one vectorized
    shot while keeping each release distributed identically to
    :meth:`publish`.

    Parameters
    ----------
    database:
        The sensitive database.
    alpha:
        Default privacy level for releases.
    """

    def __init__(self, database: Database, alpha) -> None:
        if not isinstance(database, Database):
            raise ValidationError(
                f"expected a Database, got {type(database).__name__}"
            )
        self._engine = QueryEngine(database)
        self.alpha = alpha
        self._mechanism = GeometricMechanism(database.size, alpha)

    @property
    def n(self) -> int:
        """Database size / maximum count."""
        return self._engine.database.size

    @property
    def mechanism(self) -> Mechanism:
        """The deployed geometric mechanism."""
        return self._mechanism

    def publish(self, query: CountQuery, rng=None) -> PublishedStatistic:
        """Evaluate ``query`` and release one geometric perturbation."""
        rng = ensure_generator(rng)
        result = self._engine.answer_private(
            query, mechanism=self._mechanism, rng=rng
        )
        return PublishedStatistic(
            query_description=query.describe(),
            value=result.value,
            alpha=self.alpha,
            n=self.n,
        )

    def publish_many(
        self, query: CountQuery, count: int, rng=None
    ) -> list[PublishedStatistic]:
        """Release ``count`` independent perturbations of one query.

        Intended for calibration experiments only — publishing many
        independent releases of the same statistic composes privacy loss
        (each release is a fresh alpha-DP computation) and is exactly the
        collusion weakness Algorithm 1 exists to avoid.
        """
        if count < 0:
            raise ValidationError(f"count must be >= 0, got {count}")
        rng = ensure_generator(rng)
        return [self.publish(query, rng) for _ in range(count)]

    def publish_batch(
        self, queries: Iterable[CountQuery], rng=None
    ) -> list[PublishedStatistic]:
        """Release one geometric perturbation per query, vectorized.

        The fast path for heavy traffic: evaluates every query exactly,
        then draws *all* two-sided geometric noise in one
        ``rng.geometric`` pair (Definition 1's noise is the difference of
        two one-sided geometrics) and clamps to the range ``{0..n}`` with
        ``np.clip`` — exactly the tail-collapsing projection of
        Definition 4, so each release is distributed identically to
        :meth:`publish`. With a seeded ``rng`` the batch is reproducible:
        the same seed and query batch yield identical releases.

        Like :meth:`publish_many`, releasing many statistics composes
        privacy loss; the per-release guarantee is alpha-DP.
        """
        queries = list(queries)
        for query in queries:
            if not isinstance(query, CountQuery):
                raise ValidationError(
                    f"expected CountQuery, got {type(query).__name__}"
                )
        if not queries:
            return []
        rng = ensure_generator(rng)
        true_values = np.array(
            [self._engine.answer_exact(query) for query in queries],
            dtype=np.int64,
        )
        noise = sample_two_sided_geometric(
            float(self.alpha), rng, size=len(queries)
        )
        published = np.clip(true_values + noise, 0, self.n)
        return [
            PublishedStatistic(
                query_description=query.describe(),
                value=int(value),
                alpha=self.alpha,
                n=self.n,
            )
            for query, value in zip(queries, published)
        ]
