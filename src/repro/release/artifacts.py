"""Compiled mechanism artifacts: the deployable unit of the pipeline.

The solver stack (PRs 1/2/5) made Table-1-style optimal-mechanism solves
a low-milliseconds affair; what a *serving* process needs is to never
run a solver at all. A :class:`MechanismArtifact` packages everything a
consumer process touches at publish time:

* the **exact rational kernel** — the mechanism matrix over ``Fraction``;
* the **float fast-path matrix** (derived, ``kernel.astype(float)``);
* per-row **alias sampling tables** with exact rational thresholds
  (:class:`repro.sampling.alias.AliasTable`), so publishing is O(1)
  lookups per draw. The range-restricted geometric rows already fold
  the unbounded two-sided-geometric tail mass into the cap outputs
  ``{0, n}`` exactly, so no tail is ever truncated;
* the **optimality certificate** — for bespoke LP-solved mechanisms, the
  exact strong-duality dual vector of
  :func:`repro.solvers.hybrid.find_certificate`, replayable offline by
  :func:`repro.solvers.hybrid.replay_certificate` with *zero* LP solves.

Artifacts are versioned and content-addressed: the store file is keyed
by the SHA-256 of the canonical spec (so consumers look up by
``(kind, n, alpha, loss, side)``), and the payload carries a SHA-256
digest of its own canonical content, so corruption and tampering are
detected on load and by ``repro cache verify``. Serialization uses the
same lossless regime-tagged number codec as
:class:`repro.solvers.cache.SolveCache` (``Fraction`` as ``p/q``),
writes are atomic ``os.replace``, and a bounded in-memory layer (same
insertion-ordered eviction policy as
:func:`repro.losses.base.cached_loss_matrix`) sits above the directory.

Lifecycle (see ``repro compile`` / ``repro cache verify`` /
``repro cache gc`` in :mod:`repro.cli`)::

    compile  — pre-build artifacts over an (n, alpha, loss) grid,
               reusing the persistent SolveCache for any LP work;
    verify   — replay every stored certificate and re-derive every
               sampling table's pmf against the exact law;
    publish  — Publisher.from_artifact: zero-solve, alias-table
               sampling at line rate.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
import weakref
from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path

try:  # POSIX advisory locking; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

import numpy as np

from ..exceptions import SolverError, ValidationError
from ..losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss
from ..losses.base import cached_loss_matrix
from ..sampling.alias import AliasTable, RowAliasSampler
from ..sampling.geometric import two_sided_geometric_pmf
from ..solvers.cache import decode_number, encode_number, gc_directory
from ..solvers.hybrid import find_certificate, replay_certificate
from ..validation import as_fraction, check_alpha, check_result_range

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ARTIFACT_DIR_ENV",
    "ArtifactSpec",
    "MechanismArtifact",
    "ArtifactStore",
    "ArtifactVerification",
    "compile_artifact",
    "verify_artifact",
    "named_loss",
    "LOSS_NAMES",
    "default_artifact_store",
    "set_default_artifact_store",
    "resolve_artifact_store",
    "clear_artifact_memory",
]

#: Bump when the payload shape changes; readers reject other versions.
ARTIFACT_FORMAT_VERSION = 1

#: Environment variable enabling the process-wide default store.
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"

#: Artifacts kept in each store's in-memory layer (they are O(n^2)
#: objects each, so the bound is tighter than SolveCache's).
_MEMORY_ENTRIES = 32

#: Named losses an artifact spec may reference. Artifacts must be
#: rebuildable from their spec alone, so only registry losses — not
#: arbitrary callables — are compilable.
LOSS_NAMES = {
    "absolute": AbsoluteLoss,
    "squared": SquaredLoss,
    "zero-one": ZeroOneLoss,
}


def named_loss(name: str):
    """Instantiate a registry loss by its canonical name."""
    try:
        return LOSS_NAMES[name]()
    except KeyError:
        raise ValidationError(
            f"unknown loss name {name!r}; compilable losses: "
            f"{sorted(LOSS_NAMES)}"
        ) from None


@dataclass(frozen=True)
class ArtifactSpec:
    """What an artifact *is for* — the lookup key of the store.

    Attributes
    ----------
    kind:
        ``"geometric"`` (the universally optimal deployment, Theorem 1)
        or ``"optimal"`` (a bespoke Section 2.5 LP solution).
    n:
        Maximum query result.
    alpha:
        Privacy level (always exact — artifacts are the trusted tier).
    loss:
        Registry loss name for ``kind="optimal"``; ``None`` otherwise.
    side:
        Sorted admissible results for ``kind="optimal"`` (``None`` means
        the full range); always ``None`` for geometric artifacts.
    """

    kind: str
    n: int
    alpha: Fraction
    loss: str | None = None
    side: tuple[int, ...] | None = None

    def __post_init__(self):
        if self.kind not in ("geometric", "optimal"):
            raise ValidationError(
                f"artifact kind must be 'geometric' or 'optimal', "
                f"got {self.kind!r}"
            )
        check_result_range(self.n)
        object.__setattr__(self, "alpha", as_fraction(self.alpha, name="alpha"))
        check_alpha(self.alpha)
        if self.kind == "optimal":
            if self.loss not in LOSS_NAMES:
                raise ValidationError(
                    f"optimal artifacts need a registry loss name, got "
                    f"{self.loss!r}"
                )
            if self.side is not None:
                members = tuple(sorted(int(i) for i in self.side))
                if not members or any(
                    not 0 <= i <= self.n for i in members
                ):
                    raise ValidationError(
                        f"side information must be a non-empty subset of "
                        f"[0, {self.n}]"
                    )
                object.__setattr__(self, "side", members)
        else:
            if self.loss is not None or self.side is not None:
                raise ValidationError(
                    "geometric artifacts take no loss/side information"
                )

    def members(self) -> list[int]:
        """Admissible results as a concrete list."""
        if self.side is None:
            return list(range(self.n + 1))
        return list(self.side)

    def canonical(self) -> str:
        """Canonical text form (the content under the spec key)."""
        side = (
            "all" if self.side is None else ",".join(map(str, self.side))
        )
        return (
            f"v{ARTIFACT_FORMAT_VERSION} {self.kind} n={self.n} "
            f"alpha={encode_number(self.alpha)} loss={self.loss or '-'} "
            f"side={side}"
        )

    def key(self) -> str:
        """SHA-256 content key of the spec."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "n": self.n,
            "alpha": encode_number(self.alpha),
            "loss": self.loss,
            "side": None if self.side is None else list(self.side),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ArtifactSpec":
        return cls(
            kind=payload["kind"],
            n=int(payload["n"]),
            alpha=decode_number(payload["alpha"]),
            loss=payload.get("loss"),
            side=(
                None
                if payload.get("side") is None
                else tuple(int(i) for i in payload["side"])
            ),
        )


def _payload_digest(payload: dict) -> str:
    """SHA-256 of the canonical payload text (sans the digest field)."""
    content = {k: v for k, v in payload.items() if k != "digest"}
    text = json.dumps(content, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class MechanismArtifact:
    """A compiled, deployable mechanism (see module docstring).

    Build with :func:`compile_artifact` or load from an
    :class:`ArtifactStore`; not constructed by hand.
    """

    __slots__ = (
        "spec",
        "kernel",
        "loss_value",
        "certificate",
        "_sampler",
        "_float_matrix",
    )

    def __init__(
        self, spec: ArtifactSpec, kernel: np.ndarray, *,
        loss_value=None, certificate=None, sampler=None,
    ) -> None:
        self.spec = spec
        size = spec.n + 1
        if kernel.shape != (size, size):
            raise ValidationError(
                f"kernel shape {kernel.shape} does not match n={spec.n}"
            )
        self.kernel = kernel
        self.loss_value = loss_value
        self.certificate = certificate
        if sampler is None:
            sampler = RowAliasSampler.from_matrix(kernel)
        self._sampler = sampler
        self._float_matrix = None

    # -- derived views -------------------------------------------------
    @property
    def n(self) -> int:
        return self.spec.n

    @property
    def alpha(self) -> Fraction:
        return self.spec.alpha

    @property
    def sampler(self) -> RowAliasSampler:
        """The O(1) per-draw alias sampler over the kernel rows."""
        return self._sampler

    @property
    def float_matrix(self) -> np.ndarray:
        """Float64 fast-path view of the kernel (derived, cached)."""
        if self._float_matrix is None:
            matrix = self.kernel.astype(float)
            matrix.setflags(write=False)
            self._float_matrix = matrix
        return self._float_matrix

    def mechanism(self):
        """The kernel wrapped as a :class:`repro.core.mechanism.Mechanism`."""
        from ..core.mechanism import Mechanism  # deferred: avoids cycle

        return Mechanism(
            self.kernel,
            name=f"artifact:{self.spec.kind}(n={self.n}, alpha={self.alpha})",
            validate=False,
        )

    def key(self) -> str:
        return self.spec.key()

    # -- serialization -------------------------------------------------
    def to_payload(self) -> dict:
        payload = {
            "version": ARTIFACT_FORMAT_VERSION,
            "spec": self.spec.to_json(),
            "kernel": [
                [encode_number(cell) for cell in row] for row in self.kernel
            ],
            "tables": {
                "thresholds": [
                    [encode_number(t) for t in table.exact_thresholds]
                    for table in self._sampler.tables
                ],
                "alias": [
                    [int(a) for a in table.alias]
                    for table in self._sampler.tables
                ],
            },
            "loss_value": (
                None if self.loss_value is None
                else encode_number(self.loss_value)
            ),
            "certificate": (
                None if self.certificate is None
                else {
                    "objective": encode_number(
                        self.certificate["objective"]
                    ),
                    "duals": [
                        [int(row), encode_number(value)]
                        for row, value in sorted(
                            self.certificate["duals"].items()
                        )
                    ],
                }
            ),
        }
        payload["digest"] = _payload_digest(payload)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "MechanismArtifact":
        """Decode a payload; raises :class:`ValidationError` when damaged."""
        if not isinstance(payload, dict):
            raise ValidationError("artifact payload must be a JSON object")
        version = payload.get("version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise ValidationError(
                f"artifact format version {version!r} is not supported "
                f"(expected {ARTIFACT_FORMAT_VERSION})"
            )
        digest = payload.get("digest")
        if digest != _payload_digest(payload):
            raise ValidationError(
                "artifact digest mismatch: content is corrupted"
            )
        try:
            spec = ArtifactSpec.from_json(payload["spec"])
            size = spec.n + 1
            kernel = np.empty((size, size), dtype=object)
            rows = payload["kernel"]
            if len(rows) != size:
                raise ValidationError(
                    f"kernel has {len(rows)} rows, expected {size}"
                )
            for i, row in enumerate(rows):
                if len(row) != size:
                    raise ValidationError(
                        f"kernel row {i} has {len(row)} cells"
                    )
                for j, cell in enumerate(row):
                    kernel[i, j] = decode_number(cell)
            tables = [
                AliasTable.from_parts(
                    [decode_number(t) for t in thresholds], alias
                )
                for thresholds, alias in zip(
                    payload["tables"]["thresholds"],
                    payload["tables"]["alias"],
                )
            ]
            sampler = RowAliasSampler(tables)
            loss_value = (
                None if payload.get("loss_value") is None
                else decode_number(payload["loss_value"])
            )
            certificate = None
            if payload.get("certificate") is not None:
                certificate = {
                    "objective": decode_number(
                        payload["certificate"]["objective"]
                    ),
                    "duals": {
                        int(row): decode_number(value)
                        for row, value in payload["certificate"]["duals"]
                    },
                }
        except (KeyError, TypeError, IndexError) as err:
            raise ValidationError(
                f"artifact payload is structurally damaged: {err}"
            ) from None
        return cls(
            spec, kernel,
            loss_value=loss_value, certificate=certificate, sampler=sampler,
        )

    def __repr__(self) -> str:
        return (
            f"<MechanismArtifact {self.spec.kind} n={self.n} "
            f"alpha={self.alpha} loss={self.spec.loss}>"
        )


def compile_artifact(
    kind: str,
    n: int,
    alpha,
    *,
    loss: str | None = None,
    side=None,
    solve_cache=None,
) -> MechanismArtifact:
    """Compile a deployable artifact from scratch.

    ``kind="geometric"`` needs no LP at all: the exact kernel is
    ``G_{n,alpha}`` and its optimality for *every* consumer is
    Theorem 1 (re-checked at verify time against the exact pmf law).
    ``kind="optimal"`` solves the Section 2.5 LP once (through the
    persistent ``solve_cache`` when given, so re-compiles are free) and
    then extracts a strong-duality certificate that ``repro cache
    verify`` can replay forever without a solver.
    """
    from ..core.geometric import geometric_matrix  # deferred: avoids cycle

    spec = ArtifactSpec(
        kind=kind,
        n=n,
        alpha=as_fraction(alpha, name="alpha"),
        loss=loss,
        side=None if side is None else tuple(sorted(int(i) for i in side)),
    )
    if spec.kind == "geometric":
        kernel = geometric_matrix(spec.n, spec.alpha)
        return MechanismArtifact(spec, kernel)

    from ..core.optimal import build_optimal_lp, optimal_mechanism

    result = optimal_mechanism(
        spec.n,
        spec.alpha,
        named_loss(spec.loss),
        spec.side,
        exact=True,
        solve_cache=solve_cache,
    )
    kernel = result.mechanism.matrix
    table = cached_loss_matrix(named_loss(spec.loss), spec.n)
    program, _ = build_optimal_lp(
        spec.n, spec.alpha, table, spec.members()
    )
    values = list(kernel.ravel()) + [result.loss]
    found = find_certificate(program, values)
    if found is None:
        raise SolverError(
            f"could not extract an optimality certificate for "
            f"{spec.canonical()}; refusing to compile an unprovable "
            f"artifact"
        )
    objective, duals = found
    return MechanismArtifact(
        spec,
        kernel,
        loss_value=result.loss,
        certificate={"objective": objective, "duals": duals},
    )


@dataclass(frozen=True)
class ArtifactVerification:
    """Outcome of replaying one artifact's proofs.

    ``checks`` lists every check that ran; ``failures`` the subset that
    failed (empty iff ``ok``).
    """

    key: str
    kind: str
    ok: bool
    checks: tuple[str, ...] = ()
    failures: tuple[str, ...] = ()
    detail: str = ""


def _verify_geometric_kernel(artifact: MechanismArtifact) -> list[str]:
    """Exact pmf-law agreement for ``G_{n,alpha}``; returns failures.

    Independent re-derivation from Definition 1/4 — *not* a comparison
    against :func:`geometric_matrix`: interior cells must equal
    ``two_sided_geometric_pmf(alpha, r - i)`` exactly, and the cap cells
    ``{0, n}`` must carry exactly the interior mass plus the folded
    unbounded tail ``alpha^{|r-i|+1}/(1+alpha) * ...`` — closed form
    ``alpha^{|r-i|} / (1+alpha)`` — so tail-cap mass accounting is
    checked bit-for-bit.
    """
    failures = []
    n, alpha = artifact.n, artifact.alpha
    kernel = artifact.kernel
    for i in range(n + 1):
        for r in range(n + 1):
            distance = abs(r - i)
            if r in (0, n):
                expected = alpha**distance / (1 + alpha)
            else:
                expected = two_sided_geometric_pmf(alpha, r - i)
            if kernel[i, r] != expected:
                failures.append(
                    f"kernel[{i},{r}] != exact geometric law "
                    f"({kernel[i, r]} vs {expected})"
                )
                return failures  # one witness is enough
    return failures


def _verify_float_slice(artifact: MechanismArtifact) -> list[str]:
    """Audit-replay slice: float fast path vs the vectorized pmf."""
    failures = []
    n, alpha = artifact.n, artifact.alpha
    floats = artifact.float_matrix
    for i in range(n + 1):
        interior = np.arange(1, n)
        if interior.size == 0:
            continue
        expected = two_sided_geometric_pmf(float(alpha), interior - i)
        if not np.allclose(floats[i, 1:n], expected, rtol=1e-12, atol=0):
            failures.append(
                f"float fast-path row {i} diverges from the vectorized pmf"
            )
            return failures
    return failures


def verify_artifact(artifact: MechanismArtifact) -> ArtifactVerification:
    """Replay every proof an artifact carries; zero LP solves.

    * every kind: row sums of the kernel are exactly 1; each alias
      table's exact cell probabilities reconstruct its kernel row
      bit-for-bit (so the sampler provably samples the kernel);
    * ``geometric``: the kernel equals the exact two-sided-geometric
      law with tail mass folded into the caps (Definition 4), and the
      float fast path matches the vectorized pmf on interior slices;
    * ``optimal``: the Section 2.5 LP is *rebuilt* (construction only —
      no solver) and the stored strong-duality certificate is replayed
      by :func:`repro.solvers.hybrid.replay_certificate`, proving the
      stored kernel optimal with the stored loss.
    """
    t0 = time.perf_counter()
    report = _verify_artifact(artifact)
    _observe_seconds(
        "repro_artifact_verify_seconds",
        "Load/startup artifact verification time (certificate replay).",
        time.perf_counter() - t0,
    )
    return report


def _observe_seconds(name: str, help: str, seconds: float) -> None:
    from ..obs.metrics import default_registry

    default_registry().histogram(name, help).observe(seconds)


def _verify_artifact(artifact: MechanismArtifact) -> ArtifactVerification:
    checks: list[str] = []
    failures: list[str] = []
    spec = artifact.spec

    checks.append("row-stochastic")
    for i in range(artifact.n + 1):
        if sum(artifact.kernel[i]) != 1:
            failures.append(f"kernel row {i} does not sum to 1")
            break

    checks.append("alias-tables-exact")
    if not artifact.sampler.is_exact():
        failures.append("sampler is missing exact thresholds")
    else:
        for i, table in enumerate(artifact.sampler.tables):
            if table.cell_probabilities() != list(artifact.kernel[i]):
                failures.append(
                    f"alias table row {i} does not reconstruct the kernel "
                    f"row"
                )
                break

    if spec.kind == "geometric":
        checks.append("geometric-pmf-law")
        failures.extend(_verify_geometric_kernel(artifact))
        checks.append("float-pmf-slice")
        failures.extend(_verify_float_slice(artifact))
    else:
        checks.append("certificate-replay")
        if artifact.certificate is None or artifact.loss_value is None:
            failures.append("optimal artifact is missing its certificate")
        else:
            from ..core.optimal import build_optimal_lp  # deferred

            table = cached_loss_matrix(named_loss(spec.loss), spec.n)
            program, _ = build_optimal_lp(
                spec.n, spec.alpha, table, spec.members()
            )
            values = list(artifact.kernel.ravel()) + [artifact.loss_value]
            objective = replay_certificate(
                program, values, artifact.certificate["duals"]
            )
            if objective is None:
                failures.append("certificate replay failed")
            elif objective != artifact.certificate["objective"]:
                failures.append(
                    "certified objective disagrees with the stored one"
                )
            elif objective != artifact.loss_value:
                failures.append(
                    "certified objective disagrees with the stored loss"
                )

    return ArtifactVerification(
        key=artifact.key(),
        kind=spec.kind,
        ok=not failures,
        checks=tuple(checks),
        failures=tuple(failures),
    )


@contextlib.contextmanager
def _advisory_lock(path: Path):
    """Hold an exclusive advisory ``flock`` on ``path``.

    Cross-process (each holder opens its own descriptor) and blocking;
    degrades to a no-op where ``fcntl`` does not exist, keeping the
    store usable — just without cross-process write serialization — on
    non-POSIX platforms.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a+") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


#: Every live store, so :func:`repro.clear_caches` can drop all
#: in-memory artifact layers without holding stores alive.
_LIVE_STORES: "weakref.WeakSet[ArtifactStore]" = weakref.WeakSet()


def clear_artifact_memory() -> None:
    """Drop the in-memory layer of every live :class:`ArtifactStore`."""
    for store in list(_LIVE_STORES):
        store.clear_memory()


class ArtifactStore:
    """Directory-backed, spec-addressed store of compiled artifacts.

    Mirrors :class:`repro.solvers.cache.SolveCache`: two-level fan-out
    on the spec key, atomic writes, a bounded in-memory layer, and
    ``stats`` counters. Loading validates version and content digest;
    damaged entries behave as misses on :meth:`get` and are reported by
    :meth:`verify_all`.

    Writes and GC take a store-wide advisory file lock (:meth:`lock`),
    and :meth:`get_or_compile` holds a per-spec lock across its
    miss-compile-store window, re-checking the directory once inside —
    so N server workers racing to warm the same spec perform **one**
    compile between them instead of N, and eviction never interleaves
    with a write. Reads stay lock-free: entries are content-addressed
    and replaced atomically, so a reader sees either the old complete
    entry, the new complete entry, or a miss.
    """

    def __init__(self, path) -> None:
        self.path = Path(path).expanduser()
        self._memory: dict[str, MechanismArtifact] = {}
        self.stats = {"hits": 0, "misses": 0, "stores": 0, "compiles": 0}
        _LIVE_STORES.add(self)

    def _entry_path(self, key: str) -> Path:
        return self.path / key[:2] / f"{key}.json"

    @staticmethod
    def _count(op: str) -> None:
        # Mirror the per-instance stats into the process-default
        # registry so a serving scrape covers artifact-store behaviour.
        from ..obs.metrics import default_registry

        default_registry().counter(
            "repro_artifact_store_total",
            "Artifact-store operations, by op.",
            labels=("op",),
        ).labels(op).inc()

    # -- lookup --------------------------------------------------------
    def get(self, spec: ArtifactSpec) -> MechanismArtifact | None:
        """Return the stored artifact for ``spec``, or ``None``."""
        key = spec.key()
        artifact = self._memory.get(key)
        if artifact is None:
            artifact = self._load(key)
            if artifact is not None and artifact.spec != spec:
                artifact = None  # key collision or tampered spec
            if artifact is not None:
                self._remember(key, artifact)
        if artifact is None:
            self.stats["misses"] += 1
            self._count("miss")
            return None
        self.stats["hits"] += 1
        self._count("hit")
        return artifact

    def get_or_compile(
        self, spec: ArtifactSpec, *, solve_cache=None
    ) -> MechanismArtifact:
        """Load ``spec``'s artifact, compiling and storing on a miss.

        The miss path is compile-once across workers: a per-spec
        advisory lock is held while compiling, and the directory is
        re-checked after acquiring it, so a racer that lost the lock
        race loads the winner's entry instead of re-solving.
        """
        artifact = self.get(spec)
        if artifact is None:
            key = spec.key()
            with self.lock(key):
                artifact = self._load(key)
                if artifact is not None and artifact.spec != spec:
                    artifact = None
                if artifact is not None:
                    self._remember(key, artifact)
                else:
                    artifact = compile_artifact(
                        spec.kind,
                        spec.n,
                        spec.alpha,
                        loss=spec.loss,
                        side=spec.side,
                        solve_cache=solve_cache,
                    )
                    self.put(artifact)
                    self.stats["compiles"] += 1
                    self._count("compile")
        return artifact

    # -- locking -------------------------------------------------------
    def lock(self, name: str = "store"):
        """Exclusive cross-process advisory lock scoped to this store.

        ``name`` picks the lock file: the default is the store-wide
        write/GC lock; :meth:`get_or_compile` passes the spec key for a
        per-spec compile lock. Lock files live under ``.locks/`` inside
        the store directory and are never GC'd (they are empty).
        """
        return _advisory_lock(self.path / ".locks" / f"{name}.lock")

    # -- store ---------------------------------------------------------
    def put(self, artifact: MechanismArtifact) -> None:
        """Persist ``artifact`` (atomic replace, under the store lock)."""
        key = artifact.key()
        payload = artifact.to_payload()
        entry = self._entry_path(key)
        with self.lock():
            entry.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                mode="w",
                dir=entry.parent,
                prefix=f".{key[:8]}-",
                suffix=".tmp",
                delete=False,
            )
            try:
                with handle:
                    json.dump(payload, handle)
                    # Durable before visible: fsync the bytes, replace,
                    # then fsync the directory entry — a crash right
                    # after `put` returns must never leave a truncated
                    # artifact where load-time verification expected a
                    # complete one.
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(handle.name, entry)
                try:
                    fd = os.open(entry.parent, os.O_RDONLY)
                except OSError:  # pragma: no cover - platform-dependent
                    fd = -1
                if fd >= 0:
                    try:
                        os.fsync(fd)
                    finally:
                        os.close(fd)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        self._remember(key, artifact)
        self.stats["stores"] += 1
        self._count("store")

    # -- maintenance ---------------------------------------------------
    def keys(self) -> list[str]:
        """Spec keys of every entry on disk (sorted)."""
        if not self.path.is_dir():
            return []
        return sorted(entry.stem for entry in self.path.rglob("*.json"))

    def load_key(self, key: str) -> MechanismArtifact | None:
        """Load the entry stored under ``key``; ``None`` if missing/damaged.

        Unlike :meth:`get` this needs no spec — the serving layer's
        load-everything startup path iterates :meth:`keys` with it.
        """
        return self._load(key)

    def verify_all(self) -> list[ArtifactVerification]:
        """Replay proofs for every on-disk entry (zero LP solves).

        Structurally damaged entries (unparseable JSON, bad digest,
        unsupported version) are reported as failed verifications
        rather than skipped.
        """
        reports = []
        for key in self.keys():
            entry = self._entry_path(key)
            try:
                payload = json.loads(entry.read_text())
                artifact = MechanismArtifact.from_payload(payload)
            except (OSError, ValueError, ValidationError) as err:
                reports.append(
                    ArtifactVerification(
                        key=key,
                        kind="?",
                        ok=False,
                        checks=("load",),
                        failures=(f"load failed: {err}",),
                    )
                )
                continue
            if artifact.key() != key:
                reports.append(
                    ArtifactVerification(
                        key=key,
                        kind=artifact.spec.kind,
                        ok=False,
                        checks=("load",),
                        failures=("entry filed under a foreign spec key",),
                    )
                )
                continue
            reports.append(verify_artifact(artifact))
        return reports

    def gc(
        self,
        *,
        max_entries: int | None = None,
        max_age_days: float | None = None,
    ) -> int:
        """Evict on-disk artifacts (see :func:`repro.solvers.cache.gc_directory`).

        Holds the store-wide advisory lock so eviction never interleaves
        with a concurrent worker's :meth:`put`.
        """
        with self.lock():
            removed = gc_directory(
                self.path, max_entries=max_entries, max_age_days=max_age_days
            )
        self._memory.clear()
        return removed

    def clear_memory(self) -> None:
        """Drop the in-memory layer (the directory is untouched)."""
        self._memory.clear()

    # -- internals -----------------------------------------------------
    def _load(self, key: str) -> MechanismArtifact | None:
        entry = self._entry_path(key)
        t0 = time.perf_counter()
        try:
            payload = json.loads(entry.read_text())
            artifact = MechanismArtifact.from_payload(payload)
        except (OSError, ValueError, ValidationError):
            return None
        _observe_seconds(
            "repro_artifact_load_seconds",
            "On-disk artifact load + decode time.",
            time.perf_counter() - t0,
        )
        return artifact

    def _remember(self, key: str, artifact: MechanismArtifact) -> None:
        if len(self._memory) >= _MEMORY_ENTRIES:
            self._memory.pop(next(iter(self._memory)))
        self._memory[key] = artifact

    def __repr__(self) -> str:
        return (
            f"<ArtifactStore {str(self.path)!r} "
            f"hits={self.stats['hits']} misses={self.stats['misses']} "
            f"stores={self.stats['stores']}>"
        )


#: Module default: unresolved sentinel until first use.
_UNSET = object()
_default_store = _UNSET


def default_artifact_store() -> ArtifactStore | None:
    """The process-wide default store (``REPRO_ARTIFACT_DIR``), or ``None``."""
    global _default_store
    if _default_store is _UNSET:
        directory = os.environ.get(ARTIFACT_DIR_ENV)
        _default_store = ArtifactStore(directory) if directory else None
    return _default_store


def set_default_artifact_store(store) -> None:
    """Install a process-wide default store (``None`` disables)."""
    global _default_store
    if store is None or isinstance(store, ArtifactStore):
        _default_store = store
    else:
        _default_store = ArtifactStore(store)


def resolve_artifact_store(store) -> ArtifactStore | None:
    """Normalize a ``store=`` argument (mirrors ``resolve_cache``)."""
    if store is None:
        return default_artifact_store()
    if store is False:
        return None
    if isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store)
