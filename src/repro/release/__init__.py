"""Publication layer: publishers, multi-level releases, privacy audits.

Where :mod:`repro.core` proves things about mechanism *matrices*, this
subpackage operates at deployment granularity: publishing results from
real databases, serving consumers at several trust levels (the paper's
government-report vs Internet-report scenario), auditing deployed
mechanisms empirically from samples, simulating collusion attacks
against naive multi-release schemes — and compiling mechanisms into
versioned, content-addressed, certificate-carrying artifacts
(:mod:`repro.release.artifacts`) so serving processes never touch a
solver.
"""

from .artifacts import (
    ArtifactSpec,
    ArtifactStore,
    ArtifactVerification,
    MechanismArtifact,
    compile_artifact,
    default_artifact_store,
    resolve_artifact_store,
    set_default_artifact_store,
    verify_artifact,
)
from .audit import AuditReport, empirical_alpha, empirical_mechanism_matrix
from .collusion import (
    AveragingAttackResult,
    averaging_attack,
    compare_release_strategies,
)
from .durable_ledger import (
    ChargeDecision,
    DurableLedger,
    LedgerCorruptionError,
    LedgerUnavailableError,
    MemoryLedgerBook,
    UserBudget,
    verify_ledger_dir,
)
from .ledger import (
    BudgetExceededError,
    ConcurrentPrivacyLedger,
    LedgerEntry,
    PrivacyLedger,
)
from .multilevel import MultiLevelPublisher, TieredRelease
from .publisher import PublishedStatistic, Publisher

__all__ = [
    "Publisher",
    "PublishedStatistic",
    "MultiLevelPublisher",
    "TieredRelease",
    "AuditReport",
    "empirical_alpha",
    "empirical_mechanism_matrix",
    "averaging_attack",
    "AveragingAttackResult",
    "compare_release_strategies",
    "PrivacyLedger",
    "ConcurrentPrivacyLedger",
    "LedgerEntry",
    "BudgetExceededError",
    "DurableLedger",
    "MemoryLedgerBook",
    "ChargeDecision",
    "UserBudget",
    "LedgerUnavailableError",
    "LedgerCorruptionError",
    "verify_ledger_dir",
    "ArtifactSpec",
    "ArtifactStore",
    "ArtifactVerification",
    "MechanismArtifact",
    "compile_artifact",
    "verify_artifact",
    "default_artifact_store",
    "set_default_artifact_store",
    "resolve_artifact_store",
]
