"""Lexicographic (two-stage) LP solves.

Lemma 5 of the paper refines optimality: among all mechanisms minimizing
the worst-case loss ``L``, pick one also minimizing the secondary
objective ``L'(x) = sum_{i,r} x[i,r] |i - r|`` under the total order
``(a, b) >= (c, d) iff a > c or (a = c and b >= d)``. Computationally
that is a two-stage solve: minimize ``L``; then add ``L <= L*`` as a
constraint and minimize ``L'``.

The second stage pins the primary objective to its exact optimum, which
makes the stage-2 polytope a (typically degenerate) optimal face. The
certify-first :class:`~repro.solvers.hybrid.HybridBackend` handles this
regime: its float stage solves the pinned program, the dual-guided basis
completion picks a certifiable basis on the face, and a failed
certificate merely falls back to the exact integer-tableau simplex — so
``slack=0`` stays the right choice for every exact backend.
"""

from __future__ import annotations

from ..exceptions import SolverError
from .base import LinearProgram, LPSolution

__all__ = ["solve_lexicographic"]


def solve_lexicographic(
    program: LinearProgram,
    secondary_terms,
    backend,
    *,
    slack=0,
    primary: LPSolution | None = None,
) -> tuple[LPSolution, LPSolution]:
    """Solve ``program``, then re-optimize ``secondary_terms`` at optimum.

    Parameters
    ----------
    program:
        The primary LP (its objective is the primary criterion).
    secondary_terms:
        Sparse term list for the secondary objective (same variable
        space).
    backend:
        Any solver backend (exact or scipy).
    slack:
        Extra allowance on the pinned primary objective; keep 0 for the
        exact backend, use ~1e-9 for the float backend to avoid
        numerically-empty optimal faces.
    primary:
        An already-solved primary optimum to pin against, skipping the
        stage-1 solve — e.g. the certified factor-space solution, which
        is far cheaper than a full solve of ``program``. The caller is
        responsible for it being a true optimum of ``program``.

    Returns
    -------
    (primary_solution, refined_solution)
    """
    if primary is None:
        primary = backend.solve(program)
    refined_program = program.copy()
    objective_terms = program.objective_terms
    if not objective_terms:
        raise SolverError("primary program has an empty objective")
    # Adding a float 0.0 to an exact Fraction would silently degrade it
    # to a float, so the slack is only applied when non-zero.
    pinned_rhs = primary.objective if slack == 0 else primary.objective + slack
    refined_program.add_le(objective_terms, pinned_rhs)
    refined_program.set_objective(secondary_terms)
    refined = backend.solve(refined_program)
    return primary, refined
