"""Linear-programming backends.

Both of the paper's optimization problems — the bespoke optimal mechanism
(Section 2.5) and the consumer's optimal interaction (Section 2.4.3) —
are linear programs. This subpackage provides:

* a backend-neutral problem description (:class:`LinearProgram`);
* a float backend on :func:`scipy.optimize.linprog` (HiGHS);
* an exact two-phase simplex with integer fraction-free (Bareiss-style)
  pivoting, so instances of any degeneracy reproduce the paper's exact
  fractions (Table 1);
* a certify-first hybrid backend (:class:`HybridBackend`) — the default
  exact solver — that reconstructs and exactly certifies the float
  optimum, falling back to the simplex only when certification fails;
  and
* a lexicographic two-stage solve used for the paper's ``(L, L')``
  refinement (Lemma 5);
* an exact primal/dual *candidate certificate*
  (:func:`certify_solution`) proving externally-produced solutions
  optimal (the factor-space pipeline's safety net); and
* a persistent, content-addressed cross-run solve cache
  (:class:`SolveCache`).
"""

from .base import (
    LinearProgram,
    LinearTerm,
    LPSolution,
    choose_backend,
)
from .cache import (
    SolveCache,
    canonical_key,
    default_cache,
    resolve_cache,
    set_default_cache,
)
from .hybrid import HybridBackend, certify_solution, reconstruct_vertex
from .lexicographic import solve_lexicographic
from .scipy_backend import ScipyBackend, has_direct_highs
from .simplex import ExactSimplexBackend

__all__ = [
    "LinearProgram",
    "LinearTerm",
    "LPSolution",
    "choose_backend",
    "ScipyBackend",
    "ExactSimplexBackend",
    "HybridBackend",
    "solve_lexicographic",
    "certify_solution",
    "reconstruct_vertex",
    "has_direct_highs",
    "SolveCache",
    "canonical_key",
    "default_cache",
    "resolve_cache",
    "set_default_cache",
]
