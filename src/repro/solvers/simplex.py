"""Exact two-phase simplex with integer fraction-free pivoting.

The paper's Table 1 reports an optimal mechanism with exact rational
entries. Reproducing those requires an LP solver that never rounds —
hence this from-scratch dense-tableau simplex with Bland's anti-cycling
pivot rule (guaranteeing termination despite degeneracy, which the
paper's LPs exhibit: optimal mechanisms sit on many tight privacy
constraints at once).

Arithmetic: instead of a tableau of :class:`~fractions.Fraction` entries
(whose every pivot pays a gcd normalization per cell), the tableau is a
matrix of plain Python ints plus one shared positive denominator
(Edmonds' integer pivoting). The pivot update

.. math::  t'_{ij} = (t_{rc} t_{ij} - t_{ic} t_{rj}) / d

divides exactly by the previous denominator ``d`` — every entry is, up
to sign, a minor of the original integer system (Bareiss-style exact
division) — so the hot loop is two multiplications, a subtraction, and
one exact integer division per cell, with no rational normalization.
Ratio tests and entering-column selection compare integers directly
because the shared denominator cancels.

The backend also accepts a *warm-start basis* (``initial_basis=``): the
certify-first hybrid backend hands over the basis it recovered from a
float solve, and when that basis can be pivoted in and is primal
feasible, phase 1 is skipped entirely.

Scope: intended for the paper-sized programs (hundreds of variables);
larger instances should go through
:class:`repro.solvers.hybrid.HybridBackend`, which only falls back here
when exact certification fails.
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm

from ..exceptions import (
    InfeasibleProgramError,
    SolverError,
    UnboundedProgramError,
)
from .base import LinearProgram, LPSolution, coerce_exact

__all__ = ["ExactSimplexBackend"]

_ZERO = Fraction(0)
_ONE = Fraction(1)


class _Tableau:
    """Dense integer simplex tableau with a shared denominator.

    ``rows`` holds integer ``[A | b]`` entries whose rational values are
    ``entry / den`` (``den > 0`` always); exactly one basis column per
    row carries value 1. ``objective`` holds the reduced-cost row scaled
    by ``den * obj_scale`` with the negated objective value in its last
    entry.
    """

    def __init__(
        self,
        rows: list[list[int]],
        basis: list[int],
        num_columns: int,
    ) -> None:
        self.rows = rows
        self.basis = basis
        self.num_columns = num_columns  # structural + auxiliary (no RHS)
        self.den = 1  # shared positive denominator of every row entry
        self.objective: list[int] = []
        self.obj_scale = 1  # objective entries = value * den * obj_scale

    def set_objective(self, costs: list[Fraction]) -> None:
        """Install reduced costs for ``costs`` against the current basis.

        The elimination runs once in rational arithmetic (it is per-phase,
        not per-pivot); the result is rescaled to integers so subsequent
        pivots stay in the fraction-free update.
        """
        den = self.den
        width = self.num_columns + 1
        reduced = [coerce_exact(c) for c in costs] + [_ZERO]
        for row_index, basic_var in enumerate(self.basis):
            coeff = reduced[basic_var]
            if coeff != 0:
                row = self.rows[row_index]
                for j in range(width):
                    if row[j]:
                        reduced[j] -= coeff * Fraction(row[j], den)
        # den * reduced is integral up to the lcm of the cost denominators
        # (Cramer: den * reduced_j = den*c_j - c_B adj(B) A_j).
        scale = 1
        for c in costs:
            scale = lcm(scale, c.denominator)
        self.obj_scale = scale
        objective: list[int] = []
        for value in reduced:
            scaled = value * den * scale
            if scaled.denominator != 1:
                raise SolverError(
                    "internal error: reduced-cost row is not integral "
                    f"at scale {scale} (denominator {scaled.denominator})"
                )
            objective.append(scaled.numerator)
        self.objective = objective

    def objective_value(self) -> Fraction:
        return Fraction(
            -self.objective[self.num_columns], self.den * self.obj_scale
        )

    def pivot(self, pivot_row: int, pivot_col: int) -> None:
        rows = self.rows
        den = self.den
        base = rows[pivot_row]
        pivot = base[pivot_col]
        if pivot == 0:
            raise SolverError("internal error: zero pivot")
        rescale = pivot != den  # zero-factor rows still change denominator
        for row_index, row in enumerate(rows):
            if row_index == pivot_row:
                continue
            factor = row[pivot_col]
            if factor == 0:
                if rescale:
                    rows[row_index] = [
                        (pivot * entry) // den for entry in row
                    ]
                continue
            rows[row_index] = [
                (pivot * entry - factor * base_entry) // den
                for entry, base_entry in zip(row, base)
            ]
        if self.objective:
            factor = self.objective[pivot_col]
            if factor != 0:
                self.objective = [
                    (pivot * entry - factor * base_entry) // den
                    for entry, base_entry in zip(self.objective, base)
                ]
            elif rescale:
                self.objective = [
                    (pivot * entry) // den for entry in self.objective
                ]
        self.basis[pivot_row] = pivot_col
        if pivot < 0:
            # Keep the shared denominator positive so sign tests on raw
            # entries remain valid (only non-ratio-test pivots, e.g.
            # artificial eviction or warm starts, can hit this).
            self.den = -pivot
            self.rows = [[-entry for entry in row] for row in self.rows]
            if self.objective:
                self.objective = [-entry for entry in self.objective]
        else:
            self.den = pivot

    def run(self, allowed_columns) -> None:
        """Iterate pivots to optimality over ``allowed_columns``.

        Pivot rule: Dantzig (most negative reduced cost) for speed; after
        a stretch of degenerate pivots with no objective progress, switch
        to Bland's rule, whose termination guarantee rules out cycling.
        """
        allowed = sorted(allowed_columns)
        stall_budget = 12 * (len(self.rows) + 1)
        stalled = 0
        last_objective = self.objective_value()
        use_bland = False
        rhs_index = self.num_columns
        while True:
            entering = self._entering_column(allowed, use_bland)
            if entering is None:
                return
            # Integer ratio test: b_i / a_i comparisons cross-multiply
            # (the shared denominator cancels; a_i > 0 keeps order).
            pivot_row = None
            best_num = best_den = None
            for row_index, row in enumerate(self.rows):
                coeff = row[entering]
                if coeff <= 0:
                    continue
                rhs = row[rhs_index]
                if pivot_row is None:
                    better = True
                    tie = False
                else:
                    lhs = rhs * best_den
                    rhs_cmp = best_num * coeff
                    better = lhs < rhs_cmp
                    tie = lhs == rhs_cmp
                if better or (
                    tie and self.basis[row_index] < self.basis[pivot_row]
                ):
                    best_num = rhs
                    best_den = coeff
                    pivot_row = row_index
            if pivot_row is None:
                raise UnboundedProgramError(
                    "linear program is unbounded below"
                )
            self.pivot(pivot_row, entering)
            objective = self.objective_value()
            if objective == last_objective:
                stalled += 1
                if stalled >= stall_budget:
                    use_bland = True
            else:
                stalled = 0
                use_bland = False
                last_objective = objective

    def _entering_column(self, allowed, use_bland: bool):
        objective = self.objective
        if use_bland:
            return next(
                (j for j in allowed if objective[j] < 0), None
            )
        entering = None
        most_negative = 0
        for j in allowed:
            reduced = objective[j]
            if reduced < most_negative:
                most_negative = reduced
                entering = j
        return entering


class ExactSimplexBackend:
    """Exact LP solver: two-phase dense simplex with Bland's rule.

    Produces :class:`~fractions.Fraction` optimal values; every
    coefficient of the program must be rational (ints, Fractions, or
    exactly-representable floats).
    """

    name = "exact-simplex"

    def solve(
        self, program: LinearProgram, *, initial_basis=None
    ) -> LPSolution:
        """Solve and return exact optimal values.

        Parameters
        ----------
        program:
            The LP to solve.
        initial_basis:
            Optional warm-start basis: column indices in the
            structural-then-slack layout (slack ``k`` of the ``k``-th
            inequality is column ``num_vars + k``). When the basis can
            be pivoted in and is primal feasible, phase 1 is skipped;
            otherwise the solve silently restarts cold.

        Raises
        ------
        InfeasibleProgramError, UnboundedProgramError
            For infeasible / unbounded programs.
        """
        tableau, structural = self._build(program)
        warm = initial_basis is not None and self._warm_start(
            tableau, initial_basis
        )
        if not warm:
            if initial_basis is not None:
                tableau, structural = self._build(program)
            self._phase_one(tableau)
        objective = self._phase_two(tableau, program, structural)
        solution = [_ZERO] * program.num_vars
        rhs_index = tableau.num_columns
        den = tableau.den
        for row_index, basic_var in enumerate(tableau.basis):
            if basic_var < program.num_vars:
                solution[basic_var] = Fraction(
                    tableau.rows[row_index][rhs_index], den
                )
        return LPSolution(
            values=solution, objective=objective, backend=self.name
        )

    # ------------------------------------------------------------------
    def _build(self, program: LinearProgram):
        """Assemble the initial integer tableau with slacks/artificials.

        Each constraint row is scaled by the lcm of its coefficient
        denominators (an equivalence transform), so the tableau starts
        as a pure integer matrix with shared denominator 1.
        """
        num_structural = program.num_vars
        prepared: list[tuple[list[int], int, str]] = []
        for terms, rhs in program.le_constraints:
            dense = [_ZERO] * num_structural
            for var, coeff in terms:
                dense[var] += coerce_exact(coeff)
            rhs = coerce_exact(rhs)
            if rhs < 0:
                dense = [-entry for entry in dense]
                prepared.append(self._integer_row(dense, -rhs, "ge"))
            else:
                prepared.append(self._integer_row(dense, rhs, "le"))
        for terms, rhs in program.eq_constraints:
            dense = [_ZERO] * num_structural
            for var, coeff in terms:
                dense[var] += coerce_exact(coeff)
            rhs = coerce_exact(rhs)
            if rhs < 0:
                dense = [-entry for entry in dense]
                rhs = -rhs
            prepared.append(self._integer_row(dense, rhs, "eq"))

        num_slack = sum(1 for _, _, kind in prepared if kind in ("le", "ge"))
        num_artificial = sum(
            1 for _, _, kind in prepared if kind in ("ge", "eq")
        )
        total = num_structural + num_slack + num_artificial
        slack_cursor = num_structural
        artificial_cursor = num_structural + num_slack
        self._artificial_start = num_structural + num_slack
        rows: list[list[int]] = []
        basis: list[int] = []
        for dense, rhs, kind in prepared:
            row = list(dense) + [0] * (num_slack + num_artificial)
            row.append(rhs)
            if kind == "le":
                row[slack_cursor] = 1
                basis.append(slack_cursor)
                slack_cursor += 1
            elif kind == "ge":
                row[slack_cursor] = -1
                slack_cursor += 1
                row[artificial_cursor] = 1
                basis.append(artificial_cursor)
                artificial_cursor += 1
            else:
                row[artificial_cursor] = 1
                basis.append(artificial_cursor)
                artificial_cursor += 1
            rows.append(row)
        if not rows:
            raise SolverError("program has no constraints")
        return _Tableau(rows, basis, total), num_structural

    @staticmethod
    def _integer_row(
        dense: list[Fraction], rhs: Fraction, kind: str
    ) -> tuple[list[int], int, str]:
        """Scale one constraint row to integers (positive multiplier)."""
        multiplier = rhs.denominator
        for entry in dense:
            multiplier = lcm(multiplier, entry.denominator)
        return (
            [
                entry.numerator * (multiplier // entry.denominator)
                for entry in dense
            ],
            rhs.numerator * (multiplier // rhs.denominator),
            kind,
        )

    def _warm_start(self, tableau: _Tableau, columns) -> bool:
        """Pivot the tableau to ``columns`` if possible and feasible.

        Greedy Gauss-Jordan crash: repeatedly bring a missing target
        column into the basis, pivoting in a row currently held by a
        non-target (slack/artificial) variable. Returns ``False`` —
        leaving the caller to restart cold — when the target set is not
        a basis of the row space or the resulting vertex is infeasible.
        """
        target = list(dict.fromkeys(columns))
        if len(target) != len(tableau.rows):
            return False
        artificial_start = self._artificial_start
        if any(not 0 <= c < artificial_start for c in target):
            return False
        target_set = set(target)
        in_basis = set(tableau.basis)
        progress = True
        while progress:
            progress = False
            for col in target:
                if col in in_basis:
                    continue
                for row_index, basic_var in enumerate(tableau.basis):
                    if basic_var in target_set:
                        continue
                    if tableau.rows[row_index][col] != 0:
                        in_basis.discard(basic_var)
                        tableau.pivot(row_index, col)
                        in_basis.add(col)
                        progress = True
                        break
        if in_basis != target_set:
            return False
        rhs_index = tableau.num_columns
        return all(row[rhs_index] >= 0 for row in tableau.rows)

    def _phase_one(self, tableau: _Tableau) -> None:
        artificial_start = self._artificial_start
        total = tableau.num_columns
        if artificial_start == total:
            return  # no artificials: already feasible
        costs = [_ZERO] * total
        for j in range(artificial_start, total):
            costs[j] = _ONE
        tableau.set_objective(costs)
        tableau.run(range(artificial_start))
        if tableau.objective_value() != 0:
            raise InfeasibleProgramError(
                "linear program infeasible (phase-1 optimum "
                f"{tableau.objective_value()} > 0)"
            )
        self._evict_artificials(tableau)

    def _evict_artificials(self, tableau: _Tableau) -> None:
        """Pivot residual zero-level artificials out of the basis."""
        artificial_start = self._artificial_start
        removable: list[int] = []
        for row_index, basic_var in enumerate(tableau.basis):
            if basic_var < artificial_start:
                continue
            row = tableau.rows[row_index]
            pivot_col = next(
                (
                    j
                    for j in range(artificial_start)
                    if row[j] != 0
                ),
                None,
            )
            if pivot_col is None:
                removable.append(row_index)  # redundant constraint row
            else:
                tableau.pivot(row_index, pivot_col)
        for row_index in sorted(removable, reverse=True):
            del tableau.rows[row_index]
            del tableau.basis[row_index]

    def _phase_two(
        self, tableau: _Tableau, program: LinearProgram, structural: int
    ) -> Fraction:
        costs = [_ZERO] * tableau.num_columns
        for var, coeff in program.objective_terms:
            costs[var] += coerce_exact(coeff)
        tableau.set_objective(costs)
        tableau.run(range(self._artificial_start))
        return tableau.objective_value()
