"""Exact two-phase simplex over :class:`fractions.Fraction`.

The paper's Table 1 reports an optimal mechanism with exact rational
entries. Reproducing those requires an LP solver that never rounds —
hence this from-scratch dense-tableau simplex with Bland's anti-cycling
pivot rule (guaranteeing termination despite degeneracy, which the
paper's LPs exhibit: optimal mechanisms sit on many tight privacy
constraints at once).

Scope: intended for the small programs that arise from mechanisms with
``n`` up to roughly 8 (hundreds of variables). Larger instances should
use :class:`repro.solvers.scipy_backend.ScipyBackend`.
"""

from __future__ import annotations

from fractions import Fraction

from ..exceptions import (
    InfeasibleProgramError,
    SolverError,
    UnboundedProgramError,
)
from .base import LinearProgram, LPSolution, coerce_exact

__all__ = ["ExactSimplexBackend"]

_ZERO = Fraction(0)
_ONE = Fraction(1)


class _Tableau:
    """Dense simplex tableau with an explicit basis.

    ``rows`` holds ``[A | b]`` with exactly one identity column per row
    (the basis); ``objective`` holds the reduced-cost row with the
    negated objective value in its last entry.
    """

    def __init__(
        self,
        rows: list[list[Fraction]],
        basis: list[int],
        num_columns: int,
    ) -> None:
        self.rows = rows
        self.basis = basis
        self.num_columns = num_columns  # structural + auxiliary (no RHS)
        self.objective: list[Fraction] = []

    def set_objective(self, costs: list[Fraction]) -> None:
        """Install reduced costs for ``costs`` against the current basis."""
        reduced = list(costs) + [_ZERO]
        for row_index, basic_var in enumerate(self.basis):
            coeff = reduced[basic_var]
            if coeff != 0:
                row = self.rows[row_index]
                for j in range(self.num_columns + 1):
                    reduced[j] -= coeff * row[j]
        self.objective = reduced

    def objective_value(self) -> Fraction:
        return -self.objective[self.num_columns]

    def pivot(self, pivot_row: int, pivot_col: int) -> None:
        row = self.rows[pivot_row]
        pivot = row[pivot_col]
        if pivot == 0:
            raise SolverError("internal error: zero pivot")
        inv = _ONE / pivot
        self.rows[pivot_row] = [entry * inv for entry in row]
        row = self.rows[pivot_row]
        for other_index, other in enumerate(self.rows):
            if other_index == pivot_row or other[pivot_col] == 0:
                continue
            factor = other[pivot_col]
            self.rows[other_index] = [
                entry - factor * pivot_entry
                for entry, pivot_entry in zip(other, row)
            ]
        if self.objective and self.objective[pivot_col] != 0:
            factor = self.objective[pivot_col]
            self.objective = [
                entry - factor * pivot_entry
                for entry, pivot_entry in zip(self.objective, row)
            ]
        self.basis[pivot_row] = pivot_col

    def run(self, allowed_columns) -> None:
        """Iterate pivots to optimality over ``allowed_columns``.

        Pivot rule: Dantzig (most negative reduced cost) for speed; after
        a stretch of degenerate pivots with no objective progress, switch
        to Bland's rule, whose termination guarantee rules out cycling.
        """
        allowed = sorted(allowed_columns)
        stall_budget = 12 * (len(self.rows) + 1)
        stalled = 0
        last_objective = self.objective_value()
        use_bland = False
        while True:
            entering = self._entering_column(allowed, use_bland)
            if entering is None:
                return
            pivot_row = None
            best_ratio = None
            for row_index, row in enumerate(self.rows):
                coeff = row[entering]
                if coeff <= 0:
                    continue
                ratio = row[self.num_columns] / coeff
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (
                        ratio == best_ratio
                        and self.basis[row_index] < self.basis[pivot_row]
                    )
                ):
                    best_ratio = ratio
                    pivot_row = row_index
            if pivot_row is None:
                raise UnboundedProgramError(
                    "linear program is unbounded below"
                )
            self.pivot(pivot_row, entering)
            objective = self.objective_value()
            if objective == last_objective:
                stalled += 1
                if stalled >= stall_budget:
                    use_bland = True
            else:
                stalled = 0
                use_bland = False
                last_objective = objective

    def _entering_column(self, allowed, use_bland: bool):
        if use_bland:
            return next(
                (j for j in allowed if self.objective[j] < 0), None
            )
        entering = None
        most_negative = _ZERO
        for j in allowed:
            reduced = self.objective[j]
            if reduced < most_negative:
                most_negative = reduced
                entering = j
        return entering


class ExactSimplexBackend:
    """Exact LP solver: two-phase dense simplex with Bland's rule.

    Produces :class:`~fractions.Fraction` optimal values; every
    coefficient of the program must be rational (ints, Fractions, or
    exactly-representable floats).
    """

    name = "exact-simplex"

    def solve(self, program: LinearProgram) -> LPSolution:
        """Solve and return exact optimal values.

        Raises
        ------
        InfeasibleProgramError, UnboundedProgramError
            For infeasible / unbounded programs.
        """
        tableau, structural = self._build(program)
        self._phase_one(tableau)
        objective = self._phase_two(tableau, program, structural)
        solution = [_ZERO] * program.num_vars
        for row_index, basic_var in enumerate(tableau.basis):
            if basic_var < program.num_vars:
                solution[basic_var] = tableau.rows[row_index][
                    tableau.num_columns
                ]
        return LPSolution(
            values=solution, objective=objective, backend=self.name
        )

    # ------------------------------------------------------------------
    def _build(self, program: LinearProgram):
        """Assemble the initial tableau with slacks and artificials."""
        num_structural = program.num_vars
        prepared: list[tuple[list[Fraction], Fraction, str]] = []
        for terms, rhs in program.le_constraints:
            dense = [_ZERO] * num_structural
            for var, coeff in terms:
                dense[var] += coerce_exact(coeff)
            rhs = coerce_exact(rhs)
            if rhs < 0:
                dense = [-entry for entry in dense]
                prepared.append((dense, -rhs, "ge"))
            else:
                prepared.append((dense, rhs, "le"))
        for terms, rhs in program.eq_constraints:
            dense = [_ZERO] * num_structural
            for var, coeff in terms:
                dense[var] += coerce_exact(coeff)
            rhs = coerce_exact(rhs)
            if rhs < 0:
                dense = [-entry for entry in dense]
                rhs = -rhs
            prepared.append((dense, rhs, "eq"))

        num_rows = len(prepared)
        num_slack = sum(1 for _, _, kind in prepared if kind in ("le", "ge"))
        num_artificial = sum(
            1 for _, _, kind in prepared if kind in ("ge", "eq")
        )
        total = num_structural + num_slack + num_artificial
        slack_cursor = num_structural
        artificial_cursor = num_structural + num_slack
        self._artificial_start = num_structural + num_slack
        rows: list[list[Fraction]] = []
        basis: list[int] = []
        for dense, rhs, kind in prepared:
            row = list(dense) + [_ZERO] * (num_slack + num_artificial)
            row.append(rhs)
            if kind == "le":
                row[slack_cursor] = _ONE
                basis.append(slack_cursor)
                slack_cursor += 1
            elif kind == "ge":
                row[slack_cursor] = -_ONE
                slack_cursor += 1
                row[artificial_cursor] = _ONE
                basis.append(artificial_cursor)
                artificial_cursor += 1
            else:
                row[artificial_cursor] = _ONE
                basis.append(artificial_cursor)
                artificial_cursor += 1
            rows.append(row)
        if not rows:
            raise SolverError("program has no constraints")
        tableau = _Tableau(rows, basis, total)
        return tableau, num_structural

    def _phase_one(self, tableau: _Tableau) -> None:
        artificial_start = self._artificial_start
        total = tableau.num_columns
        if artificial_start == total:
            return  # no artificials: already feasible
        costs = [_ZERO] * total
        for j in range(artificial_start, total):
            costs[j] = _ONE
        tableau.set_objective(costs)
        tableau.run(range(artificial_start))
        if tableau.objective_value() != 0:
            raise InfeasibleProgramError(
                "linear program infeasible (phase-1 optimum "
                f"{tableau.objective_value()} > 0)"
            )
        self._evict_artificials(tableau)

    def _evict_artificials(self, tableau: _Tableau) -> None:
        """Pivot residual zero-level artificials out of the basis."""
        artificial_start = self._artificial_start
        removable: list[int] = []
        for row_index, basic_var in enumerate(tableau.basis):
            if basic_var < artificial_start:
                continue
            row = tableau.rows[row_index]
            pivot_col = next(
                (
                    j
                    for j in range(artificial_start)
                    if row[j] != 0
                ),
                None,
            )
            if pivot_col is None:
                removable.append(row_index)  # redundant constraint row
            else:
                tableau.pivot(row_index, pivot_col)
        for row_index in sorted(removable, reverse=True):
            del tableau.rows[row_index]
            del tableau.basis[row_index]

    def _phase_two(
        self, tableau: _Tableau, program: LinearProgram, structural: int
    ) -> Fraction:
        costs = [_ZERO] * tableau.num_columns
        for var, coeff in program.objective_terms:
            costs[var] += coerce_exact(coeff)
        tableau.set_objective(costs)
        tableau.run(range(self._artificial_start))
        return tableau.objective_value()
