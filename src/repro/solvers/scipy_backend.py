"""Float LP backend on :func:`scipy.optimize.linprog` (HiGHS).

Besides the :class:`ScipyBackend` wrapper around ``linprog``, this module
exposes :func:`solve_with_optimal_basis`: a direct call into SciPy's
vendored HiGHS bindings that skips ``linprog``'s validation layers and —
crucially for the certify-first pipelines — returns the *optimal basis*
HiGHS actually finished on, instead of forcing callers to re-identify a
basis from the float solution by elimination. The bindings are a private
SciPy surface, so everything degrades gracefully: when they are absent
the function returns ``None`` and callers fall back to the
``linprog``-based paths.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from ..exceptions import (
    InfeasibleProgramError,
    SolverError,
    UnboundedProgramError,
)
from .base import LinearProgram, LPSolution

try:  # private SciPy surface; every use is gated on availability
    from scipy.optimize._highspy import _core as _highs_core
except ImportError:  # pragma: no cover - depends on the scipy build
    _highs_core = None

__all__ = ["ScipyBackend", "has_direct_highs", "solve_with_optimal_basis"]


def has_direct_highs() -> bool:
    """Whether the vendored HiGHS bindings are importable."""
    return _highs_core is not None


def solve_with_optimal_basis(program: LinearProgram) -> list[int] | None:
    """Float-solve ``program`` via HiGHS and return its optimal basis.

    The basis is a list of column ids of the equality form
    ``[A_ub I; A_eq 0]`` (structural variables first, then one slack per
    inequality row, matching
    :class:`repro.solvers.hybrid._StandardForm`): HiGHS's basic
    structural columns plus the slack column of every basic inequality
    row. Returns ``None`` whenever the result is unusable — bindings
    unavailable, model not solved to optimality, a basic *equality* row
    (which has no slack column), or a basis of the wrong size — so
    callers can fall back to the robust paths. The basis is a float
    artifact either way: downstream exact reconstruction/certification
    decides whether anything derived from it stands.
    """
    if _highs_core is None:
        return None
    le = program.le_constraints
    eq = program.eq_constraints
    num_vars = program.num_vars
    num_le = len(le)
    num_rows = num_le + len(eq)
    if num_rows == 0:
        return None
    columns: list[list[tuple[int, float]]] = [[] for _ in range(num_vars)]
    lower = np.empty(num_rows)
    upper = np.empty(num_rows)
    for row, (terms, bound) in enumerate(le):
        lower[row] = -np.inf
        upper[row] = float(bound)
        for var, coeff in terms:
            columns[var].append((row, float(coeff)))
    for offset, (terms, bound) in enumerate(eq):
        row = num_le + offset
        lower[row] = upper[row] = float(bound)
        for var, coeff in terms:
            columns[var].append((row, float(coeff)))
    indptr = np.empty(num_vars + 1, dtype=np.int32)
    indptr[0] = 0
    indices: list[int] = []
    data: list[float] = []
    for var, entries in enumerate(columns):
        for row, value in entries:
            indices.append(row)
            data.append(value)
        indptr[var + 1] = len(indices)
    cost = np.zeros(num_vars)
    for var, coeff in program.objective_terms:
        cost[var] += float(coeff)

    solver = _highs_core._Highs()
    options = _highs_core.HighsOptions()
    options.output_flag = False
    solver.passOptions(options)
    model = _highs_core.HighsLp()
    model.num_col_ = num_vars
    model.num_row_ = num_rows
    model.col_cost_ = cost
    model.col_lower_ = np.zeros(num_vars)
    model.col_upper_ = np.full(num_vars, np.inf)
    model.row_lower_ = lower
    model.row_upper_ = upper
    model.a_matrix_.num_col_ = num_vars
    model.a_matrix_.num_row_ = num_rows
    model.a_matrix_.format_ = _highs_core.MatrixFormat.kColwise
    model.a_matrix_.start_ = indptr
    model.a_matrix_.index_ = np.asarray(indices, dtype=np.int32)
    model.a_matrix_.value_ = np.asarray(data)
    if solver.passModel(model) == _highs_core.HighsStatus.kError:
        return None
    solver.run()
    if solver.getModelStatus() != _highs_core.HighsModelStatus.kOptimal:
        return None
    basis = solver.getBasis()
    basic = _highs_core.HighsBasisStatus.kBasic
    selected = [
        var for var, status in enumerate(basis.col_status) if status == basic
    ]
    for row, status in enumerate(basis.row_status):
        if status == basic:
            if row >= num_le:
                return None  # basic equality row: no slack column exists
            selected.append(num_vars + row)
    if len(selected) != num_rows:
        return None
    return selected


def _sparse_from_constraints(constraints, num_vars: int):
    """Build a CSR matrix and RHS vector from sparse term lists."""
    if not constraints:
        return None, None
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    rhs: list[float] = []
    for row_index, (terms, bound) in enumerate(constraints):
        rhs.append(float(bound))
        for var, coeff in terms:
            rows.append(row_index)
            cols.append(var)
            data.append(float(coeff))
    matrix = csr_matrix(
        (data, (rows, cols)), shape=(len(constraints), num_vars)
    )
    return matrix, np.asarray(rhs)


class ScipyBackend:
    """Solve a :class:`LinearProgram` with HiGHS through scipy.

    Suitable for any problem size; results are float64 and accurate to
    roughly 1e-9, so callers compare against paper values with a small
    tolerance.
    """

    name = "scipy-highs"

    def solve_raw(self, program: LinearProgram):
        """Run HiGHS and return scipy's raw ``OptimizeResult``.

        Used by the certify-first hybrid backend, which needs the slack
        vector (to identify the optimal basis) in addition to the
        variable values; no status checking is performed here.
        """
        objective = np.zeros(program.num_vars)
        for var, coeff in program.objective_terms:
            objective[var] += float(coeff)
        a_ub, b_ub = _sparse_from_constraints(
            program.le_constraints, program.num_vars
        )
        a_eq, b_eq = _sparse_from_constraints(
            program.eq_constraints, program.num_vars
        )
        return linprog(
            objective,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=(0, None),
            method="highs",
        )

    def solve(self, program: LinearProgram) -> LPSolution:
        """Solve and return an :class:`LPSolution`.

        Raises
        ------
        InfeasibleProgramError, UnboundedProgramError, SolverError
            On the corresponding HiGHS statuses.
        """
        result = self.solve_raw(program)
        if result.status == 2:
            raise InfeasibleProgramError(
                f"linear program infeasible: {result.message}"
            )
        if result.status == 3:
            raise UnboundedProgramError(
                f"linear program unbounded: {result.message}"
            )
        if result.status != 0:
            raise SolverError(f"HiGHS failed: {result.message}")
        return LPSolution(
            values=[float(v) for v in result.x],
            objective=float(result.fun),
            backend=self.name,
        )
