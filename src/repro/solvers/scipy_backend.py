"""Float LP backend on :func:`scipy.optimize.linprog` (HiGHS)."""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from ..exceptions import (
    InfeasibleProgramError,
    SolverError,
    UnboundedProgramError,
)
from .base import LinearProgram, LPSolution

__all__ = ["ScipyBackend"]


def _sparse_from_constraints(constraints, num_vars: int):
    """Build a CSR matrix and RHS vector from sparse term lists."""
    if not constraints:
        return None, None
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    rhs: list[float] = []
    for row_index, (terms, bound) in enumerate(constraints):
        rhs.append(float(bound))
        for var, coeff in terms:
            rows.append(row_index)
            cols.append(var)
            data.append(float(coeff))
    matrix = csr_matrix(
        (data, (rows, cols)), shape=(len(constraints), num_vars)
    )
    return matrix, np.asarray(rhs)


class ScipyBackend:
    """Solve a :class:`LinearProgram` with HiGHS through scipy.

    Suitable for any problem size; results are float64 and accurate to
    roughly 1e-9, so callers compare against paper values with a small
    tolerance.
    """

    name = "scipy-highs"

    def solve_raw(self, program: LinearProgram):
        """Run HiGHS and return scipy's raw ``OptimizeResult``.

        Used by the certify-first hybrid backend, which needs the slack
        vector (to identify the optimal basis) in addition to the
        variable values; no status checking is performed here.
        """
        objective = np.zeros(program.num_vars)
        for var, coeff in program.objective_terms:
            objective[var] += float(coeff)
        a_ub, b_ub = _sparse_from_constraints(
            program.le_constraints, program.num_vars
        )
        a_eq, b_eq = _sparse_from_constraints(
            program.eq_constraints, program.num_vars
        )
        return linprog(
            objective,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=(0, None),
            method="highs",
        )

    def solve(self, program: LinearProgram) -> LPSolution:
        """Solve and return an :class:`LPSolution`.

        Raises
        ------
        InfeasibleProgramError, UnboundedProgramError, SolverError
            On the corresponding HiGHS statuses.
        """
        result = self.solve_raw(program)
        if result.status == 2:
            raise InfeasibleProgramError(
                f"linear program infeasible: {result.message}"
            )
        if result.status == 3:
            raise UnboundedProgramError(
                f"linear program unbounded: {result.message}"
            )
        if result.status != 0:
            raise SolverError(f"HiGHS failed: {result.message}")
        return LPSolution(
            values=[float(v) for v in result.x],
            objective=float(result.fun),
            backend=self.name,
        )
