"""Persistent, content-addressed LP solve cache.

Every exact theorem check bottoms out in a handful of canonical linear
programs, and sweeps re-solve the same programs across runs, processes,
and machines. :class:`SolveCache` stores solved programs keyed by a
SHA-256 hash of the *canonical program text* — objective, constraint
rows, and right-hand sides, with every coefficient serialized losslessly
(``Fraction`` as ``p/q``, floats as C99 hex) — so a cache entry can never
go stale: any change to the program changes its key.

The store is a directory of JSON files (two-level fan-out on the key
prefix), written atomically via ``os.replace``, so concurrent readers
and writers — in particular the ``workers=`` process pools of
:mod:`repro.analysis.sweeps` — share one cache directory safely: racing
writers of the same key write identical bytes, and readers never observe
a partial file. A small bounded in-memory layer sits above the directory
for repeated hits inside one process.

A process-wide default cache can be enabled by setting the
``REPRO_CACHE_DIR`` environment variable (or
:func:`set_default_cache`); callers opt out per call by passing
``solve_cache=False``.
"""

from __future__ import annotations

import hashlib
import json
import operator
import os
import tempfile
from fractions import Fraction
from pathlib import Path

from ..exceptions import ValidationError
from .base import LinearProgram, LPSolution

__all__ = [
    "SolveCache",
    "canonical_key",
    "canonical_terms",
    "default_cache",
    "set_default_cache",
    "resolve_cache",
    "encode_number",
    "decode_number",
    "gc_directory",
]

#: Bump when the on-disk payload or canonical text changes shape.
_FORMAT_VERSION = 1

#: Environment variable enabling the process-wide default cache.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Entries kept in the per-instance in-memory layer.
_MEMORY_ENTRIES = 1024


def _encode_number(value) -> str:
    """Lossless, regime-tagged text form of an LP coefficient.

    Exact and float values that compare equal (``Fraction(1, 2)`` vs
    ``0.5``) must encode differently — they describe different programs.
    """
    if isinstance(value, Fraction):
        return f"F{value.numerator}/{value.denominator}"
    if isinstance(value, bool):
        return f"i{int(value)}"
    if isinstance(value, int):
        return f"i{value}"
    if isinstance(value, float):
        return f"f{value.hex()}"
    try:  # numpy integer scalars and other index-able integrals
        return f"i{operator.index(value)}"
    except TypeError:
        pass
    raise ValidationError(
        f"cannot canonically serialize LP coefficient {value!r} "
        f"of type {type(value).__name__}"
    )


def _decode_number(text: str):
    kind, payload = text[0], text[1:]
    if kind == "F":
        numerator, denominator = payload.split("/")
        return Fraction(int(numerator), int(denominator))
    if kind == "i":
        return int(payload)
    if kind == "f":
        return float.fromhex(payload)
    raise ValidationError(f"unknown cached coefficient encoding {text!r}")


#: Public names for the lossless coefficient codec. The compiled
#: mechanism artifacts of :mod:`repro.release.artifacts` serialize their
#: exact kernels, sampling thresholds, and certificate duals with the
#: same regime-tagged encoding, so one codec governs every store.
encode_number = _encode_number
decode_number = _decode_number


def gc_directory(
    path, *, max_entries: int | None = None, max_age_days: float | None = None
) -> int:
    """Evict entries from a directory-of-JSON store; returns count removed.

    Shared by :meth:`SolveCache.gc` and
    :meth:`repro.release.artifacts.ArtifactStore.gc`. Entries older than
    ``max_age_days`` (by mtime) are removed first; then, when
    ``max_entries`` is set, the oldest survivors are removed until at
    most that many remain. Content-addressed entries are never *stale*,
    so GC is purely a disk-budget tool. Concurrent removals are
    tolerated (missing files are skipped).
    """
    if max_entries is not None and max_entries < 0:
        raise ValidationError(
            f"max_entries must be >= 0, got {max_entries}"
        )
    if max_age_days is not None and max_age_days < 0:
        raise ValidationError(
            f"max_age_days must be >= 0, got {max_age_days}"
        )
    root = Path(path).expanduser()
    if not root.is_dir():
        return 0
    entries = []
    for entry in root.rglob("*.json"):
        try:
            entries.append((entry.stat().st_mtime, entry))
        except OSError:
            continue
    entries.sort(key=lambda pair: pair[0])
    removed = 0
    survivors = []
    if max_age_days is not None:
        import time

        cutoff = time.time() - max_age_days * 86400.0
        for mtime, entry in entries:
            if mtime < cutoff:
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
            else:
                survivors.append((mtime, entry))
    else:
        survivors = entries
    if max_entries is not None and len(survivors) > max_entries:
        for _, entry in survivors[: len(survivors) - max_entries]:
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def canonical_terms(terms) -> str:
    """Canonical text of a sparse ``(variable, coeff)`` term list."""
    return ",".join(f"{var}:{_encode_number(coeff)}" for var, coeff in terms)


def canonical_key(program: LinearProgram, *, variant: str = "") -> str:
    """Content hash of a program (plus an optional caller variant tag).

    The hash covers the variable count, objective, and every constraint
    row with its exact coefficients and right-hand side, so two programs
    share a key iff they are the same program — stale cache entries are
    impossible by construction. ``variant`` lets callers separate
    different *solves* of the same program (e.g. the Lemma 5 refined
    solve) into distinct entries.
    """
    parts = [f"v{_FORMAT_VERSION}", f"n{program.num_vars}"]
    parts.append("min " + canonical_terms(program.objective_terms))
    for terms, rhs in program.le_constraints:
        parts.append(canonical_terms(terms) + "<=" + _encode_number(rhs))
    for terms, rhs in program.eq_constraints:
        parts.append(canonical_terms(terms) + "==" + _encode_number(rhs))
    if variant:
        parts.append("variant " + variant)
    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()


class SolveCache:
    """Directory-backed, content-addressed store of exact LP solutions.

    Parameters
    ----------
    path:
        Cache directory (created lazily on first store).

    Attributes
    ----------
    stats:
        ``{"hits", "misses", "stores"}`` counters for this instance —
        the warm-sweep benchmark asserts ``misses == 0`` on a second
        run, i.e. zero LP solves.
    """

    def __init__(self, path) -> None:
        self.path = Path(path).expanduser()
        self._memory: dict[str, LPSolution] = {}
        self.stats = {"hits": 0, "misses": 0, "stores": 0}

    @staticmethod
    def _count(result: str) -> None:
        # Mirrors the per-instance stats into the process-default
        # metrics registry, so one /metrics scrape of a serving process
        # also shows solver-cache behaviour. Resolved per call: the
        # solver path is not hot, and tests swap the default registry.
        from ..obs.metrics import default_registry

        default_registry().counter(
            "repro_solve_cache_total",
            "Solve-cache lookups and stores, by result.",
            labels=("result",),
        ).labels(result).inc()

    # -- keying --------------------------------------------------------
    def key(self, program: LinearProgram, *, variant: str = "") -> str:
        """Content key for ``program`` (see :func:`canonical_key`)."""
        return canonical_key(program, variant=variant)

    def _entry_path(self, key: str) -> Path:
        return self.path / key[:2] / f"{key}.json"

    # -- lookup --------------------------------------------------------
    def get_key(self, key: str) -> LPSolution | None:
        """Return the cached solution for ``key``, or ``None``."""
        cached = self._memory.get(key)
        if cached is None:
            cached = self._load(key)
            if cached is not None:
                self._remember(key, cached)
        if cached is None:
            self.stats["misses"] += 1
            self._count("miss")
            return None
        self.stats["hits"] += 1
        self._count("hit")
        return LPSolution(
            values=list(cached.values),
            objective=cached.objective,
            backend=cached.backend,
        )

    def get(
        self, program: LinearProgram, *, variant: str = ""
    ) -> LPSolution | None:
        """Return the cached solution for ``program``, or ``None``."""
        return self.get_key(self.key(program, variant=variant))

    # -- store ---------------------------------------------------------
    def put_key(self, key: str, solution: LPSolution) -> None:
        """Persist ``solution`` under ``key`` (atomic replace on disk)."""
        payload = {
            "version": _FORMAT_VERSION,
            "objective": _encode_number(solution.objective),
            "values": [_encode_number(value) for value in solution.values],
            "backend": solution.backend,
        }
        entry = self._entry_path(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            dir=entry.parent,
            prefix=f".{key[:8]}-",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, entry)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self._remember(key, solution)
        self.stats["stores"] += 1
        self._count("store")

    def put(
        self,
        program: LinearProgram,
        solution: LPSolution,
        *,
        variant: str = "",
    ) -> None:
        """Persist the solution of ``program``."""
        self.put_key(self.key(program, variant=variant), solution)

    # -- internals -----------------------------------------------------
    def _load(self, key: str) -> LPSolution | None:
        entry = self._entry_path(key)
        try:
            payload = json.loads(entry.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
            return None
        try:
            return LPSolution(
                values=[_decode_number(value) for value in payload["values"]],
                objective=_decode_number(payload["objective"]),
                backend=str(payload["backend"]),
            )
        except (KeyError, TypeError, IndexError, ValidationError, ValueError):
            return None

    def _remember(self, key: str, solution: LPSolution) -> None:
        if len(self._memory) >= _MEMORY_ENTRIES:
            self._memory.pop(next(iter(self._memory)))
        self._memory[key] = solution

    def clear_memory(self) -> None:
        """Drop the in-memory layer (the directory is untouched)."""
        self._memory.clear()

    def gc(
        self,
        *,
        max_entries: int | None = None,
        max_age_days: float | None = None,
    ) -> int:
        """Evict on-disk entries (see :func:`gc_directory`).

        The in-memory layer is dropped too, so evicted entries cannot be
        served from memory afterwards.
        """
        removed = gc_directory(
            self.path, max_entries=max_entries, max_age_days=max_age_days
        )
        self._memory.clear()
        return removed

    def __repr__(self) -> str:
        return (
            f"<SolveCache {str(self.path)!r} hits={self.stats['hits']} "
            f"misses={self.stats['misses']} stores={self.stats['stores']}>"
        )


#: Module default: unresolved sentinel until first use.
_UNSET = object()
_default_cache = _UNSET


def default_cache() -> SolveCache | None:
    """The process-wide default cache (``REPRO_CACHE_DIR``), or ``None``."""
    global _default_cache
    if _default_cache is _UNSET:
        directory = os.environ.get(CACHE_DIR_ENV)
        _default_cache = SolveCache(directory) if directory else None
    return _default_cache


def set_default_cache(cache) -> None:
    """Install a process-wide default cache.

    Accepts a :class:`SolveCache`, a directory path, or ``None`` to
    disable (and stop consulting ``REPRO_CACHE_DIR``).
    """
    global _default_cache
    if cache is None or isinstance(cache, SolveCache):
        _default_cache = cache
    else:
        _default_cache = SolveCache(cache)


def resolve_cache(solve_cache) -> SolveCache | None:
    """Normalize a ``solve_cache=`` argument.

    ``None`` means "use the process default" (which is itself ``None``
    unless configured), ``False`` disables caching for the call, a
    path-like builds a directory cache, and a :class:`SolveCache` is
    used as-is.
    """
    if solve_cache is None:
        return default_cache()
    if solve_cache is False:
        return None
    if isinstance(solve_cache, SolveCache):
        return solve_cache
    return SolveCache(solve_cache)
