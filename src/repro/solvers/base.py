"""Backend-neutral linear-program description.

The canonical form used throughout the library:

.. math::

   \\min c^T z \\quad \\text{s.t.} \\quad
   A_{ub} z \\le b_{ub}, \\; A_{eq} z = b_{eq}, \\; z \\ge 0.

All decision variables are non-negative — the paper's LPs (mechanism
entries, kernel entries, and the worst-case-loss epigraph variable) are
naturally so. Constraints are stored sparsely as ``(variable, coeff)``
term lists, which both backends consume directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..exceptions import ValidationError

__all__ = ["LinearTerm", "LinearProgram", "LPSolution", "choose_backend"]

#: A single ``coeff * variable`` term: ``(variable_index, coefficient)``.
LinearTerm = tuple[int, object]


@dataclass
class _Constraint:
    terms: list[LinearTerm]
    rhs: object


@dataclass
class LPSolution:
    """Result of an LP solve.

    Attributes
    ----------
    values:
        Optimal variable assignment (list, Fractions for the exact
        backend, floats for scipy).
    objective:
        Optimal objective value.
    backend:
        Name of the backend that produced the solution.
    """

    values: list
    objective: object
    backend: str

    def value(self, index: int):
        """Return the optimal value of variable ``index``."""
        return self.values[index]


class LinearProgram:
    """A minimization LP over non-negative variables.

    Build incrementally::

        lp = LinearProgram(num_vars=3)
        lp.set_objective([(0, 1), (2, 5)])        # minimize z0 + 5 z2
        lp.add_le([(0, 1), (1, 1)], 1)            # z0 + z1 <= 1
        lp.add_eq([(1, 2), (2, -1)], 0)           # 2 z1 - z2 == 0
    """

    def __init__(self, num_vars: int) -> None:
        if num_vars < 1:
            raise ValidationError(f"num_vars must be >= 1, got {num_vars}")
        self.num_vars = int(num_vars)
        self._objective: list[LinearTerm] = []
        self._le: list[_Constraint] = []
        self._eq: list[_Constraint] = []

    # ------------------------------------------------------------------
    def _check_terms(self, terms) -> list[LinearTerm]:
        cleaned: list[LinearTerm] = []
        for variable, coeff in terms:
            if not 0 <= int(variable) < self.num_vars:
                raise ValidationError(
                    f"variable index {variable} out of range "
                    f"[0, {self.num_vars})"
                )
            if coeff != 0:
                cleaned.append((int(variable), coeff))
        return cleaned

    def set_objective(self, terms) -> None:
        """Set the (sparse) objective ``min sum coeff * z[var]``."""
        self._objective = self._check_terms(terms)

    def add_le(self, terms, rhs) -> None:
        """Add an inequality ``sum coeff * z[var] <= rhs``."""
        self._le.append(_Constraint(self._check_terms(terms), rhs))

    def add_eq(self, terms, rhs) -> None:
        """Add an equality ``sum coeff * z[var] == rhs``."""
        self._eq.append(_Constraint(self._check_terms(terms), rhs))

    # ------------------------------------------------------------------
    @property
    def objective_terms(self) -> list[LinearTerm]:
        return list(self._objective)

    @property
    def le_constraints(self) -> list[tuple[list[LinearTerm], object]]:
        return [(list(c.terms), c.rhs) for c in self._le]

    @property
    def eq_constraints(self) -> list[tuple[list[LinearTerm], object]]:
        return [(list(c.terms), c.rhs) for c in self._eq]

    def num_constraints(self) -> int:
        """Total number of constraints (both kinds)."""
        return len(self._le) + len(self._eq)

    def evaluate_objective(self, values) -> object:
        """Evaluate the objective at a candidate point."""
        return sum(coeff * values[var] for var, coeff in self._objective)

    def copy(self) -> "LinearProgram":
        """Deep-enough copy (terms are immutable tuples)."""
        clone = LinearProgram(self.num_vars)
        clone._objective = list(self._objective)
        clone._le = [_Constraint(list(c.terms), c.rhs) for c in self._le]
        clone._eq = [_Constraint(list(c.terms), c.rhs) for c in self._eq]
        return clone

    def __repr__(self) -> str:
        return (
            f"<LinearProgram vars={self.num_vars} "
            f"le={len(self._le)} eq={len(self._eq)}>"
        )


def choose_backend(*, exact: bool, size_hint: int = 0):
    """Pick a default backend.

    ``exact=True`` selects the Fraction simplex (appropriate for small
    instances — the paper's tables); otherwise scipy/HiGHS.
    ``size_hint`` (number of variables) guards against accidentally
    running the exact solver on huge programs.
    """
    # Imports deferred to avoid a circular import at package load.
    from .scipy_backend import ScipyBackend
    from .simplex import ExactSimplexBackend

    if exact:
        if size_hint > 2500:
            raise ValidationError(
                "exact simplex requested for a very large program "
                f"({size_hint} variables); use the scipy backend"
            )
        return ExactSimplexBackend()
    return ScipyBackend()


def coerce_exact(value) -> Fraction:
    """Convert an LP coefficient to a Fraction (helper for the exact path)."""
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value)
    raise ValidationError(
        f"cannot use {value!r} as an exact LP coefficient"
    )
