"""Backend-neutral linear-program description.

The canonical form used throughout the library:

.. math::

   \\min c^T z \\quad \\text{s.t.} \\quad
   A_{ub} z \\le b_{ub}, \\; A_{eq} z = b_{eq}, \\; z \\ge 0.

All decision variables are non-negative — the paper's LPs (mechanism
entries, kernel entries, and the worst-case-loss epigraph variable) are
naturally so. Constraints are stored sparsely as ``(variable, coeff)``
term lists, which all backends consume directly.

Term lists are immutable tuples and the constraint accessors return
cached views, so the hot backends (which walk every constraint on each
solve) never pay a deep copy, and prebuilt constraint blocks — e.g. the
privacy/stochasticity rows shared by every Section 2.5 LP with the same
``(n, alpha)`` — can be appended wholesale via :meth:`LinearProgram.extend_le`
/ :meth:`LinearProgram.extend_eq` without re-validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..exceptions import ValidationError

__all__ = ["LinearTerm", "LinearProgram", "LPSolution", "choose_backend"]

#: A single ``coeff * variable`` term: ``(variable_index, coefficient)``.
LinearTerm = tuple[int, object]


@dataclass
class _Constraint:
    terms: tuple[LinearTerm, ...]
    rhs: object


@dataclass
class LPSolution:
    """Result of an LP solve.

    Attributes
    ----------
    values:
        Optimal variable assignment (list, Fractions for the exact
        backends, floats for scipy).
    objective:
        Optimal objective value.
    backend:
        Name of the backend that produced the solution.
    """

    values: list
    objective: object
    backend: str

    def value(self, index: int):
        """Return the optimal value of variable ``index``."""
        return self.values[index]


class LinearProgram:
    """A minimization LP over non-negative variables.

    Build incrementally::

        lp = LinearProgram(num_vars=3)
        lp.set_objective([(0, 1), (2, 5)])        # minimize z0 + 5 z2
        lp.add_le([(0, 1), (1, 1)], 1)            # z0 + z1 <= 1
        lp.add_eq([(1, 2), (2, -1)], 0)           # 2 z1 - z2 == 0
    """

    def __init__(self, num_vars: int) -> None:
        if num_vars < 1:
            raise ValidationError(f"num_vars must be >= 1, got {num_vars}")
        self.num_vars = int(num_vars)
        self._objective: tuple[LinearTerm, ...] = ()
        self._le: list[_Constraint] = []
        self._eq: list[_Constraint] = []
        self._le_view: tuple | None = ()
        self._eq_view: tuple | None = ()

    # ------------------------------------------------------------------
    def _check_terms(self, terms) -> tuple[LinearTerm, ...]:
        cleaned: list[LinearTerm] = []
        for variable, coeff in terms:
            if not 0 <= int(variable) < self.num_vars:
                raise ValidationError(
                    f"variable index {variable} out of range "
                    f"[0, {self.num_vars})"
                )
            if coeff != 0:
                cleaned.append((int(variable), coeff))
        return tuple(cleaned)

    def set_objective(self, terms) -> None:
        """Set the (sparse) objective ``min sum coeff * z[var]``."""
        self._objective = self._check_terms(terms)

    def add_le(self, terms, rhs) -> None:
        """Add an inequality ``sum coeff * z[var] <= rhs``."""
        self._le.append(_Constraint(self._check_terms(terms), rhs))
        self._le_view = None

    def add_eq(self, terms, rhs) -> None:
        """Add an equality ``sum coeff * z[var] == rhs``."""
        self._eq.append(_Constraint(self._check_terms(terms), rhs))
        self._eq_view = None

    def extend_le(self, constraints) -> None:
        """Append prebuilt ``(terms, rhs)`` inequality pairs.

        Skips per-term validation: intended for constraint blocks built
        once by this library and shared across many programs (e.g. the
        privacy rows of the Section 2.5 LP, identical for every consumer
        at the same ``(n, alpha)``). Term lists are stored as-is, so
        callers must pass tuples of in-range ``(variable, coeff)`` pairs.
        """
        self._le.extend(
            _Constraint(tuple(terms), rhs) for terms, rhs in constraints
        )
        self._le_view = None

    def extend_eq(self, constraints) -> None:
        """Append prebuilt ``(terms, rhs)`` equality pairs (see
        :meth:`extend_le`)."""
        self._eq.extend(
            _Constraint(tuple(terms), rhs) for terms, rhs in constraints
        )
        self._eq_view = None

    # ------------------------------------------------------------------
    @property
    def objective_terms(self) -> list[LinearTerm]:
        return list(self._objective)

    @property
    def le_constraints(self) -> tuple[tuple[tuple[LinearTerm, ...], object], ...]:
        """Cached view of ``(terms, rhs)`` inequality pairs.

        Terms are immutable tuples shared with the program (no copy);
        the view is rebuilt only after a mutation.
        """
        if self._le_view is None:
            self._le_view = tuple((c.terms, c.rhs) for c in self._le)
        return self._le_view

    @property
    def eq_constraints(self) -> tuple[tuple[tuple[LinearTerm, ...], object], ...]:
        """Cached view of ``(terms, rhs)`` equality pairs (no copy)."""
        if self._eq_view is None:
            self._eq_view = tuple((c.terms, c.rhs) for c in self._eq)
        return self._eq_view

    def num_constraints(self) -> int:
        """Total number of constraints (both kinds)."""
        return len(self._le) + len(self._eq)

    def evaluate_objective(self, values) -> object:
        """Evaluate the objective at a candidate point."""
        return sum(coeff * values[var] for var, coeff in self._objective)

    def copy(self) -> "LinearProgram":
        """Independent copy (term tuples are immutable, hence shared)."""
        clone = LinearProgram(self.num_vars)
        clone._objective = self._objective
        clone._le = [_Constraint(c.terms, c.rhs) for c in self._le]
        clone._eq = [_Constraint(c.terms, c.rhs) for c in self._eq]
        clone._le_view = self._le_view
        clone._eq_view = self._eq_view
        return clone

    def __repr__(self) -> str:
        return (
            f"<LinearProgram vars={self.num_vars} "
            f"le={len(self._le)} eq={len(self._eq)}>"
        )


def choose_backend(*, exact: bool, size_hint: int = 0):
    """Pick a default backend.

    ``exact=True`` selects the certify-first hybrid backend: a float
    HiGHS solve identifies the optimal basis, one fraction-free exact
    basis solve reconstructs the rational vertex, and an exact
    primal/dual certificate guards it — falling back to the integer
    fraction-free simplex only when certification fails. This services
    programs of any size (the old hard error above 2500 variables is
    gone); ``size_hint`` is kept for API compatibility and future
    routing heuristics.

    ``exact=False`` selects scipy/HiGHS floats.
    """
    # Imports deferred to avoid a circular import at package load.
    if exact:
        from .hybrid import HybridBackend

        return HybridBackend()
    from .scipy_backend import ScipyBackend

    return ScipyBackend()


def coerce_exact(value) -> Fraction:
    """Convert an LP coefficient to a Fraction (helper for the exact path)."""
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value)
    raise ValidationError(
        f"cannot use {value!r} as an exact LP coefficient"
    )
