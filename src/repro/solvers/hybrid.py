"""Certify-first exact LP solving (float solve + exact certificate).

The paper's theorem checks need *exact rational* LP optima, but the
exact simplex pays big-integer pivot arithmetic for every one of its
(many, on the paper's degenerate programs) iterations. This backend
inverts the work split:

1. **Solve in floats.** HiGHS (via scipy) finds an optimal vertex in
   microseconds-to-milliseconds.
2. **Identify the basis.** The support of the float solution (positive
   variables and slacks) is completed to a square basis of the equality
   form ``[A_ub I; A_eq 0]`` by a float Gaussian elimination — cheap and
   allowed to be heuristic, because nothing downstream trusts it.
3. **Reconstruct exactly.** One sparse exact basis solve rebuilds the
   vertex in exact rationals: *singleton peeling* strips every basis
   column with a single remaining row (all inactive slacks, in
   particular), and the remaining core goes through a Markowitz-ordered
   LU elimination over ``Fraction`` (:func:`_sparse_exact_solve`) that
   exploits the near-chain structure of tight privacy constraints.
4. **Certify.** Exact primal feasibility (basic values ``>= 0``; the
   equality form holds by construction) and exact dual feasibility
   (``c_j - y^T A_j >= 0`` for every column, with ``B^T y = c_B``) are
   checked over ``Fraction``. Complementary slackness is automatic for a
   basic pair. A certificate that passes *is* a proof of optimality —
   the float solver's numerics never enter the result.
5. **Fall back.** If anything fails — degenerate float basis, singular
   reconstruction, a violated certificate — the exact integer-tableau
   simplex solves from scratch, warm-started from the identified basis
   when one exists.

The happy path costs one float solve plus one exact factorization
instead of one exact factorization *per pivot*.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..exceptions import ValidationError
from .base import LinearProgram, LPSolution, coerce_exact
from .scipy_backend import ScipyBackend
from .simplex import ExactSimplexBackend

__all__ = ["HybridBackend"]

_ZERO = Fraction(0)

#: Support threshold: float values above this count as "in the basis".
_SUPPORT_TOL = 1e-8
#: Pivot threshold for the float basis-completion elimination.
_PIVOT_TOL = 1e-9


def _sparse_exact_solve(
    row_maps: list[dict[int, Fraction]], rhs: list[Fraction]
) -> dict[int, Fraction]:
    """Solve a square sparse system exactly by LU-style elimination.

    ``row_maps[k]`` maps column id -> coefficient; the system must be
    square and nonsingular (:class:`ValidationError` otherwise). Pivots
    follow the Markowitz rule — minimize ``(row_nnz-1)*(col_nnz-1)`` —
    which keeps fill-in near zero on the chain-structured cores the
    certify step produces (tight privacy constraints couple only two
    mechanism entries each), so the exact solve stays close to linear
    in the number of nonzeros instead of cubic in the core size.
    """
    size = len(row_maps)
    rows = [dict(row) for row in row_maps]
    values = list(rhs)
    col_rows: dict[int, set[int]] = {}
    for index, row in enumerate(rows):
        for col in row:
            col_rows.setdefault(col, set()).add(index)
    if len(col_rows) != size:
        raise ValidationError("sparse system is not square")
    active = set(range(size))
    order: list[tuple[int, int]] = []
    for _ in range(size):
        best = None
        for row_index in active:
            row = rows[row_index]
            if not row:
                raise ValidationError("sparse system is singular")
            row_cost = len(row) - 1
            for col in row:
                score = row_cost * (len(col_rows[col]) - 1)
                if best is None or score < best[0]:
                    best = (score, row_index, col)
            if best[0] == 0:
                break
        _, pivot_row, pivot_col = best
        order.append((pivot_row, pivot_col))
        active.remove(pivot_row)
        base = rows[pivot_row]
        pivot = base[pivot_col]
        for other_index in list(col_rows[pivot_col]):
            if other_index == pivot_row or other_index not in active:
                continue
            other = rows[other_index]
            factor = other.pop(pivot_col) / pivot
            col_rows[pivot_col].discard(other_index)
            for col, coeff in base.items():
                if col == pivot_col:
                    continue
                updated = other.get(col, _ZERO) - factor * coeff
                if updated == 0:
                    if col in other:
                        del other[col]
                        col_rows[col].discard(other_index)
                else:
                    if col not in other:
                        col_rows.setdefault(col, set()).add(other_index)
                    other[col] = updated
            values[other_index] -= factor * values[pivot_row]
        for col in base:
            col_rows[col].discard(pivot_row)
    solution: dict[int, Fraction] = {}
    for pivot_row, pivot_col in reversed(order):
        row = rows[pivot_row]
        residual = values[pivot_row]
        for col, coeff in row.items():
            if col != pivot_col:
                residual -= coeff * solution[col]
        solution[pivot_col] = residual / row[pivot_col]
    return solution


class _StandardForm:
    """Equality-form view ``[A_ub I; A_eq 0] [x; s] = b`` of a program.

    Holds the exact (Fraction) column-sparse matrix, per-column costs,
    and a float dense copy for basis identification.
    """

    def __init__(self, program: LinearProgram) -> None:
        self.program = program
        self.num_structural = program.num_vars
        le = program.le_constraints
        eq = program.eq_constraints
        self.num_le = len(le)
        self.num_rows = len(le) + len(eq)
        self.num_cols = self.num_structural + self.num_le

        cells: dict[tuple[int, int], Fraction] = {}
        rhs: list[Fraction] = []
        for row_index, (terms, bound) in enumerate(le + eq):
            rhs.append(coerce_exact(bound))
            for var, coeff in terms:
                key = (row_index, var)
                cells[key] = cells.get(key, _ZERO) + coerce_exact(coeff)
        self.rhs = rhs
        columns: list[list[tuple[int, Fraction]]] = [
            [] for _ in range(self.num_cols)
        ]
        for (row_index, var), coeff in cells.items():
            if coeff != 0:
                columns[var].append((row_index, coeff))
        for var in range(self.num_structural):
            columns[var].sort()
        for slack_index in range(self.num_le):
            columns[self.num_structural + slack_index].append(
                (slack_index, Fraction(1))
            )
        self.columns = columns

        costs: list[Fraction] = [_ZERO] * self.num_cols
        for var, coeff in program.objective_terms:
            costs[var] += coerce_exact(coeff)
        self.costs = costs

    def float_matrix(self) -> np.ndarray:
        """Dense float copy of the equality-form matrix."""
        matrix = np.zeros((self.num_rows, self.num_cols))
        for col, entries in enumerate(self.columns):
            for row, coeff in entries:
                matrix[row, col] = float(coeff)
        return matrix

    # ------------------------------------------------------------------
    def identify_basis(self, float_result) -> list[int] | None:
        """Complete the float solution's support to a basis, or ``None``.

        Columns are admitted in order of decreasing float value (the
        solution's support first), padded by the remaining slack then
        structural columns; a float Gaussian elimination keeps only
        independent ones. Heuristic by design — exact certification
        decides whether the answer stands.
        """
        m = self.num_rows
        if m == 0:
            return None
        slack_attr = getattr(float_result, "slack", None)
        if slack_attr is None:
            slack = np.zeros(self.num_le)
        else:
            slack = np.asarray(slack_attr, dtype=float).ravel()
            if slack.size != self.num_le:
                slack = np.zeros(self.num_le)
        values = np.concatenate(
            [np.asarray(float_result.x, dtype=float).ravel(), slack]
        )
        tol = _SUPPORT_TOL * max(1.0, float(np.max(np.abs(values), initial=0.0)))
        support = [
            int(j)
            for j in np.argsort(-values, kind="stable")
            if values[j] > tol
        ]
        in_support = set(support)
        work = self.float_matrix()
        # Degenerate vertices admit many bases; only ones whose every
        # column has zero reduced cost are dual feasible. Rank padding
        # columns by |reduced cost| under HiGHS's dual marginals so the
        # completion lands on a certifiable basis, not just any basis.
        reduced_costs = self._float_reduced_costs(float_result, work)
        padding_pool = [j for j in range(self.num_cols) if j not in in_support]
        if reduced_costs is None:
            # No duals available: prefer slack columns (cheap singletons).
            padding = [j for j in padding_pool if j >= self.num_structural]
            padding += [j for j in padding_pool if j < self.num_structural]
        else:
            rank = np.abs(reduced_costs)
            padding = sorted(
                padding_pool, key=lambda j: (float(rank[j]), j)
            )
        used = np.zeros(m, dtype=bool)
        selected: list[int] = []
        for col in support + padding:
            if len(selected) == m:
                break
            candidate = np.where(~used, np.abs(work[:, col]), 0.0)
            pivot_row = int(np.argmax(candidate))
            if candidate[pivot_row] <= _PIVOT_TOL:
                continue
            selected.append(col)
            used[pivot_row] = True
            factor = work[:, col] / work[pivot_row, col]
            factor[pivot_row] = 0.0
            work -= np.outer(factor, work[pivot_row])
        if len(selected) < m:
            return None
        return selected

    def _float_reduced_costs(self, float_result, matrix: np.ndarray):
        """Float reduced costs ``c - A^T y`` from HiGHS's marginals."""
        ineqlin = getattr(float_result, "ineqlin", None)
        eqlin = getattr(float_result, "eqlin", None)
        duals = np.zeros(self.num_rows)
        try:
            if self.num_le:
                marginals = np.asarray(
                    ineqlin.marginals, dtype=float
                ).ravel()
                if marginals.size != self.num_le:
                    return None
                duals[: self.num_le] = marginals
            if self.num_rows > self.num_le:
                marginals = np.asarray(eqlin.marginals, dtype=float).ravel()
                if marginals.size != self.num_rows - self.num_le:
                    return None
                duals[self.num_le :] = marginals
        except (AttributeError, TypeError, ValueError):
            return None
        costs = np.array([float(c) for c in self.costs])
        return costs - matrix.T @ duals

    # ------------------------------------------------------------------
    def certify(self, basis: list[int]) -> LPSolution | None:
        """Exactly reconstruct and certify the vertex of ``basis``.

        Returns the certified :class:`LPSolution` or ``None`` when the
        basis is singular, primal infeasible, or not dual optimal.
        """
        peeled, reduced_rows, reduced_cols = self._peel(basis)
        if peeled is None:
            return None
        try:
            basic_values = self._primal(peeled, reduced_rows, reduced_cols)
            if basic_values is None:
                return None
            duals = self._dual(peeled, reduced_rows, reduced_cols)
        except ValidationError:
            return None  # singular reduced system: float basis was wrong

        # Dual feasibility: nonnegative reduced cost for every column.
        for col, entries in enumerate(self.columns):
            reduced_cost = self.costs[col] - sum(
                coeff * duals[row] for row, coeff in entries
            )
            if reduced_cost < 0:
                return None

        values = [_ZERO] * self.num_structural
        for col, value in basic_values.items():
            if col < self.num_structural:
                values[col] = value
        objective = sum(
            (
                coerce_exact(coeff) * values[var]
                for var, coeff in self.program.objective_terms
            ),
            _ZERO,
        )
        return LPSolution(
            values=values, objective=objective, backend=HybridBackend.name
        )

    # ------------------------------------------------------------------
    def _peel(self, basis: list[int]):
        """Strip singleton basis columns before the dense exact solve.

        Repeatedly removes a basis column with exactly one entry in the
        still-active rows (recording ``(col, row, coeff)``), shrinking
        the system that needs a Bareiss factorization to the active
        core. Inactive constraints' slack columns — the bulk of the
        basis on the paper's LPs — peel away immediately.
        """
        active_rows = set(range(self.num_rows))
        active_cols = set(basis)
        if len(active_cols) != self.num_rows:
            return None, None, None
        row_to_cols: dict[int, list[tuple[int, Fraction]]] = {
            row: [] for row in active_rows
        }
        counts: dict[int, int] = {}
        for col in basis:
            entries = self.columns[col]
            counts[col] = len(entries)
            for row, coeff in entries:
                row_to_cols[row].append((col, coeff))
        queue = [col for col, count in counts.items() if count <= 1]
        peeled: list[tuple[int, int, Fraction]] = []
        while queue:
            col = queue.pop()
            if col not in active_cols:
                continue
            live = [
                (row, coeff)
                for row, coeff in self.columns[col]
                if row in active_rows
            ]
            if not live:
                return None, None, None  # zero column: singular basis
            if len(live) > 1:
                continue  # count went stale; still multi-row
            row, coeff = live[0]
            peeled.append((col, row, coeff))
            active_cols.remove(col)
            active_rows.remove(row)
            for other_col, _ in row_to_cols[row]:
                if other_col in active_cols:
                    counts[other_col] -= 1
                    if counts[other_col] <= 1:
                        queue.append(other_col)
        reduced_rows = sorted(active_rows)
        reduced_cols = [col for col in basis if col in active_cols]
        return peeled, reduced_rows, reduced_cols

    def _primal(
        self, peeled, reduced_rows, reduced_cols
    ) -> dict[int, Fraction] | None:
        """Basic values: sparse solve on the core, back-substitute peels."""
        basic_values: dict[int, Fraction] = {}
        if reduced_cols:
            active = set(reduced_rows)
            row_maps: dict[int, dict[int, Fraction]] = {
                row: {} for row in reduced_rows
            }
            for col in reduced_cols:
                for row, coeff in self.columns[col]:
                    if row in active:
                        row_maps[row][col] = coeff
            core = _sparse_exact_solve(
                [row_maps[row] for row in reduced_rows],
                [self.rhs[row] for row in reduced_rows],
            )
            for col, value in core.items():
                if value < 0:
                    return None
                basic_values[col] = value
        row_terms: dict[int, list[tuple[int, Fraction]]] = {}
        for col, row, _ in peeled:
            row_terms[row] = []
        for col in basic_values:
            for row, coeff in self.columns[col]:
                if row in row_terms:
                    row_terms[row].append((col, coeff))
        for col, _, _ in peeled:
            for row, coeff in self.columns[col]:
                if row in row_terms:
                    row_terms[row].append((col, coeff))
        # Reverse peel order: later-peeled columns may appear in
        # earlier-peeled rows, never the other way around.
        for col, row, coeff in reversed(peeled):
            residual = self.rhs[row]
            for other_col, other_coeff in row_terms[row]:
                if other_col != col:
                    value = basic_values.get(other_col)
                    if value is not None and value != 0:
                        residual -= other_coeff * value
            value = residual / coeff
            if value < 0:
                return None
            basic_values[col] = value
        return basic_values

    def _dual(self, peeled, reduced_rows, reduced_cols) -> list[Fraction]:
        """Dual vector ``y`` with ``B^T y = c_B`` (forward-peel order)."""
        duals: list[Fraction] = [_ZERO] * self.num_rows
        solved_rows: set[int] = set()
        # Forward order: a peeled column's entries lie in its own row
        # plus rows peeled before it.
        for col, row, coeff in peeled:
            residual = self.costs[col]
            for other_row, other_coeff in self.columns[col]:
                if other_row in solved_rows:
                    residual -= other_coeff * duals[other_row]
            duals[row] = residual / coeff
            solved_rows.add(row)
        if reduced_cols:
            active = set(reduced_rows)
            transposed: list[dict[int, Fraction]] = []
            adjusted: list[Fraction] = []
            for col in reduced_cols:
                residual = self.costs[col]
                entries: dict[int, Fraction] = {}
                for row, coeff in self.columns[col]:
                    if row in active:
                        entries[row] = coeff
                    elif row in solved_rows:
                        residual -= coeff * duals[row]
                transposed.append(entries)
                adjusted.append(residual)
            core = _sparse_exact_solve(transposed, adjusted)
            for row, value in core.items():
                duals[row] = value
        return duals


class HybridBackend:
    """Certify-first exact LP backend (see module docstring).

    Attributes
    ----------
    last_path:
        ``"certified"`` when the most recent solve was proven optimal
        from the float basis, ``"fallback"`` when it went through the
        exact simplex. Diagnostic only.
    """

    name = "hybrid-certified"

    def __init__(self) -> None:
        self._float_backend = ScipyBackend()
        self._fallback = ExactSimplexBackend()
        self.last_path: str | None = None

    def solve(self, program: LinearProgram) -> LPSolution:
        """Solve exactly; certify the float basis or fall back.

        Raises
        ------
        InfeasibleProgramError, UnboundedProgramError
            Always diagnosed by the *exact* simplex — a float
            infeasible/unbounded verdict only routes to the fallback,
            it is never trusted as a proof.
        """
        basis: list[int] | None = None
        if program.num_constraints() > 0:
            float_result = self._float_backend.solve_raw(program)
            if float_result.status == 0:
                standard = _StandardForm(program)
                basis = standard.identify_basis(float_result)
                if basis is not None:
                    certified = standard.certify(basis)
                    if certified is not None:
                        self.last_path = "certified"
                        return certified
        self.last_path = "fallback"
        solution = self._fallback.solve(program, initial_basis=basis)
        return LPSolution(
            values=solution.values,
            objective=solution.objective,
            backend=f"{self.name}(exact-simplex-fallback)",
        )
