"""Certify-first exact LP solving (float solve + exact certificate).

The paper's theorem checks need *exact rational* LP optima, but the
exact simplex pays big-integer pivot arithmetic for every one of its
(many, on the paper's degenerate programs) iterations. This backend
inverts the work split:

1. **Solve in floats.** HiGHS (via scipy) finds an optimal vertex in
   microseconds-to-milliseconds.
2. **Identify the basis.** The support of the float solution (positive
   variables and slacks) is completed to a square basis of the equality
   form ``[A_ub I; A_eq 0]`` by a float Gaussian elimination — cheap and
   allowed to be heuristic, because nothing downstream trusts it.
3. **Reconstruct exactly.** One sparse exact basis solve rebuilds the
   vertex in exact rationals: *singleton peeling* strips every basis
   column with a single remaining row (all inactive slacks, in
   particular), and the remaining core goes through a Markowitz-ordered
   LU elimination over ``Fraction`` (:func:`_sparse_exact_solve`) that
   exploits the near-chain structure of tight privacy constraints.
4. **Certify.** Exact primal feasibility (basic values ``>= 0``; the
   equality form holds by construction) and exact dual feasibility
   (``c_j - y^T A_j >= 0`` for every column, with ``B^T y = c_B``) are
   checked over ``Fraction``. Complementary slackness is automatic for a
   basic pair. A certificate that passes *is* a proof of optimality —
   the float solver's numerics never enter the result.
5. **Fall back.** If anything fails — degenerate float basis, singular
   reconstruction, a violated certificate — the exact integer-tableau
   simplex solves from scratch, warm-started from the identified basis
   when one exists.

The happy path costs one float solve plus one exact factorization
instead of one exact factorization *per pivot*.
"""

from __future__ import annotations

import time
from fractions import Fraction

import numpy as np

from ..exceptions import ValidationError
from .base import LinearProgram, LPSolution, coerce_exact
from .scipy_backend import ScipyBackend, solve_with_optimal_basis
from .simplex import ExactSimplexBackend


def _observe_certify(stage: str, seconds: float) -> None:
    """Record one certification timing in the default metrics registry.

    ``stage`` is ``"basis"`` (certifying a float-identified basis inside
    :meth:`HybridBackend.solve`) or ``"candidate"`` (strong-duality
    certification of an external candidate via
    :func:`find_certificate`).
    """
    from ..obs.metrics import default_registry

    default_registry().histogram(
        "repro_solver_certify_seconds",
        "Exact certification time in the hybrid LP pipeline, by stage.",
        labels=("stage",),
    ).labels(stage).observe(seconds)

__all__ = [
    "HybridBackend",
    "certify_solution",
    "find_certificate",
    "replay_certificate",
    "reconstruct_vertex",
]

_ZERO = Fraction(0)

#: Support threshold: float values above this count as "in the basis".
_SUPPORT_TOL = 1e-8
#: Pivot threshold for the float basis-completion elimination.
_PIVOT_TOL = 1e-9


def _sparse_exact_solve(
    row_maps: list[dict[int, Fraction]], rhs: list[Fraction]
) -> dict[int, Fraction]:
    """Solve a square sparse system exactly by LU-style elimination.

    ``row_maps[k]`` maps column id -> coefficient; the system must be
    square and nonsingular (:class:`ValidationError` otherwise). Pivots
    follow the Markowitz rule — minimize ``(row_nnz-1)*(col_nnz-1)`` —
    which keeps fill-in near zero on the chain-structured cores the
    certify step produces (tight privacy constraints couple only two
    mechanism entries each), so the exact solve stays close to linear
    in the number of nonzeros instead of cubic in the core size.

    Strict wrapper over :func:`_sparse_exact_solve_flexible` (one shared
    elimination core): any dropped row or unpivoted unknown is an error
    here rather than a zero-filled degree of freedom.
    """
    size = len(row_maps)
    columns: set[int] = set()
    for row in row_maps:
        columns.update(row)
    if len(columns) != size:
        raise ValidationError("sparse system is not square")
    solution = _sparse_exact_solve_flexible(row_maps, rhs, strict=True)
    if solution is None or len(solution) != size:
        raise ValidationError("sparse system is singular")
    return solution


class _StandardForm:
    """Equality-form view ``[A_ub I; A_eq 0] [x; s] = b`` of a program.

    Holds the exact (Fraction) column-sparse matrix, per-column costs,
    and a float dense copy for basis identification.
    """

    def __init__(self, program: LinearProgram) -> None:
        self.program = program
        self.num_structural = program.num_vars
        le = program.le_constraints
        eq = program.eq_constraints
        self.num_le = len(le)
        self.num_rows = len(le) + len(eq)
        self.num_cols = self.num_structural + self.num_le

        cells: dict[tuple[int, int], Fraction] = {}
        rhs: list[Fraction] = []
        for row_index, (terms, bound) in enumerate(le + eq):
            rhs.append(coerce_exact(bound))
            for var, coeff in terms:
                key = (row_index, var)
                cells[key] = cells.get(key, _ZERO) + coerce_exact(coeff)
        self.rhs = rhs
        columns: list[list[tuple[int, Fraction]]] = [
            [] for _ in range(self.num_cols)
        ]
        for (row_index, var), coeff in cells.items():
            if coeff != 0:
                columns[var].append((row_index, coeff))
        for var in range(self.num_structural):
            columns[var].sort()
        for slack_index in range(self.num_le):
            columns[self.num_structural + slack_index].append(
                (slack_index, Fraction(1))
            )
        self.columns = columns

        costs: list[Fraction] = [_ZERO] * self.num_cols
        for var, coeff in program.objective_terms:
            costs[var] += coerce_exact(coeff)
        self.costs = costs

    def float_matrix(self) -> np.ndarray:
        """Dense float copy of the equality-form matrix."""
        matrix = np.zeros((self.num_rows, self.num_cols))
        for col, entries in enumerate(self.columns):
            for row, coeff in entries:
                matrix[row, col] = float(coeff)
        return matrix

    # ------------------------------------------------------------------
    def identify_basis(self, float_result) -> list[int] | None:
        """Complete the float solution's support to a basis, or ``None``.

        Columns are admitted in order of decreasing float value (the
        solution's support first), padded by the remaining slack then
        structural columns; a float Gaussian elimination keeps only
        independent ones. Heuristic by design — exact certification
        decides whether the answer stands.
        """
        m = self.num_rows
        if m == 0:
            return None
        slack_attr = getattr(float_result, "slack", None)
        if slack_attr is None:
            slack = np.zeros(self.num_le)
        else:
            slack = np.asarray(slack_attr, dtype=float).ravel()
            if slack.size != self.num_le:
                slack = np.zeros(self.num_le)
        values = np.concatenate(
            [np.asarray(float_result.x, dtype=float).ravel(), slack]
        )
        tol = _SUPPORT_TOL * max(1.0, float(np.max(np.abs(values), initial=0.0)))
        support = [
            int(j)
            for j in np.argsort(-values, kind="stable")
            if values[j] > tol
        ]
        in_support = set(support)
        work = self.float_matrix()
        # Degenerate vertices admit many bases; only ones whose every
        # column has zero reduced cost are dual feasible. Rank padding
        # columns by |reduced cost| under HiGHS's dual marginals so the
        # completion lands on a certifiable basis, not just any basis.
        reduced_costs = self._float_reduced_costs(float_result, work)
        padding_pool = [j for j in range(self.num_cols) if j not in in_support]
        if reduced_costs is None:
            # No duals available: prefer slack columns (cheap singletons).
            padding = [j for j in padding_pool if j >= self.num_structural]
            padding += [j for j in padding_pool if j < self.num_structural]
        else:
            rank = np.abs(reduced_costs)
            padding = sorted(
                padding_pool, key=lambda j: (float(rank[j]), j)
            )
        used = np.zeros(m, dtype=bool)
        selected: list[int] = []
        for col in support + padding:
            if len(selected) == m:
                break
            candidate = np.where(~used, np.abs(work[:, col]), 0.0)
            pivot_row = int(np.argmax(candidate))
            if candidate[pivot_row] <= _PIVOT_TOL:
                continue
            selected.append(col)
            used[pivot_row] = True
            factor = work[:, col] / work[pivot_row, col]
            factor[pivot_row] = 0.0
            work -= np.outer(factor, work[pivot_row])
        if len(selected) < m:
            return None
        return selected

    def _float_reduced_costs(self, float_result, matrix: np.ndarray):
        """Float reduced costs ``c - A^T y`` from HiGHS's marginals."""
        ineqlin = getattr(float_result, "ineqlin", None)
        eqlin = getattr(float_result, "eqlin", None)
        duals = np.zeros(self.num_rows)
        try:
            if self.num_le:
                marginals = np.asarray(
                    ineqlin.marginals, dtype=float
                ).ravel()
                if marginals.size != self.num_le:
                    return None
                duals[: self.num_le] = marginals
            if self.num_rows > self.num_le:
                marginals = np.asarray(eqlin.marginals, dtype=float).ravel()
                if marginals.size != self.num_rows - self.num_le:
                    return None
                duals[self.num_le :] = marginals
        except (AttributeError, TypeError, ValueError):
            return None
        costs = np.array([float(c) for c in self.costs])
        return costs - matrix.T @ duals

    # ------------------------------------------------------------------
    def certify(self, basis: list[int]) -> LPSolution | None:
        """Exactly reconstruct and certify the vertex of ``basis``.

        Returns the certified :class:`LPSolution` or ``None`` when the
        basis is singular, primal infeasible, or not dual optimal.
        """
        peeled, reduced_rows, reduced_cols = self._peel(basis)
        if peeled is None:
            return None
        try:
            basic_values = self._primal(peeled, reduced_rows, reduced_cols)
            if basic_values is None:
                return None
            duals = self._dual(peeled, reduced_rows, reduced_cols)
        except ValidationError:
            return None  # singular reduced system: float basis was wrong

        # Dual feasibility: nonnegative reduced cost for every column.
        for col, entries in enumerate(self.columns):
            reduced_cost = self.costs[col] - sum(
                coeff * duals[row] for row, coeff in entries
            )
            if reduced_cost < 0:
                return None

        values = [_ZERO] * self.num_structural
        for col, value in basic_values.items():
            if col < self.num_structural:
                values[col] = value
        objective = sum(
            (
                coerce_exact(coeff) * values[var]
                for var, coeff in self.program.objective_terms
            ),
            _ZERO,
        )
        return LPSolution(
            values=values, objective=objective, backend=HybridBackend.name
        )

    # ------------------------------------------------------------------
    def _peel(self, basis: list[int]):
        """Strip singleton basis columns before the dense exact solve.

        Repeatedly removes a basis column with exactly one entry in the
        still-active rows (recording ``(col, row, coeff)``), shrinking
        the system that needs a Bareiss factorization to the active
        core. Inactive constraints' slack columns — the bulk of the
        basis on the paper's LPs — peel away immediately.
        """
        active_rows = set(range(self.num_rows))
        active_cols = set(basis)
        if len(active_cols) != self.num_rows:
            return None, None, None
        row_to_cols: dict[int, list[tuple[int, Fraction]]] = {
            row: [] for row in active_rows
        }
        counts: dict[int, int] = {}
        for col in basis:
            entries = self.columns[col]
            counts[col] = len(entries)
            for row, coeff in entries:
                row_to_cols[row].append((col, coeff))
        queue = [col for col, count in counts.items() if count <= 1]
        peeled: list[tuple[int, int, Fraction]] = []
        while queue:
            col = queue.pop()
            if col not in active_cols:
                continue
            live = [
                (row, coeff)
                for row, coeff in self.columns[col]
                if row in active_rows
            ]
            if not live:
                return None, None, None  # zero column: singular basis
            if len(live) > 1:
                continue  # count went stale; still multi-row
            row, coeff = live[0]
            peeled.append((col, row, coeff))
            active_cols.remove(col)
            active_rows.remove(row)
            for other_col, _ in row_to_cols[row]:
                if other_col in active_cols:
                    counts[other_col] -= 1
                    if counts[other_col] <= 1:
                        queue.append(other_col)
        reduced_rows = sorted(active_rows)
        reduced_cols = [col for col in basis if col in active_cols]
        return peeled, reduced_rows, reduced_cols

    def _primal(
        self, peeled, reduced_rows, reduced_cols
    ) -> dict[int, Fraction] | None:
        """Basic values: sparse solve on the core, back-substitute peels."""
        basic_values: dict[int, Fraction] = {}
        if reduced_cols:
            active = set(reduced_rows)
            row_maps: dict[int, dict[int, Fraction]] = {
                row: {} for row in reduced_rows
            }
            for col in reduced_cols:
                for row, coeff in self.columns[col]:
                    if row in active:
                        row_maps[row][col] = coeff
            core = _sparse_exact_solve(
                [row_maps[row] for row in reduced_rows],
                [self.rhs[row] for row in reduced_rows],
            )
            for col, value in core.items():
                if value < 0:
                    return None
                basic_values[col] = value
        row_terms: dict[int, list[tuple[int, Fraction]]] = {}
        for col, row, _ in peeled:
            row_terms[row] = []
        for col in basic_values:
            for row, coeff in self.columns[col]:
                if row in row_terms:
                    row_terms[row].append((col, coeff))
        for col, _, _ in peeled:
            for row, coeff in self.columns[col]:
                if row in row_terms:
                    row_terms[row].append((col, coeff))
        # Reverse peel order: later-peeled columns may appear in
        # earlier-peeled rows, never the other way around.
        for col, row, coeff in reversed(peeled):
            residual = self.rhs[row]
            for other_col, other_coeff in row_terms[row]:
                if other_col != col:
                    value = basic_values.get(other_col)
                    if value is not None and value != 0:
                        residual -= other_coeff * value
            value = residual / coeff
            if value < 0:
                return None
            basic_values[col] = value
        return basic_values

    def _dual(self, peeled, reduced_rows, reduced_cols) -> list[Fraction]:
        """Dual vector ``y`` with ``B^T y = c_B`` (forward-peel order)."""
        duals: list[Fraction] = [_ZERO] * self.num_rows
        solved_rows: set[int] = set()
        # Forward order: a peeled column's entries lie in its own row
        # plus rows peeled before it.
        for col, row, coeff in peeled:
            residual = self.costs[col]
            for other_row, other_coeff in self.columns[col]:
                if other_row in solved_rows:
                    residual -= other_coeff * duals[other_row]
            duals[row] = residual / coeff
            solved_rows.add(row)
        if reduced_cols:
            active = set(reduced_rows)
            transposed: list[dict[int, Fraction]] = []
            adjusted: list[Fraction] = []
            for col in reduced_cols:
                residual = self.costs[col]
                entries: dict[int, Fraction] = {}
                for row, coeff in self.columns[col]:
                    if row in active:
                        entries[row] = coeff
                    elif row in solved_rows:
                        residual -= coeff * duals[row]
                transposed.append(entries)
                adjusted.append(residual)
            core = _sparse_exact_solve(transposed, adjusted)
            for row, value in core.items():
                duals[row] = value
        return duals


class HybridBackend:
    """Certify-first exact LP backend (see module docstring).

    Attributes
    ----------
    last_path:
        ``"certified"`` when the most recent solve was proven optimal
        from the float basis, ``"fallback"`` when it went through the
        exact simplex. Diagnostic only.
    """

    name = "hybrid-certified"

    def __init__(self) -> None:
        self._float_backend = ScipyBackend()
        self._fallback = ExactSimplexBackend()
        self.last_path: str | None = None

    def solve(self, program: LinearProgram) -> LPSolution:
        """Solve exactly; certify the float basis or fall back.

        Raises
        ------
        InfeasibleProgramError, UnboundedProgramError
            Always diagnosed by the *exact* simplex — a float
            infeasible/unbounded verdict only routes to the fallback,
            it is never trusted as a proof.
        """
        basis: list[int] | None = None
        if program.num_constraints() > 0:
            float_result = self._float_backend.solve_raw(program)
            if float_result.status == 0:
                standard = _StandardForm(program)
                basis = standard.identify_basis(float_result)
                if basis is not None:
                    t0 = time.perf_counter()
                    certified = standard.certify(basis)
                    _observe_certify("basis", time.perf_counter() - t0)
                    if certified is not None:
                        self.last_path = "certified"
                        return certified
        self.last_path = "fallback"
        solution = self._fallback.solve(program, initial_basis=basis)
        return LPSolution(
            values=solution.values,
            objective=solution.objective,
            backend=f"{self.name}(exact-simplex-fallback)",
        )


# ---------------------------------------------------------------------------
# Candidate certification: prove an externally-produced exact solution
# optimal for a program, without re-solving the program exactly. Used by
# the factor-space (derivability-reparameterized) pipeline, whose
# candidates come from a much smaller LP and must be certified against
# the full program before anything trusts the reformulation.
# ---------------------------------------------------------------------------

#: Tier-1 gate: skip the zero-fill dual heuristic when the dual system
#: has this many more unknowns (tight rows) than equations (support
#: columns) — heavily degenerate candidates almost never zero-fill to a
#: feasible dual, and tier 2 handles them directly.
_TIER1_SLACK_MARGIN = 3


def _sparse_exact_solve_flexible(
    row_maps: list[dict[int, Fraction]], rhs: list[Fraction], *, strict: bool = False
) -> dict[int, Fraction] | None:
    """Markowitz-ordered exact elimination; the shared solver core.

    With ``strict=False`` the system need not be square — the shapes the
    dual system of a degenerate vertex produces are tolerated: redundant
    equations are dropped when consistent (``None`` when not), and
    unknowns that never acquire a pivot are left out of the returned map
    — callers read them as zero, which is exactly the "pad the basis
    with this row's slack" choice. The result is then a *candidate*
    only; callers must validate it.

    With ``strict=True`` (the :func:`_sparse_exact_solve` wrapper) a row
    running empty means the square system is singular: ``None`` is
    returned immediately.
    """
    rows = [dict(row) for row in row_maps]
    values = list(rhs)
    col_rows: dict[int, set[int]] = {}
    for index, row in enumerate(rows):
        for col in row:
            col_rows.setdefault(col, set()).add(index)
    active = set(range(len(rows)))
    order: list[tuple[int, int]] = []
    while active:
        best = None
        empties = [index for index in active if not rows[index]]
        for index in empties:
            if strict or values[index] != 0:
                return None  # singular (strict) / inconsistent equation
            active.discard(index)
        if not active:
            break
        for row_index in active:
            row = rows[row_index]
            row_cost = len(row) - 1
            for col in row:
                score = row_cost * (len(col_rows[col]) - 1)
                if best is None or score < best[0]:
                    best = (score, row_index, col)
            if best[0] == 0:
                break
        _, pivot_row, pivot_col = best
        order.append((pivot_row, pivot_col))
        active.remove(pivot_row)
        base = rows[pivot_row]
        pivot = base[pivot_col]
        for other_index in list(col_rows[pivot_col]):
            if other_index == pivot_row or other_index not in active:
                continue
            other = rows[other_index]
            factor = other.pop(pivot_col) / pivot
            col_rows[pivot_col].discard(other_index)
            for col, coeff in base.items():
                if col == pivot_col:
                    continue
                updated = other.get(col, _ZERO) - factor * coeff
                if updated == 0:
                    if col in other:
                        del other[col]
                        col_rows[col].discard(other_index)
                else:
                    if col not in other:
                        col_rows.setdefault(col, set()).add(other_index)
                    other[col] = updated
            values[other_index] -= factor * values[pivot_row]
        for col in base:
            col_rows[col].discard(pivot_row)
    solution: dict[int, Fraction] = {}
    for pivot_row, pivot_col in reversed(order):
        row = rows[pivot_row]
        residual = values[pivot_row]
        for col, coeff in row.items():
            if col != pivot_col:
                residual -= coeff * solution.get(col, _ZERO)
        solution[pivot_col] = residual / row[pivot_col]
    return solution


def reconstruct_vertex(
    program: LinearProgram, basis: list[int], *, standard=None
) -> LPSolution | None:
    """Exact basic solution of ``basis`` — primal values only.

    ``basis`` lists columns of the equality form ``[A_ub I; A_eq 0]``
    (e.g. from
    :func:`repro.solvers.scipy_backend.solve_with_optimal_basis`).
    Returns ``None`` when the basis is singular or its basic solution is
    not non-negative. No optimality claim is made: the caller certifies
    whatever it derives from the vertex.
    """
    if standard is None:
        standard = _StandardForm(program)
    peeled, reduced_rows, reduced_cols = standard._peel(basis)
    if peeled is None:
        return None
    try:
        basic_values = standard._primal(peeled, reduced_rows, reduced_cols)
    except ValidationError:
        return None
    if basic_values is None:
        return None
    values = [_ZERO] * standard.num_structural
    for col, value in basic_values.items():
        if col < standard.num_structural:
            values[col] = value
    objective = sum(
        (
            coerce_exact(coeff) * values[var]
            for var, coeff in program.objective_terms
        ),
        _ZERO,
    )
    return LPSolution(values=values, objective=objective, backend="exact-basis")


def certify_solution(
    program: LinearProgram, values, *, name: str = "certified-candidate"
) -> LPSolution | None:
    """Prove an exact candidate solution optimal, or return ``None``.

    Thin wrapper over :func:`find_certificate` that discards the dual
    vector; callers that need to *persist* the certificate (e.g.
    :mod:`repro.release.artifacts`, whose ``repro cache verify`` replays
    it later with zero solver calls) use :func:`find_certificate`
    directly and store the duals alongside the candidate.
    """
    t0 = time.perf_counter()
    found = find_certificate(program, values)
    _observe_certify("candidate", time.perf_counter() - t0)
    if found is None:
        return None
    objective, _ = found
    return LPSolution(values=list(values), objective=objective, backend=name)


def find_certificate(
    program: LinearProgram, values
) -> tuple[Fraction, dict[int, Fraction]] | None:
    """Find a strong-duality certificate; returns ``(objective, duals)``.

    The certificate is the textbook strong-duality triple, checked
    entirely over ``Fraction``:

    1. *primal feasibility* — every constraint of ``program`` holds at
       ``values`` exactly (and ``values >= 0``);
    2. *dual feasibility* — a multiplier vector ``y`` (``u <= 0`` on
       inequality rows, free on equalities) with non-negative reduced
       cost ``c_j - y^T A_j`` on every column;
    3. *strong duality* — ``b^T y`` equals the candidate objective.

    ``duals`` maps row ids (inequality rows keep their index,
    equalities follow at ``len(le) + k``) to nonzero multipliers; the
    pair revalidates later via :func:`replay_certificate` without any
    solver involvement.

    The dual vector is searched in two tiers, both heuristic and both
    fully validated (a bad guess degrades to ``None``, never to a wrong
    certificate): first a basis-free solve of the complementary-
    slackness equations over the tight rows (zero-filling free duals),
    then — for the degenerate candidates where zero-fill fails — the
    exact duals of the optimal basis a direct HiGHS float solve of
    ``program`` reports. Candidates that are optimal but sit on no
    certifiable dual (or when both tiers misfire) return ``None`` and
    the caller falls back to a full exact solve.
    """
    num = program.num_vars
    if len(values) != num:
        raise ValidationError(
            f"candidate has {len(values)} values for {num} variables"
        )
    for value in values:
        if value < 0:
            return None
    le = program.le_constraints
    eq = program.eq_constraints
    tight: list[int] = []
    for row_index, (terms, rhs) in enumerate(le):
        activity = sum(coerce_exact(c) * values[var] for var, c in terms)
        rhs = coerce_exact(rhs)
        if activity > rhs:
            return None
        if activity == rhs:
            tight.append(row_index)
    for terms, rhs in eq:
        activity = sum(coerce_exact(c) * values[var] for var, c in terms)
        if activity != coerce_exact(rhs):
            return None

    costs = [_ZERO] * num
    for var, coeff in program.objective_terms:
        costs[var] += coerce_exact(coeff)
    objective = sum((costs[j] * values[j] for j in range(num)), _ZERO)
    support = [j for j in range(num) if values[j] > 0]

    # Row ids: inequality rows keep their index, equalities follow.
    base = len(le)
    tight_set = set(tight)
    col_entries: list[list[tuple[int, Fraction]]] = [[] for _ in range(num)]
    for row_index in tight:
        terms, _ = le[row_index]
        for var, coeff in terms:
            col_entries[var].append((row_index, coerce_exact(coeff)))
    for offset, (terms, _) in enumerate(eq):
        for var, coeff in terms:
            col_entries[var].append((base + offset, coerce_exact(coeff)))

    def validate(duals: dict[int, Fraction]) -> bool:
        for row_index in tight:
            if duals.get(row_index, _ZERO) > 0:
                return False
        for j in range(num):
            reduced = costs[j] - sum(
                coeff * duals.get(row, _ZERO)
                for row, coeff in col_entries[j]
            )
            if reduced < 0:
                return False
        dual_objective = _ZERO
        for row_index in tight:
            dual = duals.get(row_index, _ZERO)
            if dual:
                dual_objective += dual * coerce_exact(le[row_index][1])
        for offset, (_, rhs) in enumerate(eq):
            dual = duals.get(base + offset, _ZERO)
            if dual:
                dual_objective += dual * coerce_exact(rhs)
        return dual_objective == objective

    # Tier 1: complementary slackness as a (near-square) linear system.
    unknowns = len(tight) + len(eq)
    if unknowns <= len(support) + _TIER1_SLACK_MARGIN:
        duals = _sparse_exact_solve_flexible(
            [dict(col_entries[j]) for j in support],
            [costs[j] for j in support],
        )
        if duals is not None and validate(duals):
            return objective, {
                row: value for row, value in duals.items() if value != 0
            }

    # Tier 2: exact duals of the basis a direct HiGHS solve lands on.
    basis = solve_with_optimal_basis(program)
    if basis is None:
        return None
    standard = _StandardForm(program)
    peeled, reduced_rows, reduced_cols = standard._peel(basis)
    if peeled is None:
        return None
    try:
        dual_vector = standard._dual(peeled, reduced_rows, reduced_cols)
    except ValidationError:
        return None
    duals = {
        row: value for row, value in enumerate(dual_vector) if value != 0
    }
    if not all(dual_vector[row] == 0 for row in range(len(le)) if row not in tight_set):
        return None  # nonzero dual on a slack row: not complementary
    if validate(duals):
        return objective, duals
    return None


def replay_certificate(
    program: LinearProgram, values, duals
) -> Fraction | None:
    """Revalidate a stored strong-duality certificate — zero solves.

    ``values`` is the candidate primal point and ``duals`` a mapping of
    row ids (inequality rows by index, equality rows following at
    ``len(le) + k``) to exact multipliers, as produced by
    :func:`find_certificate`. Every check runs over ``Fraction``:
    primal feasibility, complementary slackness (nonzero duals only on
    tight inequality rows), dual sign and reduced-cost feasibility, and
    strong duality. Returns the certified objective, or ``None`` when
    any check fails — a corrupted or mismatched certificate degrades to
    rejection, never to a wrong acceptance.
    """
    num = program.num_vars
    if len(values) != num:
        return None
    for value in values:
        if value < 0:
            return None
    le = program.le_constraints
    eq = program.eq_constraints
    base = len(le)
    tight: set[int] = set()
    for row_index, (terms, rhs) in enumerate(le):
        activity = sum(coerce_exact(c) * values[var] for var, c in terms)
        if activity > coerce_exact(rhs):
            return None
        if activity == coerce_exact(rhs):
            tight.add(row_index)
    for terms, rhs in eq:
        activity = sum(coerce_exact(c) * values[var] for var, c in terms)
        if activity != coerce_exact(rhs):
            return None
    clean: dict[int, Fraction] = {}
    for row, value in duals.items():
        row = int(row)
        value = coerce_exact(value)
        if value == 0:
            continue
        if not 0 <= row < base + len(eq):
            return None
        if row < base:
            if row not in tight:
                return None  # nonzero dual on a slack row
            if value > 0:
                return None  # wrong sign for a <= row
        clean[row] = value
    costs = [_ZERO] * num
    for var, coeff in program.objective_terms:
        costs[var] += coerce_exact(coeff)
    objective = sum((costs[j] * values[j] for j in range(num)), _ZERO)
    adjust = [_ZERO] * num
    dual_objective = _ZERO
    for row, value in clean.items():
        terms, rhs = le[row] if row < base else eq[row - base]
        for var, coeff in terms:
            adjust[var] += coerce_exact(coeff) * value
        dual_objective += value * coerce_exact(rhs)
    for j in range(num):
        if costs[j] - adjust[j] < 0:
            return None
    if dual_objective != objective:
        return None
    return objective
