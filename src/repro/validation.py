"""Shared argument-validation helpers.

These helpers centralize the checks that appear across the library:
privacy parameters, result ranges, probability vectors and stochastic
matrices. They raise :class:`repro.exceptions.ValidationError` (or a
subclass) with actionable messages.

Two numeric regimes coexist in the library:

* *exact* — entries are :class:`fractions.Fraction` (or :class:`int`);
  validation is performed with exact comparisons;
* *float* — entries are floats / numpy floats; validation uses an
  absolute tolerance ``ATOL``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from fractions import Fraction
from numbers import Rational

import numpy as np

from .exceptions import NotStochasticError, ValidationError

__all__ = [
    "ATOL",
    "check_alpha",
    "check_result_range",
    "check_index",
    "check_probability_vector",
    "check_row_stochastic",
    "is_exact_array",
    "as_fraction",
    "as_fraction_matrix",
    "as_float_matrix",
]

#: Absolute tolerance used for float-regime stochasticity and privacy checks.
ATOL: float = 1e-9


def check_alpha(alpha: object, *, allow_endpoints: bool = False) -> None:
    """Validate a privacy parameter ``alpha``.

    The paper's privacy parameter lives in ``[0, 1]``: ``alpha = 0`` means
    no privacy and ``alpha = 1`` means absolute privacy (Section 2.1).
    Most constructions require the open interval ``(0, 1)``.

    Parameters
    ----------
    alpha:
        The candidate privacy parameter (float or Fraction).
    allow_endpoints:
        When true, accept ``alpha`` equal to 0 or 1.

    Raises
    ------
    ValidationError
        If ``alpha`` is not a real number in the required interval.
    """
    if isinstance(alpha, bool) or not isinstance(alpha, (int, float, Fraction)):
        raise ValidationError(
            f"alpha must be a real number in [0, 1], got {alpha!r}"
        )
    if isinstance(alpha, float) and not np.isfinite(alpha):
        raise ValidationError(f"alpha must be finite, got {alpha!r}")
    low_ok = alpha >= 0 if allow_endpoints else alpha > 0
    high_ok = alpha <= 1 if allow_endpoints else alpha < 1
    if not (low_ok and high_ok):
        interval = "[0, 1]" if allow_endpoints else "(0, 1)"
        raise ValidationError(f"alpha must lie in {interval}, got {alpha!r}")


def check_result_range(n: object) -> int:
    """Validate the maximum count ``n`` and return it as an ``int``.

    The result set of a count query over a database with ``n`` rows is
    ``N = {0, ..., n}``; mechanisms are ``(n+1) x (n+1)`` matrices.
    """
    if isinstance(n, bool) or not isinstance(n, (int, np.integer)):
        raise ValidationError(f"n must be an integer >= 1, got {n!r}")
    n = int(n)
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    return n


def check_index(value: object, n: int, *, name: str = "index") -> int:
    """Validate that ``value`` is an integer in ``{0, ..., n}``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if not 0 <= value <= n:
        raise ValidationError(
            f"{name} must lie in [0, {n}], got {value}"
        )
    return value


def is_exact_array(matrix: np.ndarray) -> bool:
    """Return ``True`` if ``matrix`` holds exact (Rational) entries.

    An object-dtype array whose entries are all :class:`numbers.Rational`
    (``int`` or :class:`~fractions.Fraction`) is considered exact.
    """
    if matrix.dtype != object:
        return False
    return all(isinstance(entry, Rational) for entry in matrix.flat)


def as_fraction(value: object, *, name: str = "value") -> Fraction:
    """Convert ``value`` to an exact :class:`~fractions.Fraction`.

    Floats are converted via :meth:`Fraction.limit_denominator` only when
    they are exactly representable; otherwise an error is raised, because
    silently rationalizing a float would hide precision bugs.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return Fraction(int(value))
    if isinstance(value, Rational):
        return Fraction(value.numerator, value.denominator)
    if isinstance(value, float):
        # Every float is technically an exact binary rational, but a value
        # like 0.1 converts to 3602879701896397/2**55 — almost never what
        # the caller meant. Accept only "clean" dyadic values (denominator
        # a small power of two, e.g. 0.5, 0.25, 0.375).
        exact = Fraction(value)
        denominator = exact.denominator
        if denominator <= 4096 and denominator & (denominator - 1) == 0:
            return exact
        raise ValidationError(
            f"{name}={value!r} is a float without a small exact binary "
            "value; pass a Fraction for exact-arithmetic APIs"
        )
    raise ValidationError(f"{name} must be rational, got {value!r}")


def as_fraction_matrix(rows: Iterable[Iterable[object]]) -> np.ndarray:
    """Build an object-dtype numpy matrix of Fractions from nested data."""
    data = [[as_fraction(entry) for entry in row] for row in rows]
    if not data:
        raise ValidationError("matrix must have at least one row")
    width = len(data[0])
    if width == 0 or any(len(row) != width for row in data):
        raise ValidationError("matrix rows must be non-empty and equal-length")
    out = np.empty((len(data), width), dtype=object)
    for i, row in enumerate(data):
        for j, entry in enumerate(row):
            out[i, j] = entry
    return out


def as_float_matrix(matrix: np.ndarray | Sequence[Sequence[float]]) -> np.ndarray:
    """Convert matrix-like data to a 2-D float64 numpy array."""
    out = np.asarray(
        [[float(entry) for entry in row] for row in np.asarray(matrix, dtype=object)]
    )
    if out.ndim != 2:
        raise ValidationError(f"matrix must be 2-D, got ndim={out.ndim}")
    return out


def check_probability_vector(
    vector: np.ndarray, *, exact: bool | None = None, name: str = "vector"
) -> None:
    """Validate that ``vector`` is a probability distribution.

    Parameters
    ----------
    vector:
        1-D array of probabilities.
    exact:
        Force exact (``True``) or tolerant (``False``) comparison; by
        default inferred from the array dtype.
    """
    vector = np.asarray(vector)
    if vector.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got ndim={vector.ndim}")
    if exact is None:
        exact = is_exact_array(vector)
    total = sum(vector.tolist())
    if exact:
        if any(entry < 0 for entry in vector.tolist()):
            raise NotStochasticError(f"{name} has a negative entry")
        if total != 1:
            raise NotStochasticError(f"{name} sums to {total}, expected 1")
    else:
        values = vector.astype(float)
        if (values < -ATOL).any():
            raise NotStochasticError(f"{name} has a negative entry")
        if abs(float(values.sum()) - 1.0) > max(ATOL, ATOL * len(values)):
            raise NotStochasticError(
                f"{name} sums to {float(values.sum())!r}, expected 1"
            )


def check_row_stochastic(
    matrix: np.ndarray, *, exact: bool | None = None, name: str = "matrix"
) -> None:
    """Validate that every row of ``matrix`` is a probability distribution.

    Raises
    ------
    NotStochasticError
        With the index of the first offending row.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got ndim={matrix.ndim}")
    if exact is None:
        exact = is_exact_array(matrix)
    for i in range(matrix.shape[0]):
        try:
            check_probability_vector(
                matrix[i], exact=exact, name=f"{name} row {i}"
            )
        except NotStochasticError as err:
            raise NotStochasticError(str(err), row=i) from None
