"""Exact rational linear algebra substrate.

The paper's proofs are exact linear algebra over the field of rationals:
determinants of the geometric-mechanism matrix (Lemma 1), Cramer's rule
with closed-form determinants (Lemma 2), and the group structure of
generalized stochastic matrices (Poole 1995, used in Theorem 2). This
subpackage provides those tools with :class:`fractions.Fraction`
arithmetic so the paper's identities can be verified *exactly*, not only
to floating tolerance.

Modules
-------
:mod:`repro.linalg.rational`
    :class:`RationalMatrix` — exact dense matrices (multiply, determinant,
    inverse, solve).
:mod:`repro.linalg.toeplitz`
    The Kac-Murdock-Szego matrix ``K[i,j] = alpha^{|i-j|}`` (the paper's
    ``G'``), its closed-form determinant and tridiagonal inverse.
:mod:`repro.linalg.stochastic`
    Row-stochastic and generalized-stochastic matrix utilities.
"""

from .rational import RationalMatrix
from .stochastic import (
    is_generalized_stochastic,
    is_row_stochastic,
    random_stochastic_matrix,
    row_sums,
)
from .toeplitz import (
    kms_determinant,
    kms_inverse,
    kms_matrix,
    tridiagonal_premultiply,
)

__all__ = [
    "RationalMatrix",
    "is_generalized_stochastic",
    "is_row_stochastic",
    "random_stochastic_matrix",
    "row_sums",
    "kms_determinant",
    "kms_inverse",
    "kms_matrix",
    "tridiagonal_premultiply",
]
