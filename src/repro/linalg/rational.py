"""Exact dense matrices over the rationals.

:class:`RationalMatrix` is a small, dependency-free exact matrix type used
wherever the paper states exact identities: Lemma 1's determinant formula,
the factorization ``T = G^{-1} M`` of Theorem 2, and the reproduction of
the paper's Tables 1 and 2. Entries are :class:`fractions.Fraction`.

The implementation favors clarity over asymptotics; mechanism matrices in
this library are ``(n+1) x (n+1)`` for database sizes ``n`` small enough
that cubic-time fraction arithmetic is instantaneous.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from fractions import Fraction
from math import gcd, prod

import numpy as np

from ..exceptions import ValidationError
from ..validation import as_fraction

__all__ = ["RationalMatrix"]


def _cleared_integer_rows(
    rows: Sequence[Sequence[Fraction]],
) -> tuple[list[list[int]], list[int]]:
    """Clear denominators once per row.

    Returns integer rows plus the per-row multiplier (the lcm of the
    row's denominators) so callers can undo the scaling after an
    integer-only elimination.
    """
    work: list[list[int]] = []
    multipliers: list[int] = []
    for row in rows:
        multiplier = 1
        for entry in row:
            denominator = entry.denominator
            multiplier *= denominator // gcd(multiplier, denominator)
        work.append(
            [
                entry.numerator * (multiplier // entry.denominator)
                for entry in row
            ]
        )
        multipliers.append(multiplier)
    return work, multipliers


def _fraction_free_gauss_jordan(
    work: list[list[int]], size: int, width: int, *, context: str
) -> int:
    """In-place fraction-free (Bareiss-style) Gauss-Jordan over ints.

    Reduces the ``size x width`` augmented integer matrix so the left
    block becomes ``d * I`` and returns ``d``; column ``size + k`` then
    holds ``d`` times the solution of the ``k``-th augmented system.
    The one-step update ``(pivot * a[i][j] - a[i][k] * a[k][j]) / prev``
    keeps every intermediate entry an exact integer (a minor of the
    input), eliminating per-step Fraction gcd churn; after each step the
    diagonal of every processed row equals the current pivot.

    Raises
    ------
    ValidationError
        When no nonzero pivot exists (singular matrix).
    """
    prev = 1
    for col in range(size):
        pivot_row = next(
            (r for r in range(col, size) if work[r][col] != 0), None
        )
        if pivot_row is None:
            raise ValidationError(f"matrix is singular; {context}")
        if pivot_row != col:
            work[col], work[pivot_row] = work[pivot_row], work[col]
        pivot = work[col][col]
        base = work[col]
        for r in range(size):
            if r == col:
                continue
            row = work[r]
            factor = row[col]
            for j in range(col + 1, width):
                row[j] = (pivot * row[j] - factor * base[j]) // prev
            row[col] = 0
        for r in range(col):
            work[r][r] = pivot
        prev = pivot
    return prev


class RationalMatrix:
    """An immutable exact matrix with :class:`~fractions.Fraction` entries.

    Parameters
    ----------
    rows:
        Nested iterable of rational entries (ints, Fractions, or floats
        with exact binary representations).

    Examples
    --------
    >>> m = RationalMatrix([[1, Fraction(1, 2)], [0, 1]])
    >>> m.determinant()
    Fraction(1, 1)
    >>> (m @ m.inverse()).is_identity()
    True
    """

    __slots__ = ("_rows", "_shape")

    def __init__(self, rows: Iterable[Iterable[object]]) -> None:
        data = [tuple(as_fraction(entry) for entry in row) for row in rows]
        if not data:
            raise ValidationError("matrix must have at least one row")
        width = len(data[0])
        if width == 0 or any(len(row) != width for row in data):
            raise ValidationError(
                "matrix rows must be non-empty and of equal length"
            )
        self._rows: tuple[tuple[Fraction, ...], ...] = tuple(data)
        self._shape = (len(data), width)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, size: int) -> "RationalMatrix":
        """Return the ``size x size`` identity matrix."""
        if size < 1:
            raise ValidationError(f"size must be >= 1, got {size}")
        return cls(
            [
                [Fraction(int(i == j)) for j in range(size)]
                for i in range(size)
            ]
        )

    @classmethod
    def from_fractions(
        cls, rows: Sequence[Sequence[Fraction]]
    ) -> "RationalMatrix":
        """Build from rows of entries that are already ``Fraction``.

        Skips the per-entry coercion of the main constructor; the
        arithmetic and elimination methods below route their results
        through this (their entries are Fractions by construction), so
        chained exact operations stop paying a quadratic re-validation
        per step. Shape is still validated; entry types are not.
        """
        matrix = cls.__new__(cls)
        data = tuple(tuple(row) for row in rows)
        if not data:
            raise ValidationError("matrix must have at least one row")
        width = len(data[0])
        if width == 0 or any(len(row) != width for row in data):
            raise ValidationError(
                "matrix rows must be non-empty and of equal length"
            )
        matrix._rows = data
        matrix._shape = (len(data), width)
        return matrix

    @classmethod
    def zeros(cls, rows: int, cols: int | None = None) -> "RationalMatrix":
        """Return a ``rows x cols`` matrix of zeros (square by default)."""
        cols = rows if cols is None else cols
        if rows < 1 or cols < 1:
            raise ValidationError("matrix dimensions must be >= 1")
        return cls([[Fraction(0)] * cols for _ in range(rows)])

    @classmethod
    def diagonal(cls, entries: Sequence[object]) -> "RationalMatrix":
        """Return a diagonal matrix with the given ``entries``."""
        values = [as_fraction(entry) for entry in entries]
        size = len(values)
        return cls(
            [
                [values[i] if i == j else Fraction(0) for j in range(size)]
                for i in range(size)
            ]
        )

    @classmethod
    def from_numpy(cls, array: np.ndarray) -> "RationalMatrix":
        """Build from a 2-D numpy array of rational-valued entries."""
        array = np.asarray(array)
        if array.ndim != 2:
            raise ValidationError(f"array must be 2-D, got ndim={array.ndim}")
        return cls(array.tolist())

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """The ``(rows, cols)`` dimensions."""
        return self._shape

    @property
    def is_square(self) -> bool:
        """Whether the matrix is square."""
        return self._shape[0] == self._shape[1]

    def __getitem__(self, key: tuple[int, int]) -> Fraction:
        i, j = key
        return self._rows[i][j]

    def row(self, i: int) -> tuple[Fraction, ...]:
        """Return row ``i`` as a tuple of Fractions."""
        return self._rows[i]

    def column(self, j: int) -> tuple[Fraction, ...]:
        """Return column ``j`` as a tuple of Fractions."""
        return tuple(row[j] for row in self._rows)

    def rows(self) -> tuple[tuple[Fraction, ...], ...]:
        """Return all rows (the underlying immutable data)."""
        return self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RationalMatrix):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def __repr__(self) -> str:
        body = ", ".join(
            "[" + ", ".join(str(entry) for entry in row) + "]"
            for row in self._rows
        )
        return f"RationalMatrix([{body}])"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "RationalMatrix") -> "RationalMatrix":
        self._check_same_shape(other, "add")
        return RationalMatrix.from_fractions(
            [
                [a + b for a, b in zip(ra, rb)]
                for ra, rb in zip(self._rows, other._rows)
            ]
        )

    def __sub__(self, other: "RationalMatrix") -> "RationalMatrix":
        self._check_same_shape(other, "subtract")
        return RationalMatrix.from_fractions(
            [
                [a - b for a, b in zip(ra, rb)]
                for ra, rb in zip(self._rows, other._rows)
            ]
        )

    def scale(self, factor: object) -> "RationalMatrix":
        """Return the matrix with every entry multiplied by ``factor``."""
        factor = as_fraction(factor, name="factor")
        return RationalMatrix.from_fractions(
            [[factor * entry for entry in row] for row in self._rows]
        )

    def scale_column(self, j: int, factor: object) -> "RationalMatrix":
        """Return a copy with column ``j`` multiplied by ``factor``."""
        factor = as_fraction(factor, name="factor")
        return RationalMatrix.from_fractions(
            [
                [
                    entry * factor if k == j else entry
                    for k, entry in enumerate(row)
                ]
                for row in self._rows
            ]
        )

    def __matmul__(self, other: "RationalMatrix") -> "RationalMatrix":
        if self._shape[1] != other._shape[0]:
            raise ValidationError(
                f"cannot multiply {self._shape} by {other._shape}"
            )
        other_cols = [other.column(j) for j in range(other._shape[1])]
        return RationalMatrix.from_fractions(
            [
                [
                    sum(a * b for a, b in zip(row, col))
                    for col in other_cols
                ]
                for row in self._rows
            ]
        )

    def matvec(self, vector: Sequence[object]) -> tuple[Fraction, ...]:
        """Multiply the matrix by a column vector."""
        values = [as_fraction(entry) for entry in vector]
        if len(values) != self._shape[1]:
            raise ValidationError(
                f"vector length {len(values)} does not match width "
                f"{self._shape[1]}"
            )
        return tuple(
            sum(a * b for a, b in zip(row, values)) for row in self._rows
        )

    def transpose(self) -> "RationalMatrix":
        """Return the transpose."""
        return RationalMatrix.from_fractions(
            [self.column(j) for j in range(self._shape[1])]
        )

    # ------------------------------------------------------------------
    # Elimination-based operations
    # ------------------------------------------------------------------
    def determinant(self) -> Fraction:
        """Return the exact determinant (fraction-free Bareiss elimination).

        Denominators are cleared once per row, the elimination runs over
        Python ints (every intermediate entry is a minor of the scaled
        matrix, so the single-step division is exact), and one division
        at the end restores the rational value — the same Fraction naive
        Gaussian elimination produces, without its per-step gcd churn.

        Raises
        ------
        ValidationError
            If the matrix is not square.
        """
        if not self.is_square:
            raise ValidationError("determinant requires a square matrix")
        size = self._shape[0]
        work, multipliers = _cleared_integer_rows(self._rows)
        sign = 1
        prev = 1
        for col in range(size - 1):
            pivot_row = next(
                (r for r in range(col, size) if work[r][col] != 0), None
            )
            if pivot_row is None:
                return Fraction(0)
            if pivot_row != col:
                work[col], work[pivot_row] = work[pivot_row], work[col]
                sign = -sign
            pivot = work[col][col]
            base = work[col]
            for r in range(col + 1, size):
                row = work[r]
                factor = row[col]
                for j in range(col + 1, size):
                    row[j] = (pivot * row[j] - factor * base[j]) // prev
                row[col] = 0
            prev = pivot
        return Fraction(sign * work[size - 1][size - 1], prod(multipliers))

    def inverse(self) -> "RationalMatrix":
        """Return the exact inverse (fraction-free Gauss-Jordan).

        Row denominators are cleared once — reducing the integer system
        ``[diag(m) A | diag(m)]`` directly yields ``A^{-1}`` — and the
        elimination itself is integer-only, with a single rational
        division per entry at the end.

        Raises
        ------
        ValidationError
            If the matrix is not square or is singular.
        """
        if not self.is_square:
            raise ValidationError("inverse requires a square matrix")
        size = self._shape[0]
        work, multipliers = _cleared_integer_rows(self._rows)
        for i, row in enumerate(work):
            row.extend(0 for _ in range(size))
            row[size + i] = multipliers[i]
        denominator = _fraction_free_gauss_jordan(
            work, size, 2 * size, context="no inverse exists"
        )
        return RationalMatrix.from_fractions(
            [
                [Fraction(entry, denominator) for entry in row[size:]]
                for row in work
            ]
        )

    def solve(self, rhs: Sequence[object]) -> tuple[Fraction, ...]:
        """Solve ``A x = rhs`` exactly for a square nonsingular ``A``.

        Uses the same fraction-free integer elimination as
        :meth:`inverse`: denominators of each row (including its rhs
        entry) are cleared once, then a single division per unknown
        restores the rational solution.
        """
        if not self.is_square:
            raise ValidationError("solve requires a square matrix")
        values = [as_fraction(entry) for entry in rhs]
        if len(values) != self._shape[0]:
            raise ValidationError(
                f"rhs length {len(values)} does not match size "
                f"{self._shape[0]}"
            )
        size = self._shape[0]
        augmented = [
            list(row) + [values[i]] for i, row in enumerate(self._rows)
        ]
        work, _ = _cleared_integer_rows(augmented)
        denominator = _fraction_free_gauss_jordan(
            work, size, size + 1, context="cannot solve"
        )
        return tuple(
            Fraction(work[i][size], denominator) for i in range(size)
        )

    def replace_column(
        self, j: int, column: Sequence[object]
    ) -> "RationalMatrix":
        """Return ``G(j, x)``: this matrix with column ``j`` replaced.

        This is the operation at the heart of Cramer's rule as used in
        Lemma 2 of the paper.
        """
        values = [as_fraction(entry) for entry in column]
        if len(values) != self._shape[0]:
            raise ValidationError(
                f"column length {len(values)} does not match height "
                f"{self._shape[0]}"
            )
        return RationalMatrix.from_fractions(
            [
                [
                    values[i] if k == j else entry
                    for k, entry in enumerate(row)
                ]
                for i, row in enumerate(self._rows)
            ]
        )

    # ------------------------------------------------------------------
    # Predicates and conversions
    # ------------------------------------------------------------------
    def is_identity(self) -> bool:
        """Whether this is exactly the identity matrix."""
        if not self.is_square:
            return False
        return all(
            entry == (1 if i == j else 0)
            for i, row in enumerate(self._rows)
            for j, entry in enumerate(row)
        )

    def is_nonnegative(self) -> bool:
        """Whether every entry is >= 0."""
        return all(entry >= 0 for row in self._rows for entry in row)

    def row_sums(self) -> tuple[Fraction, ...]:
        """Return the exact sum of each row."""
        return tuple(sum(row) for row in self._rows)

    def to_numpy(self) -> np.ndarray:
        """Return an object-dtype numpy array of Fractions."""
        out = np.empty(self._shape, dtype=object)
        for i, row in enumerate(self._rows):
            for j, entry in enumerate(row):
                out[i, j] = entry
        return out

    def to_float(self) -> np.ndarray:
        """Return a float64 numpy array (lossy)."""
        return np.array(
            [[float(entry) for entry in row] for row in self._rows]
        )

    # ------------------------------------------------------------------
    def _check_same_shape(self, other: "RationalMatrix", verb: str) -> None:
        if self._shape != other._shape:
            raise ValidationError(
                f"cannot {verb} matrices of shapes {self._shape} and "
                f"{other._shape}"
            )
