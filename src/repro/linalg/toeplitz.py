"""The Kac-Murdock-Szego (KMS) matrix and its closed forms.

The paper's matrix ``G'_{n,alpha}`` (Table 2) is, up to column scaling,
the symmetric Toeplitz matrix ``K[i, j] = alpha^{|i - j|}`` — known in the
literature as the Kac-Murdock-Szego matrix. Two classical facts drive the
paper's proofs and this library's fast paths:

* ``det K_m(alpha) = (1 - alpha^2)^(m-1)`` for the ``m x m`` matrix
  (Lemma 1 of the paper, proved there by column elimination);
* ``K_m(alpha)^{-1}`` is *tridiagonal*:

  .. math::

     K^{-1} = \\frac{1}{1-\\alpha^2}
     \\begin{pmatrix}
        1 & -\\alpha \\\\
        -\\alpha & 1+\\alpha^2 & -\\alpha \\\\
          & \\ddots & \\ddots & \\ddots \\\\
          &  & -\\alpha & 1+\\alpha^2 & -\\alpha \\\\
          &  &  & -\\alpha & 1
     \\end{pmatrix}

The tridiagonal inverse is what turns the paper's derivability test
(Theorem 2) into three-entry column conditions, and what lets the library
compute derivation factors ``T = G^{-1} M`` in closed form without a
numeric inversion.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..exceptions import ValidationError
from ..validation import as_fraction, check_alpha, is_exact_array
from .rational import RationalMatrix

__all__ = [
    "kms_matrix",
    "kms_determinant",
    "kms_inverse",
    "tridiagonal_premultiply",
]


def kms_matrix(size: int, alpha: object) -> RationalMatrix:
    """Return the ``size x size`` KMS matrix ``K[i,j] = alpha^{|i-j|}``.

    This is the paper's ``G'`` matrix (Table 2) for a result range of
    ``size`` values. ``alpha`` must be an exact rational in ``(0, 1)``.

    Examples
    --------
    >>> kms_matrix(2, Fraction(1, 2)).rows()
    ((Fraction(1, 1), Fraction(1, 2)), (Fraction(1, 2), Fraction(1, 1)))
    """
    if size < 1:
        raise ValidationError(f"size must be >= 1, got {size}")
    alpha = as_fraction(alpha, name="alpha")
    check_alpha(alpha)
    powers = [alpha**k for k in range(size)]
    return RationalMatrix(
        [[powers[abs(i - j)] for j in range(size)] for i in range(size)]
    )


def kms_determinant(size: int, alpha: object) -> Fraction:
    """Return ``det K_size(alpha) = (1 - alpha^2)^(size-1)`` exactly.

    This is the identity proved by induction in Lemma 1 of the paper.
    The library's test suite cross-checks it against Gaussian elimination
    on :func:`kms_matrix`.
    """
    if size < 1:
        raise ValidationError(f"size must be >= 1, got {size}")
    alpha = as_fraction(alpha, name="alpha")
    check_alpha(alpha)
    return (1 - alpha**2) ** (size - 1)


def kms_inverse(size: int, alpha: object) -> RationalMatrix:
    """Return the exact tridiagonal inverse of the KMS matrix.

    The inverse has ``1/(1-alpha^2)`` times: ``1`` at the two diagonal
    corners, ``1 + alpha^2`` on the interior diagonal, and ``-alpha`` on
    the two off-diagonals.
    """
    if size < 1:
        raise ValidationError(f"size must be >= 1, got {size}")
    alpha = as_fraction(alpha, name="alpha")
    check_alpha(alpha)
    if size == 1:
        return RationalMatrix([[Fraction(1)]])
    scale = 1 / (1 - alpha**2)
    rows: list[list[Fraction]] = []
    for i in range(size):
        row = [Fraction(0)] * size
        if i in (0, size - 1):
            row[i] = scale
        else:
            row[i] = (1 + alpha**2) * scale
        if i > 0:
            row[i - 1] = -alpha * scale
        if i < size - 1:
            row[i + 1] = -alpha * scale
        rows.append(row)
    return RationalMatrix(rows)


def tridiagonal_premultiply(alpha: object, matrix: np.ndarray) -> np.ndarray:
    """Compute ``K^{-1} @ matrix`` without forming the inverse.

    ``K`` is the KMS matrix whose size matches ``matrix.shape[0]``. The
    product is computed row-by-row from the tridiagonal stencil:

    * row 0:       ``(M[0] - alpha * M[1]) / (1 - alpha^2)``
    * interior r:  ``((1+alpha^2) M[r] - alpha (M[r-1]+M[r+1])) / (1-alpha^2)``
    * row m-1:     ``(M[m-1] - alpha * M[m-2]) / (1 - alpha^2)``

    Works for both float arrays and exact object (Fraction) arrays; the
    result has the same regime as the input.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValidationError(f"matrix must be 2-D, got ndim={matrix.ndim}")
    size = matrix.shape[0]
    exact = is_exact_array(matrix)
    if exact:
        alpha = as_fraction(alpha, name="alpha")
    else:
        alpha = float(alpha)
        matrix = matrix.astype(float)
    check_alpha(alpha)
    if size == 1:
        return matrix.copy()
    scale = 1 / (1 - alpha**2) if exact else 1.0 / (1.0 - alpha * alpha)
    out = np.empty_like(matrix)
    out[0] = (matrix[0] - alpha * matrix[1]) * scale
    out[size - 1] = (matrix[size - 1] - alpha * matrix[size - 2]) * scale
    middle_factor = 1 + alpha**2 if exact else 1.0 + alpha * alpha
    for r in range(1, size - 1):
        out[r] = (
            middle_factor * matrix[r] - alpha * (matrix[r - 1] + matrix[r + 1])
        ) * scale
    return out
