"""Row-stochastic and generalized-stochastic matrix utilities.

Lemma 1's proof relies on the fact (Poole, "The stochastic group",
Amer. Math. Monthly 1995) that non-singular *generalized* stochastic
matrices — square matrices whose rows sum to one with no sign condition —
form a group under multiplication. Consequently ``T = G^{-1} M`` always
has unit row sums, and derivability reduces to checking ``T >= 0``.

This module provides the predicates for both matrix classes, plus a
seeded random generator of row-stochastic matrices used throughout the
test-suite and benchmarks.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..exceptions import ValidationError
from ..validation import ATOL, is_exact_array
from .rational import RationalMatrix

__all__ = [
    "row_sums",
    "is_row_stochastic",
    "is_generalized_stochastic",
    "random_stochastic_matrix",
]


def row_sums(matrix: np.ndarray | RationalMatrix) -> list:
    """Return the per-row sums of a matrix (exact when entries are exact)."""
    if isinstance(matrix, RationalMatrix):
        return list(matrix.row_sums())
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValidationError(f"matrix must be 2-D, got ndim={matrix.ndim}")
    return [sum(row.tolist()) for row in matrix]


def is_generalized_stochastic(
    matrix: np.ndarray | RationalMatrix, *, atol: float = ATOL
) -> bool:
    """Whether every row of ``matrix`` sums to 1 (entries may be negative).

    Exact comparison for Fraction matrices, tolerance ``atol`` otherwise.
    """
    if isinstance(matrix, RationalMatrix):
        return all(total == 1 for total in matrix.row_sums())
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        return False
    if is_exact_array(matrix):
        return all(sum(row.tolist()) == 1 for row in matrix)
    sums = matrix.astype(float).sum(axis=1)
    return bool(np.all(np.abs(sums - 1.0) <= max(atol, atol * matrix.shape[1])))


def is_row_stochastic(
    matrix: np.ndarray | RationalMatrix, *, atol: float = ATOL
) -> bool:
    """Whether ``matrix`` is row-stochastic (rows sum to 1, entries >= 0)."""
    if isinstance(matrix, RationalMatrix):
        return matrix.is_nonnegative() and is_generalized_stochastic(matrix)
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        return False
    if is_exact_array(matrix):
        nonnegative = all(entry >= 0 for entry in matrix.flat)
    else:
        nonnegative = bool(np.all(matrix.astype(float) >= -atol))
    return nonnegative and is_generalized_stochastic(matrix, atol=atol)


def random_stochastic_matrix(
    size: int,
    *,
    rng: np.random.Generator | None = None,
    exact: bool = False,
    resolution: int = 1000,
) -> np.ndarray:
    """Sample a dense random row-stochastic ``size x size`` matrix.

    Parameters
    ----------
    size:
        Matrix dimension (>= 1).
    rng:
        Numpy random generator; a fresh default generator when omitted.
    exact:
        When true, return an object-dtype matrix of Fractions whose rows
        sum to exactly 1 (entries are multiples of ``1/resolution``).
    resolution:
        Denominator used for exact sampling.

    Returns
    -------
    numpy.ndarray
        Float64 matrix, or object-dtype Fraction matrix when ``exact``.
    """
    if size < 1:
        raise ValidationError(f"size must be >= 1, got {size}")
    if resolution < size:
        raise ValidationError(
            f"resolution must be >= size ({size}), got {resolution}"
        )
    rng = np.random.default_rng() if rng is None else rng
    if not exact:
        raw = rng.random((size, size)) + 1e-12
        return raw / raw.sum(axis=1, keepdims=True)
    out = np.empty((size, size), dtype=object)
    for i in range(size):
        # Random composition of `resolution` units into `size` parts.
        cuts = np.sort(rng.integers(0, resolution + 1, size=size - 1))
        parts = np.diff(np.concatenate(([0], cuts, [resolution])))
        for j in range(size):
            out[i, j] = Fraction(int(parts[j]), resolution)
    return out
