"""Tabular losses backed by an explicit matrix."""

from __future__ import annotations

import numpy as np

from ..exceptions import LossFunctionError
from .base import LossFunction, check_monotone

__all__ = ["TabularLoss"]


class TabularLoss(LossFunction):
    """A loss function defined by an explicit ``(n+1) x (n+1)`` table.

    Parameters
    ----------
    table:
        ``table[i][r]`` is the loss when the true result is ``i`` and the
        report is ``r``. Entries must be non-negative numbers.
    validate_monotone:
        When true (default), reject tables that violate the paper's
        monotonicity-in-``|i-r|`` assumption. Pass false to build
        deliberately non-conforming losses (used by the ablation
        benchmarks that probe where universality breaks).

    Notes
    -----
    The table is copied; later mutation of the source does not affect the
    loss function.
    """

    def __init__(self, table, *, validate_monotone: bool = True) -> None:
        matrix = np.asarray(table, dtype=object)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise LossFunctionError(
                f"loss table must be square 2-D, got shape {matrix.shape}"
            )
        if matrix.shape[0] < 2:
            raise LossFunctionError(
                "loss table must cover at least results {0, 1}"
            )
        for entry in matrix.flat:
            if isinstance(entry, bool) or not isinstance(
                entry, (int, float, type(matrix.flat[0]))
            ) and not hasattr(entry, "__float__"):
                raise LossFunctionError(
                    f"loss table entries must be numbers, got {entry!r}"
                )
            if entry < 0:
                raise LossFunctionError(
                    f"loss table entries must be >= 0, got {entry!r}"
                )
        self._table = matrix.copy()
        self.n = matrix.shape[0] - 1
        self.validated = bool(validate_monotone)
        if validate_monotone:
            check_monotone(self._table, self.n)

    def loss(self, true_result: int, reported_result: int):
        if not 0 <= true_result <= self.n:
            raise LossFunctionError(
                f"true_result must lie in [0, {self.n}], got {true_result}"
            )
        if not 0 <= reported_result <= self.n:
            raise LossFunctionError(
                f"reported_result must lie in [0, {self.n}], "
                f"got {reported_result}"
            )
        return self._table[true_result, reported_result]

    def matrix(self, n: int) -> np.ndarray:
        if n != self.n:
            raise LossFunctionError(
                f"tabular loss covers n={self.n}, requested n={n}"
            )
        return self._table.copy()

    def describe(self) -> str:
        suffix = "" if self.validated else ", unvalidated"
        return f"TabularLoss(n={self.n}{suffix})"
