"""Loss-function combinators.

Every combinator in this module preserves the paper's monotonicity
requirement when its operands satisfy it (non-negative scaling, shifts,
caps, maxima and sums of monotone functions of ``|i - r|`` are monotone
in ``|i - r|``). This lets consumers be modeled compositionally — e.g.
"absolute error, but any error beyond 10 is equally catastrophic" is
``CappedLoss(AbsoluteLoss(), cap=10)``.
"""

from __future__ import annotations

from collections.abc import Sequence
from fractions import Fraction

from ..exceptions import LossFunctionError
from .base import LossFunction

__all__ = [
    "ScaledLoss",
    "ShiftedLoss",
    "CappedLoss",
    "MaxLoss",
    "SumLoss",
    "ThresholdLoss",
]

_Number = (int, float, Fraction)


def _check_number(value: object, *, name: str, minimum: object = None):
    if isinstance(value, bool) or not isinstance(value, _Number):
        raise LossFunctionError(f"{name} must be a number, got {value!r}")
    if minimum is not None and value < minimum:
        raise LossFunctionError(
            f"{name} must be >= {minimum}, got {value!r}"
        )
    return value


class ScaledLoss(LossFunction):
    """``factor * base(i, r)`` for a non-negative ``factor``."""

    def __init__(self, base: LossFunction, factor) -> None:
        if not isinstance(base, LossFunction):
            raise LossFunctionError("base must be a LossFunction")
        self.base = base
        self.factor = _check_number(factor, name="factor", minimum=0)

    def loss(self, true_result: int, reported_result: int):
        return self.factor * self.base.loss(true_result, reported_result)

    def describe(self) -> str:
        return f"{self.factor} * ({self.base.describe()})"


class ShiftedLoss(LossFunction):
    """``base(i, r) + offset`` for a non-negative ``offset``.

    A constant offset changes no optimal decision but shifts reported
    losses; useful for calibrating dashboards.
    """

    def __init__(self, base: LossFunction, offset) -> None:
        if not isinstance(base, LossFunction):
            raise LossFunctionError("base must be a LossFunction")
        self.base = base
        self.offset = _check_number(offset, name="offset", minimum=0)

    def loss(self, true_result: int, reported_result: int):
        return self.base.loss(true_result, reported_result) + self.offset

    def describe(self) -> str:
        return f"({self.base.describe()}) + {self.offset}"


class CappedLoss(LossFunction):
    """``min(base(i, r), cap)`` — losses saturate at ``cap``."""

    def __init__(self, base: LossFunction, cap) -> None:
        if not isinstance(base, LossFunction):
            raise LossFunctionError("base must be a LossFunction")
        self.base = base
        self.cap = _check_number(cap, name="cap", minimum=0)

    def loss(self, true_result: int, reported_result: int):
        return min(self.base.loss(true_result, reported_result), self.cap)

    def describe(self) -> str:
        return f"min({self.base.describe()}, {self.cap})"


class MaxLoss(LossFunction):
    """Pointwise maximum of several losses."""

    def __init__(self, parts: Sequence[LossFunction]) -> None:
        parts = tuple(parts)
        if not parts or not all(isinstance(p, LossFunction) for p in parts):
            raise LossFunctionError(
                "parts must be a non-empty sequence of LossFunction"
            )
        self.parts = parts

    def loss(self, true_result: int, reported_result: int):
        return max(p.loss(true_result, reported_result) for p in self.parts)

    def describe(self) -> str:
        return "max(" + ", ".join(p.describe() for p in self.parts) + ")"


class SumLoss(LossFunction):
    """Pointwise sum of several losses."""

    def __init__(self, parts: Sequence[LossFunction]) -> None:
        parts = tuple(parts)
        if not parts or not all(isinstance(p, LossFunction) for p in parts):
            raise LossFunctionError(
                "parts must be a non-empty sequence of LossFunction"
            )
        self.parts = parts

    def loss(self, true_result: int, reported_result: int):
        return sum(p.loss(true_result, reported_result) for p in self.parts)

    def describe(self) -> str:
        return " + ".join(p.describe() for p in self.parts)


class ThresholdLoss(LossFunction):
    """Zero loss within ``tolerance`` of the truth, ``penalty`` beyond.

    Models consumers who only care whether the report is "close enough":
    ``l(i, r) = 0`` if ``|i - r| <= tolerance`` else ``penalty``.
    ``tolerance = 0`` with ``penalty = 1`` recovers the zero-one loss.
    """

    def __init__(self, tolerance: int, penalty=1) -> None:
        if isinstance(tolerance, bool) or not isinstance(tolerance, int):
            raise LossFunctionError(
                f"tolerance must be an integer >= 0, got {tolerance!r}"
            )
        if tolerance < 0:
            raise LossFunctionError(
                f"tolerance must be >= 0, got {tolerance}"
            )
        self.tolerance = tolerance
        self.penalty = _check_number(penalty, name="penalty", minimum=0)

    def loss(self, true_result: int, reported_result: int):
        if abs(true_result - reported_result) <= self.tolerance:
            return 0
        return self.penalty

    def describe(self) -> str:
        return f"ThresholdLoss(tol={self.tolerance}, penalty={self.penalty})"
