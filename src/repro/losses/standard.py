"""The standard loss functions named by the paper.

Section 2.3 motivates three losses:

* ``l(i, r) = |i - r|`` — mean error; e.g. a government tracking the rise
  of flu cases;
* ``l(i, r) = (i - r)^2`` — error variance; e.g. a drug company planning
  production;
* the zero-one loss — frequency of error.

All are exact (integer-valued), so downstream exact LP solves reproduce
the paper's fractions without rounding. :class:`PowerLoss` generalizes to
``|i - r|^p``.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..exceptions import LossFunctionError
from .base import LossFunction

__all__ = ["AbsoluteLoss", "SquaredLoss", "ZeroOneLoss", "PowerLoss"]


def _distance_table(n: int) -> np.ndarray:
    indices = np.arange(n + 1)
    return np.abs(indices[:, None] - indices[None, :])


class AbsoluteLoss(LossFunction):
    """Absolute-error loss ``l(i, r) = |i - r|``."""

    def loss(self, true_result: int, reported_result: int) -> int:
        return abs(true_result - reported_result)

    def _float_table(self, n: int) -> np.ndarray:
        return _distance_table(n).astype(float)

    def describe(self) -> str:
        return "AbsoluteLoss |i-r|"


class SquaredLoss(LossFunction):
    """Squared-error loss ``l(i, r) = (i - r)^2``."""

    def loss(self, true_result: int, reported_result: int) -> int:
        return (true_result - reported_result) ** 2

    def _float_table(self, n: int) -> np.ndarray:
        distance = _distance_table(n).astype(float)
        return distance * distance

    def describe(self) -> str:
        return "SquaredLoss (i-r)^2"


class ZeroOneLoss(LossFunction):
    """Zero-one loss: 0 when the report is exact, 1 otherwise."""

    def loss(self, true_result: int, reported_result: int) -> int:
        return int(true_result != reported_result)

    def _float_table(self, n: int) -> np.ndarray:
        return (_distance_table(n) != 0).astype(float)

    def describe(self) -> str:
        return "ZeroOneLoss 1[i != r]"


class PowerLoss(LossFunction):
    """Power loss ``l(i, r) = |i - r|^p`` for a rational exponent p >= 0.

    ``p = 1`` recovers :class:`AbsoluteLoss`, ``p = 2`` recovers
    :class:`SquaredLoss`. Integer exponents keep the loss exact; fractional
    exponents produce floats.
    """

    def __init__(self, exponent: float | int | Fraction) -> None:
        if isinstance(exponent, bool) or not isinstance(
            exponent, (int, float, Fraction)
        ):
            raise LossFunctionError(
                f"exponent must be a number >= 0, got {exponent!r}"
            )
        if exponent < 0:
            raise LossFunctionError(
                f"exponent must be >= 0, got {exponent!r}"
            )
        self.exponent = exponent

    def loss(self, true_result: int, reported_result: int):
        distance = abs(true_result - reported_result)
        if isinstance(self.exponent, (int, Fraction)) and (
            isinstance(self.exponent, int) or self.exponent.denominator == 1
        ):
            return distance ** int(self.exponent)
        return float(distance) ** float(self.exponent)

    def describe(self) -> str:
        return f"PowerLoss |i-r|^{self.exponent}"
