"""Base class and validation for loss functions.

A loss function maps ``(true_result, reported_result)`` pairs to
non-negative losses. The paper's only model assumption (Section 2.3) is
monotonicity in the absolute error: for every fixed true result ``i``,
``l(i, r)`` must depend on ``r`` only through ``|i - r|`` and be
non-decreasing in that distance. :func:`check_monotone` verifies exactly
this on the finite range ``{0..n}``.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable

import numpy as np

from ..exceptions import LossFunctionError
from ..validation import check_result_range

__all__ = ["LossFunction", "check_monotone", "loss_matrix"]


class LossFunction(abc.ABC):
    """Abstract base class for consumer loss functions.

    Subclasses implement :meth:`loss`. Instances are callable:
    ``loss_fn(i, r)`` is a synonym for ``loss_fn.loss(i, r)``.
    """

    @abc.abstractmethod
    def loss(self, true_result: int, reported_result: int):
        """Return the loss ``l(i, r)`` (a non-negative number).

        Exact subclasses may return ``int`` or ``Fraction``; float
        subclasses return ``float``. All numeric types interoperate with
        both LP backends.
        """

    def __call__(self, true_result: int, reported_result: int):
        return self.loss(true_result, reported_result)

    def matrix(self, n: int) -> np.ndarray:
        """Return the ``(n+1) x (n+1)`` loss matrix ``L[i, r] = l(i, r)``.

        The matrix is object-dtype so exact entries survive untouched.
        """
        n = check_result_range(n)
        out = np.empty((n + 1, n + 1), dtype=object)
        for i in range(n + 1):
            for r in range(n + 1):
                out[i, r] = self.loss(i, r)
        return out

    def describe(self) -> str:
        """A short human-readable description (class name by default)."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


def loss_matrix(loss: LossFunction | np.ndarray, n: int) -> np.ndarray:
    """Normalize a loss (function or explicit matrix) to a matrix.

    Accepts either a :class:`LossFunction` or an already-built
    ``(n+1) x (n+1)`` array, enabling APIs that take both forms.
    """
    n = check_result_range(n)
    if isinstance(loss, LossFunction):
        return loss.matrix(n)
    matrix = np.asarray(loss)
    if matrix.shape != (n + 1, n + 1):
        raise LossFunctionError(
            f"loss matrix must have shape {(n + 1, n + 1)}, "
            f"got {matrix.shape}"
        )
    return matrix


def check_monotone(
    loss: LossFunction | np.ndarray,
    n: int,
    *,
    require_distance_symmetry: bool = True,
) -> None:
    """Validate the paper's monotonicity assumption on ``{0..n}``.

    Parameters
    ----------
    loss:
        Loss function or explicit loss matrix.
    n:
        Maximum query result.
    require_distance_symmetry:
        When true (the paper's model), also require that losses at equal
        distance are equal: ``l(i, i-d) == l(i, i+d)`` whenever both
        arguments are in range. Set to false to check only the weaker
        one-sided monotonicity.

    Raises
    ------
    LossFunctionError
        With the offending ``(i, r)`` pair in the message.
    """
    matrix = loss_matrix(loss, n)
    for i in range(n + 1):
        for r in range(n + 1):
            if matrix[i, r] < 0:
                raise LossFunctionError(
                    f"loss must be non-negative; l({i}, {r}) = {matrix[i, r]}"
                )
        # Non-decreasing away from i on both sides.
        for r in range(i, n):
            if matrix[i, r + 1] < matrix[i, r]:
                raise LossFunctionError(
                    f"loss not monotone in |i - r| at i={i}: "
                    f"l({i}, {r + 1}) < l({i}, {r})"
                )
        for r in range(i, 0, -1):
            if matrix[i, r - 1] < matrix[i, r]:
                raise LossFunctionError(
                    f"loss not monotone in |i - r| at i={i}: "
                    f"l({i}, {r - 1}) < l({i}, {r})"
                )
        if require_distance_symmetry:
            for distance in range(1, n + 1):
                left, right = i - distance, i + distance
                if 0 <= left and right <= n and matrix[i, left] != matrix[i, right]:
                    raise LossFunctionError(
                        "loss must depend on r only through |i - r|: "
                        f"l({i}, {left}) != l({i}, {right})"
                    )
        if matrix[i, i] > min(matrix[i, r] for r in range(n + 1)):
            raise LossFunctionError(
                f"loss must be minimized at r = i; violated at i={i}"
            )


def distances(n: int) -> Iterable[tuple[int, int, int]]:
    """Yield ``(i, r, |i - r|)`` triples over the full range (test helper)."""
    n = check_result_range(n)
    for i in range(n + 1):
        for r in range(n + 1):
            yield i, r, abs(i - r)
