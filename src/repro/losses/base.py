"""Base class and validation for loss functions.

A loss function maps ``(true_result, reported_result)`` pairs to
non-negative losses. The paper's only model assumption (Section 2.3) is
monotonicity in the absolute error: for every fixed true result ``i``,
``l(i, r)`` must depend on ``r`` only through ``|i - r|`` and be
non-decreasing in that distance. :func:`check_monotone` verifies exactly
this on the finite range ``{0..n}``.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable
from weakref import WeakKeyDictionary

import numpy as np

from ..exceptions import LossFunctionError
from ..validation import check_result_range

__all__ = [
    "LossFunction",
    "check_monotone",
    "loss_matrix",
    "cached_loss_matrix",
    "clear_loss_table_cache",
]


class LossFunction(abc.ABC):
    """Abstract base class for consumer loss functions.

    Subclasses implement :meth:`loss`. Instances are callable:
    ``loss_fn(i, r)`` is a synonym for ``loss_fn.loss(i, r)``.
    """

    @abc.abstractmethod
    def loss(self, true_result: int, reported_result: int):
        """Return the loss ``l(i, r)`` (a non-negative number).

        Exact subclasses may return ``int`` or ``Fraction``; float
        subclasses return ``float``. All numeric types interoperate with
        both LP backends.
        """

    def __call__(self, true_result: int, reported_result: int):
        return self.loss(true_result, reported_result)

    def matrix(self, n: int) -> np.ndarray:
        """Return the ``(n+1) x (n+1)`` loss matrix ``L[i, r] = l(i, r)``.

        The matrix is object-dtype so exact entries survive untouched.
        """
        n = check_result_range(n)
        out = np.empty((n + 1, n + 1), dtype=object)
        for i in range(n + 1):
            for r in range(n + 1):
                out[i, r] = self.loss(i, r)
        return out

    def _float_table(self, n: int) -> np.ndarray | None:
        """Optional vectorized float64 loss table.

        Subclasses with closed-form losses may return the full
        ``(n+1) x (n+1)`` float table built by numpy broadcasting;
        returning ``None`` (the default) makes
        :func:`cached_loss_matrix` fall back to converting the exact
        object table entry by entry.
        """
        return None

    def describe(self) -> str:
        """A short human-readable description (class name by default)."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


def loss_matrix(loss: LossFunction | np.ndarray, n: int) -> np.ndarray:
    """Normalize a loss (function or explicit matrix) to a matrix.

    Accepts either a :class:`LossFunction` or an already-built
    ``(n+1) x (n+1)`` array, enabling APIs that take both forms.
    """
    n = check_result_range(n)
    if isinstance(loss, LossFunction):
        return loss.matrix(n)
    matrix = np.asarray(loss)
    if matrix.shape != (n + 1, n + 1):
        raise LossFunctionError(
            f"loss matrix must have shape {(n + 1, n + 1)}, "
            f"got {matrix.shape}"
        )
    return matrix


#: Per-loss memo of built tables. Weak keys let loss instances (and their
#: tables) be collected when callers drop them; values map
#: ``(n, regime)`` to a read-only array.
_TABLE_CACHE: "WeakKeyDictionary[LossFunction, dict]" = WeakKeyDictionary()

#: Tables kept per loss instance. A long-lived loss object swept across
#: many ``n`` would otherwise accumulate O(n^2)-sized tables without
#: bound; eviction is insertion-ordered (oldest ``(n, regime)`` first).
_TABLE_CACHE_PER_LOSS = 32


def clear_loss_table_cache() -> None:
    """Drop every memoized loss table (see :func:`repro.clear_caches`)."""
    _TABLE_CACHE.clear()


def cached_loss_matrix(
    loss: LossFunction | np.ndarray, n: int, *, as_float: bool = False
) -> np.ndarray:
    """Memoized :func:`loss_matrix`, keyed by ``(loss, n, regime)``.

    Building a loss table is O(n^2) Python calls; the evaluation hot
    paths (:meth:`repro.core.mechanism.Mechanism.expected_loss` and
    friends) ask for the same table once per input otherwise. Tables for
    :class:`LossFunction` instances are built once per ``(loss, n)`` and
    regime (exact object entries, or float64 when ``as_float``) and
    returned **read-only** — callers that need to mutate should use
    :func:`loss_matrix`, which always returns a fresh array. Explicit
    matrix inputs are only normalized, never cached.
    """
    n = check_result_range(n)
    if not isinstance(loss, LossFunction):
        table = loss_matrix(loss, n)
        if as_float and table.dtype != float:
            table = np.asarray(table, dtype=float)
        return table
    per_loss = _TABLE_CACHE.setdefault(loss, {})
    key = (n, "float" if as_float else "object")
    table = per_loss.get(key)
    if table is None:
        if as_float:
            table = loss._float_table(n)
            if table is None:
                table = np.asarray(
                    cached_loss_matrix(loss, n), dtype=float
                )
            else:
                table = np.asarray(table, dtype=float)
                if table.shape != (n + 1, n + 1):
                    raise LossFunctionError(
                        f"_float_table must have shape {(n + 1, n + 1)}, "
                        f"got {table.shape}"
                    )
        else:
            table = loss.matrix(n)
        table.setflags(write=False)
        if len(per_loss) >= _TABLE_CACHE_PER_LOSS:
            per_loss.pop(next(iter(per_loss)))
        per_loss[key] = table
    return table


def check_monotone(
    loss: LossFunction | np.ndarray,
    n: int,
    *,
    require_distance_symmetry: bool = True,
) -> None:
    """Validate the paper's monotonicity assumption on ``{0..n}``.

    Parameters
    ----------
    loss:
        Loss function or explicit loss matrix.
    n:
        Maximum query result.
    require_distance_symmetry:
        When true (the paper's model), also require that losses at equal
        distance are equal: ``l(i, i-d) == l(i, i+d)`` whenever both
        arguments are in range. Set to false to check only the weaker
        one-sided monotonicity.

    Raises
    ------
    LossFunctionError
        With the offending ``(i, r)`` pair in the message.
    """
    matrix = loss_matrix(loss, n)
    for i in range(n + 1):
        for r in range(n + 1):
            if matrix[i, r] < 0:
                raise LossFunctionError(
                    f"loss must be non-negative; l({i}, {r}) = {matrix[i, r]}"
                )
        # Non-decreasing away from i on both sides.
        for r in range(i, n):
            if matrix[i, r + 1] < matrix[i, r]:
                raise LossFunctionError(
                    f"loss not monotone in |i - r| at i={i}: "
                    f"l({i}, {r + 1}) < l({i}, {r})"
                )
        for r in range(i, 0, -1):
            if matrix[i, r - 1] < matrix[i, r]:
                raise LossFunctionError(
                    f"loss not monotone in |i - r| at i={i}: "
                    f"l({i}, {r - 1}) < l({i}, {r})"
                )
        if require_distance_symmetry:
            for distance in range(1, n + 1):
                left, right = i - distance, i + distance
                if 0 <= left and right <= n and matrix[i, left] != matrix[i, right]:
                    raise LossFunctionError(
                        "loss must depend on r only through |i - r|: "
                        f"l({i}, {left}) != l({i}, {right})"
                    )
        if matrix[i, i] > min(matrix[i, r] for r in range(n + 1)):
            raise LossFunctionError(
                f"loss must be minimized at r = i; violated at i={i}"
            )


def distances(n: int) -> Iterable[tuple[int, int, int]]:
    """Yield ``(i, r, |i - r|)`` triples over the full range (test helper)."""
    n = check_result_range(n)
    for i in range(n + 1):
        for r in range(n + 1):
            yield i, r, abs(i - r)
