"""Seeded random loss generators for property-based testing.

:func:`random_monotone_loss` draws losses *inside* the paper's model
(monotone non-decreasing in ``|i - r|``); the universality theorem must
hold for every one of them. :func:`random_nonmonotone_loss` draws losses
*outside* the model, used by the ablation benchmark that shows why the
monotonicity assumption matters.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..exceptions import LossFunctionError
from ..validation import check_result_range
from .matrix import TabularLoss

__all__ = ["random_monotone_loss", "random_nonmonotone_loss"]


def random_monotone_loss(
    n: int,
    *,
    rng: np.random.Generator | None = None,
    exact: bool = True,
    max_increment: int = 5,
    per_row: bool = True,
) -> TabularLoss:
    """Sample a random loss satisfying the paper's model on ``{0..n}``.

    Construction: for each true result ``i`` (or once globally when
    ``per_row`` is false), draw non-negative increments
    ``delta_1 .. delta_n`` and set the loss at distance ``d`` to
    ``delta_1 + ... + delta_d`` — a non-decreasing function of distance
    with ``l(i, i) = 0``.

    Parameters
    ----------
    n:
        Maximum query result.
    rng:
        Numpy generator (fresh default generator when omitted).
    exact:
        Produce Fraction-valued losses (denominator 10) when true,
        float-valued otherwise.
    max_increment:
        Upper bound (exclusive, in tenths) for each increment draw.
    per_row:
        When true every true result gets its own distance profile
        ``g_i``; when false one shared profile is used.
    """
    n = check_result_range(n)
    if max_increment < 1:
        raise LossFunctionError(
            f"max_increment must be >= 1, got {max_increment}"
        )
    rng = np.random.default_rng() if rng is None else rng

    def draw_profile() -> list:
        increments = rng.integers(0, max_increment, size=n)
        profile = [Fraction(0)] if exact else [0.0]
        for step in increments:
            unit = Fraction(int(step), 10) if exact else float(step) / 10.0
            profile.append(profile[-1] + unit)
        return profile

    shared = None if per_row else draw_profile()
    table = np.empty((n + 1, n + 1), dtype=object)
    for i in range(n + 1):
        profile = draw_profile() if shared is None else shared
        for r in range(n + 1):
            table[i, r] = profile[abs(i - r)]
    return TabularLoss(table)


def random_nonmonotone_loss(
    n: int,
    *,
    rng: np.random.Generator | None = None,
    exact: bool = True,
) -> TabularLoss:
    """Sample a loss that deliberately violates the paper's model.

    The table is random non-negative noise with the diagonal forced to
    zero; monotonicity in ``|i - r|`` fails with overwhelming probability
    (and resampling guarantees it). Used only by ablation benchmarks.
    """
    n = check_result_range(n)
    rng = np.random.default_rng() if rng is None else rng
    from .base import check_monotone  # local import avoids cycle at module load

    for _ in range(100):
        table = np.empty((n + 1, n + 1), dtype=object)
        for i in range(n + 1):
            for r in range(n + 1):
                if i == r:
                    table[i, r] = Fraction(0) if exact else 0.0
                else:
                    value = int(rng.integers(0, 20))
                    table[i, r] = (
                        Fraction(value, 10) if exact else value / 10.0
                    )
        try:
            check_monotone(table, n)
        except LossFunctionError:
            return TabularLoss(table, validate_monotone=False)
    raise LossFunctionError(
        "failed to sample a non-monotone loss in 100 attempts "
        f"(n={n} too small?)"
    )
