"""Loss functions for information consumers.

Section 2.3 of the paper models each information consumer with a loss
function ``l(i, r)`` — the consumer's loss when the mechanism outputs
``r`` and the true query result is ``i`` — required to be *monotone
non-decreasing in* ``|i - r|`` for every fixed ``i``. Equivalently,
``l(i, r) = g_i(|i - r|)`` for a non-decreasing ``g_i``.

This subpackage provides:

* the standard losses the paper names: absolute error ``|i - r|``,
  squared error ``(i - r)^2`` and the zero-one loss;
* composition combinators (scaling, shifting, capping, maxima, sums)
  that preserve the monotonicity requirement;
* tabular losses backed by an explicit matrix;
* seeded random monotone losses for property-based testing; and
* a validator for the paper's monotonicity assumption.
"""

from .base import (
    LossFunction,
    cached_loss_matrix,
    check_monotone,
    clear_loss_table_cache,
    loss_matrix,
)
from .composite import (
    CappedLoss,
    MaxLoss,
    ScaledLoss,
    ShiftedLoss,
    SumLoss,
    ThresholdLoss,
)
from .matrix import TabularLoss
from .random import random_monotone_loss, random_nonmonotone_loss
from .standard import (
    AbsoluteLoss,
    PowerLoss,
    SquaredLoss,
    ZeroOneLoss,
)

__all__ = [
    "LossFunction",
    "cached_loss_matrix",
    "check_monotone",
    "clear_loss_table_cache",
    "loss_matrix",
    "AbsoluteLoss",
    "SquaredLoss",
    "ZeroOneLoss",
    "PowerLoss",
    "ScaledLoss",
    "ShiftedLoss",
    "CappedLoss",
    "MaxLoss",
    "SumLoss",
    "ThresholdLoss",
    "TabularLoss",
    "random_monotone_loss",
    "random_nonmonotone_loss",
]
