"""Micro-batching for the mechanism-serving pipeline.

The sampling layer is fastest when it is fed *batches*: one
:meth:`repro.sampling.alias.HeterogeneousAliasSampler.sample` call draws
for thousands of queries — across deployments of different ``n`` and
``alpha`` — in a single fused numpy gather. Individual serving requests,
however, arrive one at a time on an asyncio loop. The
:class:`MicroBatcher` bridges the two: concurrent requests park on
futures while their ``(table, row)`` pairs accumulate, and the batch is
executed as one gather when either

* the **size bound** is hit (``max_size`` pending queries), or
* the **deadline** fires (``window`` seconds after the first query of
  the batch arrived — a latency bound, not a throughput tax: an idle
  batcher schedules nothing).

``window <= 0`` or ``max_size == 1`` degenerates to unbatched execution
(every query is its own gather), which is exactly the baseline
``benchmarks/bench_serving.py`` measures micro-batching against.

The executor callback is synchronous and must never block the loop for
long — the intended executor is a pure alias-table gather plus counter
updates (see :meth:`repro.serving.server.MechanismServer`).

Telemetry: ``stats`` records a per-reason flush breakdown and a
power-of-two occupancy histogram alongside the legacy counters; when a
:class:`repro.obs.Telemetry` is attached, flushes also land in the
metrics registry and — for requests being traced — a ``batch.flush``
span is broadcast to every traced request fused into the batch (the
batcher binds the batch's trace contexts around ``execute``, so spans
opened inside it, like the group-commit fsync and the fused gather,
join every one of those traces).
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Callable

import numpy as np

from ..exceptions import ValidationError
from ..release.durable_ledger import NO_FAULTS

__all__ = ["MicroBatcher"]

#: Flush reasons tracked in ``stats["flush_reasons"]``. ``manual``
#: covers direct ``flush()`` calls (drain paths); ``immediate`` is the
#: unbatched ``window <= 0`` mode.
FLUSH_REASONS = ("max_size", "deadline", "immediate", "manual", "close")


class MicroBatcher:
    """Coalesce concurrent queries into fused sampler executions.

    Parameters
    ----------
    execute:
        ``execute(tables, rows) -> values``: one vectorized tick over
        equal-length int64 arrays, returning one output per query.
        Raising makes every query of the batch fail with that exception.
    window:
        Deadline in seconds from the first query of a batch to its
        flush. ``0`` disables the timer (every query flushes itself —
        the unbatched mode).
    max_size:
        Flush immediately once this many queries are pending.
    telemetry:
        Optional :class:`repro.obs.Telemetry`; adds flush metrics and
        batch-scoped trace spans. ``None`` keeps the batcher free of
        any observability work.

    Stats (``stats`` dict): ``queries``, ``batches``, ``size_flushes``,
    ``deadline_flushes``, ``max_batch``, plus ``flush_reasons`` (counts
    per :data:`FLUSH_REASONS`) and ``occupancy`` (power-of-two batch
    size buckets: key ``"1"`` counts 1-row batches, ``"2"`` 2-row,
    ``"4"`` 3-4, doubling up to ``"16384+"``).
    """

    def __init__(
        self,
        execute: Callable[[np.ndarray, np.ndarray], np.ndarray],
        *,
        window: float = 0.002,
        max_size: int = 4096,
        faults=None,
        telemetry=None,
    ) -> None:
        if window < 0:
            raise ValidationError(f"window must be >= 0, got {window}")
        if max_size < 1:
            raise ValidationError(f"max_size must be >= 1, got {max_size}")
        self._execute = execute
        self.faults = NO_FAULTS if faults is None else faults
        self.window = float(window)
        self.max_size = int(max_size)
        self.telemetry = telemetry
        self._pending: list[tuple[int, int, asyncio.Future]] = []
        self._traced: list = []
        self._timer: asyncio.TimerHandle | None = None
        self.stats = {
            "queries": 0,
            "batches": 0,
            "size_flushes": 0,
            "deadline_flushes": 0,
            "max_batch": 0,
            # High-water mark of parked queries: the admission
            # controller bounds in-flight publishes, and this is the
            # observable proof the bound held (peak_pending <= queue
            # depth + the executing batch).
            "peak_pending": 0,
            "flush_reasons": {reason: 0 for reason in FLUSH_REASONS},
            "occupancy": {
                str(1 << i): 0 for i in range(15)
            },
        }
        self.stats["occupancy"]["16384+"] = self.stats["occupancy"].pop(
            "16384"
        )

    @property
    def pending(self) -> int:
        """Queries currently parked awaiting a flush."""
        return len(self._pending)

    async def submit(self, table: int, row: int, trace=None) -> int:
        """Enqueue one query and await its sampled output.

        ``trace`` optionally carries the submitting request's
        :class:`repro.obs.TraceContext`, so batch-scoped spans from the
        flush that serves this query are recorded under its trace ID.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((int(table), int(row), future))
        if trace is not None:
            self._traced.append(trace)
        self.stats["queries"] += 1
        if len(self._pending) > self.stats["peak_pending"]:
            self.stats["peak_pending"] = len(self._pending)
        if len(self._pending) >= self.max_size:
            self.stats["size_flushes"] += 1
            self.flush(reason="max_size")
        elif self.window <= 0:
            self.flush(reason="immediate")
        elif self._timer is None:
            self._timer = loop.call_later(self.window, self._deadline_flush)
        return await future

    def _deadline_flush(self) -> None:
        self.stats["deadline_flushes"] += 1
        self.flush(reason="deadline")

    def _record_occupancy(self, size: int) -> None:
        buckets = self.stats["occupancy"]
        if size >= 16384:
            buckets["16384+"] += 1
            return
        bound = 1
        while bound < size:
            bound <<= 1
        buckets[str(bound)] += 1

    def flush(self, reason: str = "manual") -> None:
        """Execute everything pending as one fused tick (no-op if empty).

        Safe to call at any time — shutdown paths use it to drain the
        queue without waiting out the deadline.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        traced, self._traced = self._traced, []
        if not pending:
            return
        self.stats["batches"] += 1
        self.stats["max_batch"] = max(self.stats["max_batch"], len(pending))
        self.stats["flush_reasons"][reason] += 1
        self._record_occupancy(len(pending))
        tables = np.fromiter(
            (item[0] for item in pending), dtype=np.int64, count=len(pending)
        )
        rows = np.fromiter(
            (item[1] for item in pending), dtype=np.int64, count=len(pending)
        )
        obs = self.telemetry
        batch_token = None
        if obs is not None and traced:
            batch_token = obs.tracer.activate_batch(traced)
        t0 = time.perf_counter() if obs is not None else 0.0
        try:
            span = (
                obs.tracer.span(
                    "batch.flush", size=len(pending), reason=reason
                )
                if batch_token is not None
                else None
            )
            try:
                if span is not None:
                    span.__enter__()
                self.faults.crash("batcher.before-execute")
                values = self._execute(tables, rows)
                self.faults.crash("batcher.after-execute")
            except BaseException as err:  # noqa: BLE001 - must not strand futures
                # InjectedCrash (and real crashes like KeyboardInterrupt)
                # tear through `except Exception` everywhere else, but a
                # flush may run from a timer callback where nothing
                # awaits it — re-raising would strand every parked
                # future forever. Failing the futures *is* the
                # propagation path.
                if span is not None:
                    span.__exit__(type(err), err, None)
                for _, _, future in pending:
                    if not future.done():
                        future.set_exception(err)
                return
            if span is not None:
                span.__exit__(None, None, None)
        finally:
            if batch_token is not None:
                obs.tracer.deactivate_batch(batch_token)
        if obs is not None:
            obs.batch_flushes.labels(reason).inc()
            obs.batch_size.observe(float(len(pending)))
            obs.batch_flush_latency.observe(time.perf_counter() - t0)
        for (_, _, future), value in zip(pending, values):
            # A caller may have timed out / been cancelled mid-batch;
            # its slot was still sampled (the gather is all-or-nothing)
            # but nobody is waiting for the result.
            if not future.done():
                future.set_result(int(value))

    def close(self) -> None:
        """Cancel the deadline timer and fail anything still pending."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        self._traced = []
        for _, _, future in pending:
            if not future.done():
                future.set_exception(
                    RuntimeError("micro-batcher closed with queries pending")
                )
