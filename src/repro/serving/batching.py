"""Micro-batching for the mechanism-serving pipeline.

The sampling layer is fastest when it is fed *batches*: one
:meth:`repro.sampling.alias.HeterogeneousAliasSampler.sample` call draws
for thousands of queries — across deployments of different ``n`` and
``alpha`` — in a single fused numpy gather. Individual serving requests,
however, arrive one at a time on an asyncio loop. The
:class:`MicroBatcher` bridges the two: concurrent requests park on
futures while their ``(table, row)`` pairs accumulate, and the batch is
executed as one gather when either

* the **size bound** is hit (``max_size`` pending queries), or
* the **deadline** fires (``window`` seconds after the first query of
  the batch arrived — a latency bound, not a throughput tax: an idle
  batcher schedules nothing).

``window <= 0`` or ``max_size == 1`` degenerates to unbatched execution
(every query is its own gather), which is exactly the baseline
``benchmarks/bench_serving.py`` measures micro-batching against.

The executor callback is synchronous and must never block the loop for
long — the intended executor is a pure alias-table gather plus counter
updates (see :meth:`repro.serving.server.MechanismServer`).
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable

import numpy as np

from ..exceptions import ValidationError
from ..release.durable_ledger import NO_FAULTS

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce concurrent queries into fused sampler executions.

    Parameters
    ----------
    execute:
        ``execute(tables, rows) -> values``: one vectorized tick over
        equal-length int64 arrays, returning one output per query.
        Raising makes every query of the batch fail with that exception.
    window:
        Deadline in seconds from the first query of a batch to its
        flush. ``0`` disables the timer (every query flushes itself —
        the unbatched mode).
    max_size:
        Flush immediately once this many queries are pending.

    Stats (``stats`` dict): ``queries``, ``batches``, ``size_flushes``,
    ``deadline_flushes``, ``max_batch``.
    """

    def __init__(
        self,
        execute: Callable[[np.ndarray, np.ndarray], np.ndarray],
        *,
        window: float = 0.002,
        max_size: int = 4096,
        faults=None,
    ) -> None:
        if window < 0:
            raise ValidationError(f"window must be >= 0, got {window}")
        if max_size < 1:
            raise ValidationError(f"max_size must be >= 1, got {max_size}")
        self._execute = execute
        self.faults = NO_FAULTS if faults is None else faults
        self.window = float(window)
        self.max_size = int(max_size)
        self._pending: list[tuple[int, int, asyncio.Future]] = []
        self._timer: asyncio.TimerHandle | None = None
        self.stats = {
            "queries": 0,
            "batches": 0,
            "size_flushes": 0,
            "deadline_flushes": 0,
            "max_batch": 0,
        }

    @property
    def pending(self) -> int:
        """Queries currently parked awaiting a flush."""
        return len(self._pending)

    async def submit(self, table: int, row: int) -> int:
        """Enqueue one query and await its sampled output."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((int(table), int(row), future))
        self.stats["queries"] += 1
        if len(self._pending) >= self.max_size:
            self.stats["size_flushes"] += 1
            self.flush()
        elif self.window <= 0:
            self.flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.window, self._deadline_flush)
        return await future

    def _deadline_flush(self) -> None:
        self.stats["deadline_flushes"] += 1
        self.flush()

    def flush(self) -> None:
        """Execute everything pending as one fused tick (no-op if empty).

        Safe to call at any time — shutdown paths use it to drain the
        queue without waiting out the deadline.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        if not pending:
            return
        self.stats["batches"] += 1
        self.stats["max_batch"] = max(self.stats["max_batch"], len(pending))
        tables = np.fromiter(
            (item[0] for item in pending), dtype=np.int64, count=len(pending)
        )
        rows = np.fromiter(
            (item[1] for item in pending), dtype=np.int64, count=len(pending)
        )
        try:
            self.faults.crash("batcher.before-execute")
            values = self._execute(tables, rows)
            self.faults.crash("batcher.after-execute")
        except BaseException as err:  # noqa: BLE001 - must not strand futures
            # InjectedCrash (and real crashes like KeyboardInterrupt)
            # tear through `except Exception` everywhere else, but a
            # flush may run from a timer callback where nothing awaits
            # it — re-raising would strand every parked future forever.
            # Failing the futures *is* the propagation path.
            for _, _, future in pending:
                if not future.done():
                    future.set_exception(err)
            return
        for (_, _, future), value in zip(pending, values):
            # A caller may have timed out / been cancelled mid-batch;
            # its slot was still sampled (the gather is all-or-nothing)
            # but nobody is waiting for the result.
            if not future.done():
                future.set_result(int(value))

    def close(self) -> None:
        """Cancel the deadline timer and fail anything still pending."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        for _, _, future in pending:
            if not future.done():
                future.set_exception(
                    RuntimeError("micro-batcher closed with queries pending")
                )
