"""Clients for the mechanism server.

Two transports, one call shape:

* :class:`InProcessClient` — calls straight into
  :meth:`repro.serving.server.MechanismServer.handle_request` with no
  sockets or serialization. This is the co-located fast path tests and
  ``benchmarks/bench_serving.py`` drive (the measured throughput is the
  serving pipeline itself — batcher, ledger, fused gather, audit hook —
  not TCP);
* :class:`HTTPServingClient` — a minimal asyncio HTTP/1.1 client with
  one keep-alive connection, exercising exactly what ``curl`` sees.

Both return ``(status, payload)`` rather than raising on 4xx/5xx: a 429
budget rejection is flow control a load generator counts, not an
exception.
"""

from __future__ import annotations

import asyncio
import json

from ..exceptions import ReproError

__all__ = ["InProcessClient", "HTTPServingClient"]


def _publish_payload(
    user, n, alpha, true_result, kind, loss, side
) -> dict:
    payload = {
        "user": user,
        "n": n,
        "alpha": alpha,
        "true_result": true_result,
    }
    if kind != "geometric":
        payload["kind"] = kind
    if loss is not None:
        payload["loss"] = loss
    if side is not None:
        payload["side"] = list(side)
    return payload


class InProcessClient:
    """Zero-transport client for a co-located :class:`MechanismServer`."""

    def __init__(self, server) -> None:
        self.server = server

    async def publish(
        self,
        *,
        user: str,
        n: int,
        alpha,
        true_result: int,
        kind: str = "geometric",
        loss: str | None = None,
        side=None,
    ) -> tuple[int, dict]:
        return await self.server.publish(
            _publish_payload(user, n, alpha, true_result, kind, loss, side)
        )

    async def get(self, path: str) -> tuple[int, dict]:
        return await self.server.handle_request("GET", path)


class HTTPServingClient:
    """Keep-alive HTTP/1.1 client against a live server socket."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        """One round-trip on the persistent connection."""
        await self._connect()
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ReproError("server closed the connection")
        parts = status_line.decode("latin-1").split(maxsplit=2)
        status = int(parts[1])
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await self._reader.readexactly(length) if length else b"{}"
        return status, json.loads(data)

    async def publish(
        self,
        *,
        user: str,
        n: int,
        alpha,
        true_result: int,
        kind: str = "geometric",
        loss: str | None = None,
        side=None,
    ) -> tuple[int, dict]:
        return await self.request(
            "POST",
            "/publish",
            _publish_payload(user, n, alpha, true_result, kind, loss, side),
        )

    async def get(self, path: str) -> tuple[int, dict]:
        return await self.request("GET", path)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None
