"""Clients for the mechanism server.

Two transports, one call shape:

* :class:`InProcessClient` — calls straight into
  :meth:`repro.serving.server.MechanismServer.handle_request` with no
  sockets or serialization. This is the co-located fast path tests and
  ``benchmarks/bench_serving.py`` drive (the measured throughput is the
  serving pipeline itself — batcher, ledger, fused gather, audit hook —
  not TCP);
* :class:`HTTPServingClient` — a minimal asyncio HTTP/1.1 client with
  one keep-alive connection, exercising exactly what ``curl`` sees —
  plus the resilience a real caller needs: per-request timeouts (a
  stalled server can no longer hang the coroutine forever), bounded
  exponential backoff with deterministic jitter, and automatic
  idempotency keys on ``publish`` so a retry after a lost response
  replays the original answer instead of double-charging the budget.

Both return ``(status, payload)`` rather than raising on 4xx/5xx: a 429
budget rejection is flow control a load generator counts, not an
exception.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import os
import random
import time

from ..exceptions import ReproError

__all__ = ["InProcessClient", "HTTPServingClient"]

#: Errors worth retrying: the request may never have reached the server
#: (connect refused/reset, torn connection) or the response was lost
#: (timeout, truncated read). With an idempotency key both cases are
#: safe to replay.
RETRYABLE = (
    asyncio.TimeoutError,
    asyncio.IncompleteReadError,
    ConnectionError,
    OSError,
    ReproError,
)


def _publish_payload(
    user, n, alpha, true_result, kind, loss, side, idem=None
) -> dict:
    payload = {
        "user": user,
        "n": n,
        "alpha": alpha,
        "true_result": true_result,
    }
    if kind != "geometric":
        payload["kind"] = kind
    if loss is not None:
        payload["loss"] = loss
    if side is not None:
        payload["side"] = list(side)
    if idem is not None:
        payload["idem"] = idem
    return payload


class InProcessClient:
    """Zero-transport client for a co-located :class:`MechanismServer`."""

    def __init__(self, server) -> None:
        self.server = server

    async def publish(
        self,
        *,
        user: str,
        n: int,
        alpha,
        true_result: int,
        kind: str = "geometric",
        loss: str | None = None,
        side=None,
        idem: str | None = None,
    ) -> tuple[int, dict]:
        return await self.server.publish(
            _publish_payload(
                user, n, alpha, true_result, kind, loss, side, idem
            )
        )

    async def get(self, path: str) -> tuple[int, dict]:
        return await self.server.handle_request("GET", path)


class HTTPServingClient:
    """Keep-alive HTTP/1.1 client against a live server socket.

    Parameters
    ----------
    timeout:
        Per-attempt deadline in seconds covering connect + write + read.
        A stalled or half-dead server produces a ``TimeoutError`` after
        ``timeout`` seconds instead of hanging the caller forever.
        ``None`` disables the deadline (the pre-resilience behavior).
    retries:
        Additional attempts after the first failure. Each retry drops
        the (possibly poisoned) connection and reconnects.
    backoff / backoff_max:
        Bounded exponential backoff between attempts:
        ``min(backoff * 2**attempt, backoff_max)`` scaled by a jitter in
        ``[0.5, 1.0)`` so a fleet of recovering clients does not
        stampede in lockstep.
    seed:
        Seeds the jitter RNG for reproducible retry schedules in tests.
    telemetry:
        Optional :class:`repro.obs.Telemetry`: records a round-trip
        latency histogram, a retry counter labeled by error kind, and —
        when the calling task is being traced — ``client.request`` /
        ``client.retry`` spans.

    ``publish`` attaches an idempotency key automatically (override with
    ``idem=``), so a retried publish whose first response was lost
    replays the server's original answer rather than charging twice.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 5.0,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        seed: int | None = None,
        telemetry=None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.backoff_max = float(backoff_max)
        self.telemetry = telemetry
        self._rng = random.Random(seed)
        self._idem_prefix = f"{os.getpid():x}-{self._rng.randrange(1 << 48):012x}"
        self._idem_counter = itertools.count()
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def _drop_connection(self) -> None:
        """Discard a connection whose state is no longer trustworthy."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
        self._writer = None
        self._reader = None

    def _backoff_delay(self, attempt: int) -> float:
        base = min(self.backoff * (2 ** attempt), self.backoff_max)
        return base * (0.5 + 0.5 * self._rng.random())

    async def _round_trip(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict, float | None]:
        await self._connect()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ReproError("server closed the connection")
        parts = status_line.decode("latin-1").split(maxsplit=2)
        status = int(parts[1])
        length = 0
        retry_after: float | None = None
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                length = int(value.strip())
            elif name == "retry-after":
                # The server paces shed/breaker responses in fractional
                # seconds; an unparseable value is ignored, not fatal.
                with contextlib.suppress(ValueError):
                    retry_after = float(value.strip())
        data = await self._reader.readexactly(length) if length else b"{}"
        try:
            return status, json.loads(data), retry_after
        except ValueError:
            # Content-negotiated raw-text route (e.g. the Prometheus
            # exposition of /metrics); mirror the in-process shape.
            return (
                status,
                {"__raw__": data.decode("utf-8", "replace")},
                retry_after,
            )

    async def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        """One logical round-trip: timeout-bounded, retried with backoff.

        Raises the last attempt's error once ``retries`` extra attempts
        are exhausted. POSTs without an ``idem`` key in the payload are
        still retried — the serving operations are safe to replay only
        with a key, which :meth:`publish` attaches automatically.

        A 429/503 carrying a ``Retry-After`` header is a *shed* (or
        open-breaker) response: the server refused the request **before
        any ledger charge**, so it is safe to replay even without an
        idempotency key — the client honors the server's pacing hint
        (clamped to ``backoff_max``) instead of its own exponential
        clock. A 429 *without* the header is a budget-floor rejection:
        deterministic, never retried, returned as-is.
        """
        body = b"" if payload is None else json.dumps(payload).encode()
        obs = self.telemetry
        t0 = time.perf_counter() if obs is not None else 0.0
        last_error: BaseException | None = None
        for attempt in range(self.retries + 1):
            if attempt and last_error is not None:
                delay = self._backoff_delay(attempt - 1)
                if obs is not None:
                    obs.client_retries.labels(
                        type(last_error).__name__
                    ).inc()
                    with obs.tracer.span(
                        "client.retry", attempt=attempt,
                        backoff_s=round(delay, 4),
                        error=type(last_error).__name__,
                    ):
                        await asyncio.sleep(delay)
                else:
                    await asyncio.sleep(delay)
            try:
                if obs is not None:
                    span = obs.tracer.span(
                        "client.request", method=method, path=path,
                        attempt=attempt,
                    )
                else:
                    span = contextlib.nullcontext()
                with span:
                    if self.timeout is None:
                        status, response, retry_after = (
                            await self._round_trip(method, path, body)
                        )
                    else:
                        status, response, retry_after = (
                            await asyncio.wait_for(
                                self._round_trip(method, path, body),
                                self.timeout,
                            )
                        )
                if (
                    retry_after is not None
                    and status in (429, 503)
                    and attempt < self.retries
                ):
                    last_error = None
                    if obs is not None:
                        obs.client_retries.labels("RetryAfter").inc()
                        with obs.tracer.span(
                            "client.retry", attempt=attempt + 1,
                            backoff_s=round(retry_after, 4),
                            error="RetryAfter",
                        ):
                            await asyncio.sleep(
                                min(retry_after, self.backoff_max)
                            )
                    else:
                        await asyncio.sleep(
                            min(retry_after, self.backoff_max)
                        )
                    continue
                if obs is not None:
                    obs.client_latency.observe(time.perf_counter() - t0)
                return status, response
            except RETRYABLE as err:
                last_error = err
                await self._drop_connection()
        raise last_error

    async def publish(
        self,
        *,
        user: str,
        n: int,
        alpha,
        true_result: int,
        kind: str = "geometric",
        loss: str | None = None,
        side=None,
        idem: str | None = None,
    ) -> tuple[int, dict]:
        if idem is None:
            idem = f"{self._idem_prefix}-{next(self._idem_counter)}"
        return await self.request(
            "POST",
            "/publish",
            _publish_payload(
                user, n, alpha, true_result, kind, loss, side, idem
            ),
        )

    async def get(self, path: str) -> tuple[int, dict]:
        return await self.request("GET", path)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None
