"""Certified graceful degradation: the geometric fallback.

When a bespoke (``kind="optimal"``) artifact fails load-time
verification it is quarantined — PR 8 turned that into a 503 on exactly
that deployment. This module adds the *principled* alternative that a
generic serving system cannot offer: serve the same-``(n, alpha)``
**geometric** artifact in its place.

Why that is sound, and not a best-effort shim:

* **Privacy is preserved exactly.** The geometric mechanism at the same
  ``alpha`` satisfies the identical ``alpha``-differential-privacy
  constraint the bespoke mechanism was compiled under; the ledger
  charges the same ``alpha`` per release either way, so the per-user
  floor maths is unchanged.
* **Utility degrades only up to the user's own remap.** Gupte and
  Sundararajan (Theorem 1, arXiv:1001.2767) prove the ``alpha``-ratio
  geometric mechanism is *universally optimal for minimax agents*:
  every minimax consumer can post-process the geometric release into a
  mechanism at least as good (for their own loss and side information)
  as any bespoke ``alpha``-private mechanism. The bespoke artifact is
  exactly such a remap baked in server-side — so falling back to the
  geometric release loses nothing a rational agent could not recover
  client-side. Brenner and Nissim (arXiv:1008.0256) show this property
  is special to count queries — which is the only query family this
  server publishes — so the fallback carries a theorem, not a hope.
* **The fallback is itself certificate-verified.** A fallback only
  serves through :meth:`MechanismServer.load_artifact` with
  verification on; a geometric artifact that fails its own pmf-law
  check is not a fallback, it is a second quarantine.

Degraded responses are loud: the response body carries
``"degraded": "geometric"`` plus the originally requested key,
``GET /artifacts`` marks the quarantined entry with ``degraded_to``,
and a burn-style gauge/counter pair
(``repro_serving_degraded_deployments`` /
``repro_serving_degraded_responses_total``) exposes how much traffic
is riding the fallback. The whole layer is opt-in:
``repro serve --degraded=geometric`` (the default ``--degraded=503``
keeps PR 8 behavior).
"""

from __future__ import annotations

from ..release.artifacts import ArtifactSpec

__all__ = ["DEGRADED_MODES", "fallback_spec", "resolve_fallbacks"]

#: What to do with traffic for a quarantined deployment.
DEGRADED_MODES = ("503", "geometric")


def fallback_spec(spec: ArtifactSpec) -> ArtifactSpec | None:
    """The geometric spec that may stand in for ``spec``, or ``None``.

    Only bespoke artifacts degrade: they are remaps of the geometric
    release (Theorem 2 derivability), so the geometric artifact at the
    same ``(n, alpha)`` dominates them for every minimax agent. A
    quarantined *geometric* artifact has no smaller mechanism to fall
    back to — nothing below it is universally optimal — so it stays a
    503.
    """
    if spec.kind != "optimal":
        return None
    return ArtifactSpec(kind="geometric", n=spec.n, alpha=spec.alpha)


def resolve_fallbacks(server, *, compile_missing: bool = True) -> int:
    """Attach geometric fallbacks to ``server``'s quarantined entries.

    For each quarantined bespoke deployment: prefer the already-loaded
    healthy geometric deployment at the same ``(n, alpha)``; otherwise
    load it from the store; otherwise (``compile_missing``) compile it —
    geometric artifacts are closed-form, zero LP solves, so this is a
    load-time cost only, never a request-path one. Every path lands in
    :meth:`~repro.serving.server.MechanismServer.load_artifact` with
    verification on. Returns the number of fallbacks attached; entries
    whose fallback cannot be produced (or fails verification) keep
    plain-503 semantics.
    """
    attached = 0
    for key, entry in server._quarantined.items():
        if entry.get("fallback_key") is not None:
            attached += 1
            continue
        target = fallback_spec(entry["spec"])
        if target is None:
            continue
        deployment = server._deployments.get(target.key())
        if deployment is None:
            artifact = server.store.get(target)
            if artifact is None and compile_missing:
                try:
                    artifact = server.store.get_or_compile(target)
                except Exception:  # noqa: BLE001 - degrade to plain 503
                    artifact = None
            if artifact is not None:
                try:
                    server.load_artifact(artifact, verify=True)
                except Exception:  # noqa: BLE001 - unverifiable fallback
                    deployment = None
                else:
                    deployment = server._deployments.get(target.key())
        if deployment is None:
            continue
        entry["fallback_key"] = target.key()
        attached += 1
    return attached
