"""Deterministic fault injection for the serving stack.

The durability guarantees of :mod:`repro.release.durable_ledger` and the
resilience guarantees of the server/client are only worth what the chaos
suite can *prove* about them. This module provides the knives:

* :class:`InjectedCrash` — a ``BaseException`` (deliberately not an
  ``Exception``) modeling sudden process death: it tears through the
  ``except Exception`` handlers that guard ordinary serving errors,
  exactly as ``kill -9`` would, leaving whatever half-finished disk
  state the crash point implies.
* :class:`FaultInjector` — named, countdown-armed fault plans. Code
  under test calls :meth:`FaultInjector.crash` at its crash points
  (``"charge.before-append"``, ``"charge.before-fsync"``,
  ``"charge.after-fsync"``, ``"batcher.before-execute"``, …); the
  filesystem shim consults :meth:`FaultInjector.take` at every I/O op.
  Unarmed points cost one dict lookup — the production default is the
  shared no-op injector, which costs nothing.
* :class:`FaultyFS` — a :class:`~repro.release.durable_ledger.LedgerFS`
  that can tear a write (persist only a prefix, then "die"), short-write
  (persist a prefix, then fail with an ``OSError`` the rollback path
  must heal), fill the disk (``ENOSPC``), or fail ``fsync``.
* :class:`FlakyEndpoint` — an HTTP-aware TCP shim in front of a real
  server that drops connections, stalls forever (client-timeout food),
  delays, or — nastiest — forwards the request and then swallows the
  response, which is precisely the case idempotency keys exist for: the
  server charged and answered, the client saw nothing and retries.

Every fault is deterministic: armed by name with ``after``/``times``
counters, no randomness, so a chaos test replays identically.
"""

from __future__ import annotations

import asyncio
import contextlib
import errno
from dataclasses import dataclass

from ..exceptions import ReproError
from ..release.durable_ledger import LedgerFS

__all__ = [
    "InjectedCrash",
    "FaultInjector",
    "FaultPlan",
    "FaultyFS",
    "FlakyEndpoint",
    "CRASH_POINTS",
    "FLEET_FAULTS",
    "fsync_storm",
]

#: The named crash points threaded through the stack (the kill-point
#: matrix of the chaos suite). Filesystem ops additionally expose
#: ``fs.write`` / ``fs.fsync`` / ``fs.truncate`` / ``fs.replace``.
CRASH_POINTS = (
    "charge.before-append",       # nothing on disk, nothing released
    "charge.before-fsync",        # bytes written, durability unknown
    "charge.after-fsync",         # charge durable, response never sent
    "result.before-append",       # charge durable, replay record lost
    "compact.after-snapshot",     # snapshot durable, journal not yet cut
    "batcher.before-execute",     # charges durable, batch never sampled
    "batcher.after-execute",      # batch sampled, responses never sent
    "server.before-response",     # response built, socket never written
)

#: Fleet-level fault names (PR 10). These are not inline ``crash()``
#: points — they name the chaos the supervisor's worker configs and the
#: chaos suite inject from outside the process: ``worker.kill`` is a
#: real ``SIGKILL`` to a serving worker mid-traffic, ``worker.
#: listener-drop`` makes a worker close its HTTP listener while staying
#: alive (heartbeats go not-ready; the supervisor must restart it), and
#: ``wal.fsync-storm`` is a burst of injected fsync failures that must
#: trip the WAL circuit breaker rather than silently downgrade
#: durability.
FLEET_FAULTS = ("worker.kill", "worker.listener-drop", "wal.fsync-storm")


def fsync_storm(
    faults: "FaultInjector", *, after: int = 0, times: int = 3
) -> "FaultInjector":
    """Arm a burst of ``fsync`` failures (``ENOSPC``) on ``faults``.

    The ``wal.fsync-storm`` fleet fault: every fsync in the burst raises,
    so a durable ledger built over a :class:`FaultyFS` carrying this
    injector fails its group commit and the serving circuit breaker must
    open. ``after`` delays the storm by that many healthy fsyncs;
    ``times`` bounds it so recovery probes eventually succeed.
    """
    faults.fail_at("fs.fsync", after=after, times=times)
    return faults


class InjectedCrash(BaseException):
    """Simulated process death at a named crash point.

    A ``BaseException`` so ordinary ``except Exception`` error handling
    cannot absorb it — in-flight work dies, exactly like the process.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point!r}")
        self.point = point


@dataclass
class FaultPlan:
    """One armed fault: fire ``action`` at a point, ``after`` skips,
    ``times`` repetitions."""

    action: str          # "crash" | "fail" | "tear" | "short"
    after: int = 0
    times: int = 1
    keep: int = 0        # bytes persisted before tear/short
    exc: object = None   # OSError factory/instance for "fail"/"short"

    def make_error(self, point: str) -> OSError:
        if self.exc is None:
            return OSError(errno.ENOSPC, f"injected ENOSPC at {point!r}")
        if callable(self.exc):
            return self.exc()
        return self.exc


class FaultInjector:
    """Deterministic registry of armed faults, consulted by name.

    ``hits`` counts every visit to every point (armed or not), so tests
    can assert a crash point was actually reached.
    """

    def __init__(self) -> None:
        self._plans: dict[str, FaultPlan] = {}
        self.hits: dict[str, int] = {}
        self.fired: list[str] = []

    # -- arming --------------------------------------------------------
    def crash_at(self, point: str, *, after: int = 0, times: int = 1):
        """Arm sudden death at ``point`` (skip the first ``after`` hits)."""
        self._plans[point] = FaultPlan("crash", after=after, times=times)
        return self

    def fail_at(self, point: str, *, after: int = 0, times: int = 1,
                exc=None):
        """Arm an ``OSError`` (default ``ENOSPC``) at ``point``."""
        self._plans[point] = FaultPlan(
            "fail", after=after, times=times, exc=exc
        )
        return self

    def tear_at(self, point: str, *, after: int = 0, keep: int = 8):
        """Arm a torn write: persist ``keep`` bytes, then die."""
        self._plans[point] = FaultPlan("tear", after=after, keep=keep)
        return self

    def short_at(self, point: str, *, after: int = 0, keep: int = 8,
                 exc=None):
        """Arm a short write: persist ``keep`` bytes, then ``OSError``."""
        self._plans[point] = FaultPlan(
            "short", after=after, keep=keep, exc=exc
        )
        return self

    def disarm(self, point: str) -> None:
        self._plans.pop(point, None)

    # -- consultation --------------------------------------------------
    def take(self, point: str) -> FaultPlan | None:
        """Record a visit; return the plan iff it fires this visit."""
        self.hits[point] = self.hits.get(point, 0) + 1
        plan = self._plans.get(point)
        if plan is None:
            return None
        if plan.after > 0:
            plan.after -= 1
            return None
        if plan.times <= 0:
            return None
        plan.times -= 1
        self.fired.append(point)
        return plan

    def crash(self, point: str) -> None:
        """The crash-point hook: die here iff armed."""
        plan = self.take(point)
        if plan is None:
            return
        if plan.action != "crash":
            raise ReproError(
                f"point {point!r} is a pure crash point; arm it with "
                f"crash_at (got {plan.action!r})"
            )
        raise InjectedCrash(point)


class FaultyFS(LedgerFS):
    """A :class:`LedgerFS` with injectable I/O faults.

    Consults the injector at ``fs.write`` / ``fs.fsync`` /
    ``fs.truncate`` / ``fs.replace``. A ``tear`` on ``fs.write``
    persists ``keep`` bytes and raises :class:`InjectedCrash` (the torn
    tail recovery must truncate); a ``short`` persists ``keep`` bytes
    and raises ``OSError`` (the rollback path must heal); ``fail``
    raises without persisting anything.
    """

    def __init__(self, faults: FaultInjector) -> None:
        self.faults = faults

    def write(self, handle, data: bytes) -> None:
        plan = self.faults.take("fs.write")
        if plan is None:
            super().write(handle, data)
            return
        if plan.action == "crash":
            raise InjectedCrash("fs.write")
        if plan.action == "fail":
            raise plan.make_error("fs.write")
        kept = data[: max(0, min(plan.keep, len(data) - 1))]
        if kept:
            super().write(handle, kept)
        if plan.action == "tear":
            raise InjectedCrash("fs.write")
        raise plan.make_error("fs.write")

    def fsync(self, handle) -> None:
        plan = self.faults.take("fs.fsync")
        if plan is not None:
            if plan.action == "crash":
                raise InjectedCrash("fs.fsync")
            raise plan.make_error("fs.fsync")
        super().fsync(handle)

    def truncate(self, handle, size: int) -> None:
        plan = self.faults.take("fs.truncate")
        if plan is not None:
            if plan.action == "crash":
                raise InjectedCrash("fs.truncate")
            raise plan.make_error("fs.truncate")
        super().truncate(handle, size)

    def replace(self, source, destination) -> None:
        plan = self.faults.take("fs.replace")
        if plan is not None:
            if plan.action == "crash":
                raise InjectedCrash("fs.replace")
            raise plan.make_error("fs.replace")
        super().replace(source, destination)


async def _read_http_message(reader) -> bytes | None:
    """Read one full HTTP/1.1 message (head + content-length body)."""
    head = b""
    while b"\r\n\r\n" not in head:
        chunk = await reader.read(4096)
        if not chunk:
            return None
        head += chunk
    raw_head, _, rest = head.partition(b"\r\n\r\n")
    length = 0
    for line in raw_head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(rest) < length:
        chunk = await reader.read(length - len(rest))
        if not chunk:
            break
        rest += chunk
    return raw_head + b"\r\n\r\n" + rest


class FlakyEndpoint:
    """An HTTP-aware flaky shim in front of a real serving socket.

    Each accepted connection consumes the next behavior: ``drop`` closes
    immediately (connection reset food for the retry layer), ``stall``
    reads the request and never answers (client-timeout food), ``delay``
    waits ``delay`` seconds before proxying, and ``swallow`` forwards
    the request to the backend, reads the response, and discards it —
    the server has charged and answered, the client must retry with the
    same idempotency key or double-spend the budget. Once the counters
    are exhausted, connections proxy transparently.
    """

    def __init__(
        self,
        backend_host: str,
        backend_port: int,
        *,
        drop: int = 0,
        stall: int = 0,
        swallow: int = 0,
        delay: float = 0.0,
        delay_count: int = 0,
        close_timeout: float = 2.0,
    ) -> None:
        self.backend = (backend_host, int(backend_port))
        self.drop = int(drop)
        self.stall = int(stall)
        self.swallow = int(swallow)
        self.delay = float(delay)
        self.delay_count = int(delay_count)
        self.close_timeout = float(close_timeout)
        self.connections = 0
        self._server: asyncio.base_events.Server | None = None
        self._stalled: list[asyncio.StreamWriter] = []
        self._tasks: set[asyncio.Task] = set()
        self._upstreams: set[asyncio.StreamWriter] = set()

    async def start(self, host: str = "127.0.0.1") -> None:
        self._server = await asyncio.start_server(self._handle, host, 0)

    @property
    def port(self) -> int:
        if self._server is None:
            raise ReproError("endpoint is not started")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Bounded-time teardown.

        Closing the listener alone used to race in-flight handlers: a
        connection stalled (or parked mid-``drop``/proxy on a backend
        that will never answer) kept its handler task — and its
        *upstream* socket — alive, so ``wait_closed()`` could hang a
        chaos run's teardown and leak the backend connection. Now every
        handler task and upstream writer is tracked: stop closes the
        listener, cancels the handlers, awaits them for at most
        ``close_timeout`` seconds, and force-closes any socket that
        survived.
        """
        if self._server is not None:
            self._server.close()
        tasks = {task for task in self._tasks if not task.done()}
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.wait(tasks, timeout=self.close_timeout)
        for writer in list(self._upstreams):
            writer.close()
        self._upstreams.clear()
        for writer in self._stalled:
            writer.close()
        self._stalled.clear()
        if self._server is not None:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    self._server.wait_closed(), self.close_timeout
                )
            self._server = None

    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        self.connections += 1
        try:
            if self.drop > 0:
                self.drop -= 1
                return
            if self.stall > 0:
                self.stall -= 1
                self._stalled.append(writer)
                await _read_http_message(reader)
                await asyncio.sleep(3600)  # hold the socket open, say nothing
                return
            if self.delay_count > 0:
                self.delay_count -= 1
                await asyncio.sleep(self.delay)
            swallow = False
            if self.swallow > 0:
                self.swallow -= 1
                swallow = True
            await self._proxy(reader, writer, swallow=swallow)
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            if task is not None:
                self._tasks.discard(task)
            if writer not in self._stalled:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError, asyncio.CancelledError):
                    pass

    async def _proxy(self, reader, writer, *, swallow: bool) -> None:
        upstream_reader, upstream_writer = await asyncio.open_connection(
            *self.backend
        )
        self._upstreams.add(upstream_writer)
        try:
            while True:
                request = await _read_http_message(reader)
                if request is None:
                    return
                upstream_writer.write(request)
                await upstream_writer.drain()
                response = await _read_http_message(upstream_reader)
                if response is None:
                    return
                if swallow:
                    return  # the response evaporates; the client retries
                writer.write(response)
                await writer.drain()
        finally:
            self._upstreams.discard(upstream_writer)
            upstream_writer.close()
            try:
                await upstream_writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
