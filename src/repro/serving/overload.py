"""Overload protection for the serving tier.

A server that melts under load fails its users twice: admitted requests
time out *and* the privacy ledger records charges for responses nobody
received. This module keeps the failure modes principled:

* :class:`AdmissionController` — a bounded admission gate consulted
  **before any ledger charge**. A request is shed (HTTP 429/503 with a
  ``Retry-After`` estimate) when the in-flight bound is hit or when the
  queue's expected drain time — an EWMA of observed service time times
  the current depth — already exceeds the request's deadline. Because
  shedding happens strictly before the charge-or-reject, a shed request
  provably spends zero budget, so clients may retry it freely without
  an idempotency key.
* **Brownout** — under *sustained* overload (the shed fraction over the
  recent decision window crosses a threshold) the controller reports
  :meth:`AdmissionController.brownout`; the server responds by shedding
  its own optional work first — audit sampling and trace sampling are
  skipped — before it sheds any more user requests. Observability
  degrades before availability does, and the skips are counted
  (``repro_brownout_skips_total``), never silent.
* :class:`WALCircuitBreaker` — wraps the durable ledger's failure
  domain. When the write-ahead log stops persisting charges (ENOSPC,
  EIO, a dying disk — surfaced as
  :class:`~repro.release.durable_ledger.LedgerUnavailableError`), the
  breaker opens and the configured policy decides what a charge means
  while the disk is gone:

  - ``"reject"`` (``--wal-failure-policy reject-new-charges``) — new
    charges are refused with 503 + ``Retry-After``; nothing is released
    against a charge that cannot be made durable. Availability degrades,
    durability does not.
  - ``"memory"`` (``--wal-failure-policy memory-mode-with-alarm``) —
    charging continues against a :func:`memory_overlay` of the ledger
    (seeded from the in-process books, so the floor keeps binding
    exactly where it stood), and every response is marked
    ``"durability": "volatile"`` while ``/healthz``, ``/metrics`` and a
    tracer event raise the alarm. Availability is preserved; the
    downgrade is loud by construction — there is deliberately no silent
    third policy.

  Either way the breaker half-opens after ``cooldown`` seconds and
  probes recovery (:meth:`~repro.release.durable_ledger.DurableLedger.probe`
  on a freshly opened ledger); on success the server swaps back to the
  durable book, and a memory-mode overlay's volatile charges are
  **backfilled** into the recovered journal first (as one combined
  ``backfill`` charge per user), so the volatile window narrows to
  exactly the outage and no admitted charge is ever forgotten.

Everything here is stdlib-only and synchronous: the controller runs on
the event-loop thread (one check, no locks) and the breaker's state
machine is a couple of floats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..exceptions import ValidationError
from ..release.durable_ledger import MemoryLedgerBook

__all__ = [
    "AdmissionController",
    "ShedDecision",
    "WALCircuitBreaker",
    "WAL_FAILURE_POLICIES",
    "memory_overlay",
]

#: WAL-failure policies (CLI spellings map onto the short names).
WAL_FAILURE_POLICIES = ("reject", "memory")

#: Smoothing factor of the service-time EWMA: small enough to ride out
#: one slow batch, large enough to track a real regime change within a
#: few dozen requests.
_EWMA_ALPHA = 0.05

#: Floor on the Retry-After estimate handed to shed clients, seconds —
#: a zero would invite an immediate, equally doomed retry.
_MIN_RETRY_AFTER = 0.01


@dataclass(frozen=True)
class ShedDecision:
    """Why a request was shed, before any ledger charge happened.

    ``status`` is the HTTP status to return (429 for a full queue — the
    client should back off; 503 for a deadline miss or an open breaker —
    the *server* cannot serve in time), ``retry_after`` the seconds a
    client should wait before retrying.
    """

    status: int
    reason: str
    retry_after: float


class AdmissionController:
    """Bounded, deadline-aware admission gate for the publish path.

    Parameters
    ----------
    capacity:
        Maximum admitted publishes in flight (parked in the micro-batch
        queue or executing). ``0`` disables the bound.
    shed_deadline:
        Server-wide deadline in seconds: a request whose estimated wait
        (queue depth x service-time EWMA) exceeds this is shed before it
        queues. ``0`` disables deadline shedding. A request may carry
        its own tighter deadline (``deadline_ms`` in the payload).
    brownout_threshold / brownout_window:
        Brownout trips when more than ``threshold`` of the last
        ``window`` admission decisions were sheds; it clears as soon as
        the windowed fraction drops back below.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        capacity: int = 0,
        shed_deadline: float = 0.0,
        *,
        brownout_threshold: float = 0.5,
        brownout_window: int = 128,
        clock=time.monotonic,
    ) -> None:
        if capacity < 0:
            raise ValidationError(
                f"queue depth must be >= 0, got {capacity}"
            )
        if shed_deadline < 0:
            raise ValidationError(
                f"shed deadline must be >= 0, got {shed_deadline}"
            )
        if not 0.0 < brownout_threshold <= 1.0:
            raise ValidationError(
                "brownout threshold must be in (0, 1], got "
                f"{brownout_threshold}"
            )
        if brownout_window < 1:
            raise ValidationError(
                f"brownout window must be >= 1, got {brownout_window}"
            )
        self.capacity = int(capacity)
        self.shed_deadline = float(shed_deadline)
        self.brownout_threshold = float(brownout_threshold)
        self.brownout_window = int(brownout_window)
        self._clock = clock
        self.inflight = 0
        self.service_ewma = 0.0
        # Windowed shed tally as a ring of 0/1 outcomes — O(1) per
        # decision, no deque import on the hot path.
        self._window = [0] * self.brownout_window
        self._window_at = 0
        self._window_shed = 0
        self._window_filled = 0
        self.stats = {
            "admitted": 0,
            "shed_queue_full": 0,
            "shed_deadline": 0,
            "peak_inflight": 0,
            "brownouts": 0,
        }
        self._browned_out = False

    # -- the admission decision ----------------------------------------
    def estimated_wait(self) -> float:
        """Expected time a newly queued request waits, seconds."""
        return self.inflight * self.service_ewma

    def try_admit(self, deadline: float | None = None) -> ShedDecision | None:
        """Admit (returns ``None``) or shed (returns the decision).

        Must be balanced by exactly one :meth:`release` per admission —
        the server does so in a ``finally`` so even an injected crash
        returns the slot.
        """
        if self.capacity and self.inflight >= self.capacity:
            return self._shed(
                ShedDecision(
                    429,
                    "queue_full",
                    max(_MIN_RETRY_AFTER, self.estimated_wait()),
                )
            )
        limit = self.shed_deadline
        if deadline is not None and deadline >= 0:
            limit = deadline if limit <= 0 else min(limit, deadline)
        if limit > 0:
            wait = self.estimated_wait()
            if wait > limit:
                return self._shed(
                    ShedDecision(503, "deadline", max(_MIN_RETRY_AFTER, wait))
                )
        self.inflight += 1
        self.stats["admitted"] += 1
        if self.inflight > self.stats["peak_inflight"]:
            self.stats["peak_inflight"] = self.inflight
        self._record(0)
        return None

    def release(self, elapsed: float | None = None) -> None:
        """Return an admitted slot; ``elapsed`` feeds the service EWMA."""
        if self.inflight > 0:
            self.inflight -= 1
        if elapsed is not None and elapsed >= 0:
            if self.service_ewma == 0.0:
                self.service_ewma = elapsed
            else:
                self.service_ewma += _EWMA_ALPHA * (
                    elapsed - self.service_ewma
                )

    def _shed(self, decision: ShedDecision) -> ShedDecision:
        self.stats[f"shed_{decision.reason}"] += 1
        self._record(1)
        return decision

    # -- brownout -------------------------------------------------------
    def _record(self, shed: int) -> None:
        at = self._window_at
        self._window_shed += shed - self._window[at]
        self._window[at] = shed
        self._window_at = (at + 1) % self.brownout_window
        if self._window_filled < self.brownout_window:
            self._window_filled += 1
        active = (
            self._window_filled >= self.brownout_window
            and self._window_shed
            >= self.brownout_threshold * self.brownout_window
        )
        if active and not self._browned_out:
            self.stats["brownouts"] += 1
        self._browned_out = active

    @property
    def brownout(self) -> bool:
        """Sustained overload: shed optional work (audit/trace) first."""
        return self._browned_out

    def snapshot(self) -> dict:
        """A scrape-friendly view of the controller's state."""
        return {
            "capacity": self.capacity,
            "shed_deadline_s": self.shed_deadline,
            "inflight": self.inflight,
            "service_ewma_ms": round(self.service_ewma * 1e3, 4),
            "estimated_wait_ms": round(self.estimated_wait() * 1e3, 4),
            "brownout": self._browned_out,
            **self.stats,
        }


def memory_overlay(book) -> MemoryLedgerBook:
    """A volatile ledger book seeded from ``book``'s in-process state.

    Used by the ``memory`` WAL-failure policy: the overlay starts from
    the exact cumulative guarantees the durable book last held (which
    includes any charges whose fsync failed — ambiguity over-protects),
    so the per-user floor keeps binding across the durability outage.
    Completed idempotency-replay entries ride along so retries of
    already-released responses still replay instead of re-charging.
    """
    overlay = MemoryLedgerBook(
        book.floor, telemetry=getattr(book, "telemetry", None)
    )
    for user, ledger in book._books.items():
        if len(ledger) == 0:
            continue
        overlay.book(user).restore(
            ledger.cumulative_alpha, label="wal-outage-overlay",
            releases=len(ledger),
        )
    for idem, entry in book._replay.items():
        overlay._replay.put(idem, dict(entry))
    return overlay


class WALCircuitBreaker:
    """Circuit breaker around the durable ledger's persistence failures.

    States: ``closed`` (durable charging), ``open`` (the policy is in
    effect), and an implicit half-open — :meth:`should_probe` grants one
    recovery attempt per ``cooldown`` window.

    The breaker never silently downgrades durability: opening it is
    loud (healthz, metrics, a tracer event from the server) and the
    ``memory`` policy marks every response it releases.
    """

    def __init__(
        self,
        *,
        policy: str = "reject",
        cooldown: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if policy not in WAL_FAILURE_POLICIES:
            raise ValidationError(
                f"WAL failure policy must be one of {WAL_FAILURE_POLICIES},"
                f" got {policy!r}"
            )
        if cooldown <= 0:
            raise ValidationError(
                f"breaker cooldown must be > 0, got {cooldown}"
            )
        self.policy = policy
        self.cooldown = float(cooldown)
        self._clock = clock
        self.open = False
        self.reason: str | None = None
        self.trips = 0
        self.recoveries = 0
        self._opened_at = 0.0
        self._last_probe = 0.0

    def trip(self, reason: str) -> None:
        """Record a persistence failure; open (or re-open) the breaker."""
        now = self._clock()
        if not self.open:
            self.trips += 1
            self._opened_at = now
        self.open = True
        self.reason = str(reason)
        self._last_probe = now

    def should_probe(self) -> bool:
        """Half-open: grant one recovery attempt per cooldown window."""
        if not self.open:
            return False
        now = self._clock()
        if now - self._last_probe >= self.cooldown:
            self._last_probe = now
            return True
        return False

    def reset(self) -> None:
        """A probe succeeded; durable charging resumes."""
        if self.open:
            self.recoveries += 1
        self.open = False
        self.reason = None

    def retry_after(self) -> float:
        """Seconds until the next recovery probe could run."""
        if not self.open:
            return 0.0
        return max(
            _MIN_RETRY_AFTER,
            self.cooldown - (self._clock() - self._last_probe),
        )

    def snapshot(self) -> dict:
        return {
            "state": "open" if self.open else "closed",
            "policy": self.policy,
            "trips": self.trips,
            "recoveries": self.recoveries,
            "reason": self.reason,
            "open_seconds": (
                round(self._clock() - self._opened_at, 3) if self.open else 0.0
            ),
        }
