"""Online auditing of live serving traffic.

:mod:`repro.release.audit` audits a mechanism offline by driving it with
its own traffic; a serving process gets audit traffic for free. The
:class:`OnlineAuditor` Bernoulli-samples a slice of every executed batch
(``rate``), accumulates per-deployment ``(true result, response)``
counts, and on :meth:`sweep` replays the counts against the law each
deployment *claims* to implement:

* ``geometric`` deployments are checked against an **independent
  re-derivation** of the two-sided-geometric law via the vectorized
  :func:`repro.sampling.geometric.two_sided_geometric_pmf` (interior
  cells) and the closed-form folded tails (cap cells, Definition 4) —
  computed from the *spec*, never from the artifact's own kernel. A
  tampered kernel whose digest was re-forged therefore still diverges
  from the replayed law and is flagged once enough responses accumulate;
* ``optimal`` deployments are checked against the artifact's
  certificate-verified kernel (the bespoke LP solution has no closed
  form to re-derive without a solver; its optimality proof is replayed
  at load time instead).

The comparison is a seed-stable chi-square: per sampled input row, cells
with expected count >= ``MIN_EXPECTED`` contribute individually and the
thin tail cells are pooled into one bucket (the standard guard against
tiny-expectation blow-ups), then the statistic is compared to
``dof + sigmas * sqrt(2 * dof)`` — at the default ``sigmas = 10`` a
false flag is a > 10-sigma event, while a mechanism serving a genuinely
different law overshoots by orders of magnitude (asserted in
``benchmarks/bench_serving.py``, which injects a tampered kernel).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from ..sampling.geometric import two_sided_geometric_pmf
from ..sampling.rng import ensure_generator

__all__ = ["AuditFinding", "OnlineAuditor", "expected_response_matrix"]

#: Cells below this expected count are pooled into one tail bucket per
#: row before the chi-square is computed.
MIN_EXPECTED = 5.0


def expected_response_matrix(spec) -> np.ndarray:
    """The float response law a ``geometric`` deployment must follow.

    Re-derived from ``(n, alpha)`` alone — Definition 4 with the
    unbounded tails folded into the caps — so it is an independent
    witness against the served kernel, not a copy of it.
    """
    if spec.kind != "geometric":
        raise ValidationError(
            "expected_response_matrix re-derives the geometric law; "
            f"got a {spec.kind!r} spec"
        )
    n = spec.n
    alpha = float(spec.alpha)
    size = n + 1
    inputs = np.arange(size)
    offsets = inputs[None, :] - inputs[:, None]
    expected = two_sided_geometric_pmf(alpha, offsets.ravel()).reshape(
        size, size
    )
    powers = alpha ** np.abs(offsets)
    expected[:, 0] = powers[:, 0] / (1.0 + alpha)
    expected[:, n] = powers[:, n] / (1.0 + alpha)
    expected.setflags(write=False)
    return expected


@dataclass(frozen=True)
class AuditFinding:
    """Outcome of one deployment's audit sweep.

    ``flagged`` is only ever ``True`` when ``sufficient`` is — an
    under-sampled deployment is reported as unaudited, not as clean.
    """

    key: str
    kind: str
    samples: int
    sufficient: bool
    statistic: float
    limit: float
    dof: int
    flagged: bool


class _Deployment:
    __slots__ = ("key", "kind", "expected", "counts", "samples")

    def __init__(self, key: str, kind: str, expected: np.ndarray) -> None:
        self.key = key
        self.kind = kind
        self.expected = expected
        self.counts = np.zeros(expected.shape, dtype=np.int64)
        self.samples = 0


class OnlineAuditor:
    """Accumulates sampled serving responses and replays them per sweep.

    Parameters
    ----------
    rate:
        Bernoulli sampling probability per response. ``0`` disables the
        hook entirely (``observe`` is then O(1) and touches nothing);
        ``1`` audits every response.
    min_samples:
        Per-deployment sample floor below which a sweep reports the
        deployment as not-yet-sufficient instead of judging it.
    sigmas:
        Flag threshold in chi-square standard deviations above the mean.
    rng:
        Seed or generator for the sampling slice (seeded in tests and
        benchmarks so audit verdicts are reproducible).
    """

    def __init__(
        self,
        *,
        rate: float = 0.05,
        min_samples: int = 2000,
        sigmas: float = 10.0,
        rng=None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValidationError(f"audit rate must be in [0, 1], got {rate}")
        if min_samples < 1:
            raise ValidationError(
                f"min_samples must be >= 1, got {min_samples}"
            )
        if sigmas <= 0:
            raise ValidationError(f"sigmas must be > 0, got {sigmas}")
        self.rate = float(rate)
        self.min_samples = int(min_samples)
        self.sigmas = float(sigmas)
        self._rng = ensure_generator(rng)
        self._deployments: dict[int, _Deployment] = {}
        self.last_findings: tuple[AuditFinding, ...] = ()

    def register(self, index: int, artifact) -> None:
        """Start auditing a deployment served under batcher ``index``.

        Geometric deployments get the independently re-derived law;
        optimal deployments the certificate-verified kernel view.
        """
        spec = artifact.spec
        if spec.kind == "geometric":
            expected = expected_response_matrix(spec)
        else:
            expected = artifact.float_matrix
        self._deployments[int(index)] = _Deployment(
            spec.key(), spec.kind, expected
        )

    @property
    def samples(self) -> int:
        """Total responses accumulated across deployments."""
        return sum(d.samples for d in self._deployments.values())

    def observe(
        self, tables: np.ndarray, rows: np.ndarray, values: np.ndarray
    ) -> int:
        """Sample one executed batch into the audit counts.

        Vectorized: one Bernoulli mask over the batch, then one
        ``np.add.at`` scatter per distinct deployment present in the
        sampled slice. Returns the number of responses recorded.
        """
        if self.rate <= 0.0 or not self._deployments:
            return 0
        size = len(values)
        if self.rate >= 1.0:
            picked = np.ones(size, dtype=bool)
        else:
            picked = self._rng.random(size) < self.rate
        if not picked.any():
            return 0
        tables = np.asarray(tables)[picked]
        rows = np.asarray(rows)[picked]
        values = np.asarray(values)[picked]
        recorded = 0
        for index in np.unique(tables):
            deployment = self._deployments.get(int(index))
            if deployment is None:
                continue
            mask = tables == index
            np.add.at(deployment.counts, (rows[mask], values[mask]), 1)
            count = int(mask.sum())
            deployment.samples += count
            recorded += count
        return recorded

    def _judge(self, deployment: _Deployment) -> AuditFinding:
        statistic = 0.0
        dof = 0
        for i in range(deployment.counts.shape[0]):
            observed = deployment.counts[i]
            total = int(observed.sum())
            if total == 0:
                continue
            expected = deployment.expected[i] * total
            heavy = expected >= MIN_EXPECTED
            if heavy.any():
                statistic += float(
                    ((observed[heavy] - expected[heavy]) ** 2
                     / expected[heavy]).sum()
                )
            tail_expected = float(expected[~heavy].sum())
            tail_observed = int(observed[~heavy].sum())
            buckets = int(heavy.sum())
            if tail_expected > 0.0:
                statistic += (
                    (tail_observed - tail_expected) ** 2 / tail_expected
                )
                buckets += 1
            dof += max(buckets - 1, 0)
        sufficient = deployment.samples >= self.min_samples and dof > 0
        limit = (
            dof + self.sigmas * math.sqrt(2.0 * dof) if dof else math.inf
        )
        return AuditFinding(
            key=deployment.key,
            kind=deployment.kind,
            samples=deployment.samples,
            sufficient=sufficient,
            statistic=statistic,
            limit=limit,
            dof=dof,
            flagged=bool(sufficient and statistic > limit),
        )

    def sweep(self) -> tuple[AuditFinding, ...]:
        """Replay every deployment's accumulated counts; cache findings."""
        self.last_findings = tuple(
            self._judge(deployment)
            for deployment in self._deployments.values()
        )
        return self.last_findings

    def flagged(self) -> tuple[AuditFinding, ...]:
        """Findings from the latest sweep that flagged a deployment."""
        return tuple(f for f in self.last_findings if f.flagged)
