"""Mechanism serving: the ``repro serve`` subsystem.

The top of the compile → verify → publish → **serve** lifecycle: an
asyncio micro-batched statistic service that deploys compiled
:class:`~repro.release.artifacts.MechanismArtifact` entries (zero LP
solves on the request path, verification replayed at load), fuses
concurrent queries across heterogeneous deployments into single
alias-table gathers, accounts per-user privacy budgets concurrently,
and feeds a sampled slice of live responses through an online audit
replay of the geometric law.

See :mod:`repro.serving.server` for the architecture overview and
``benchmarks/bench_serving.py`` for the load-generator harness.
"""

from .audit import AuditFinding, OnlineAuditor, expected_response_matrix
from .batching import MicroBatcher
from .client import HTTPServingClient, InProcessClient
from .fallback import DEGRADED_MODES, fallback_spec, resolve_fallbacks
from .faults import (
    CRASH_POINTS,
    FLEET_FAULTS,
    FaultInjector,
    FaultyFS,
    FlakyEndpoint,
    InjectedCrash,
    fsync_storm,
)
from .overload import (
    WAL_FAILURE_POLICIES,
    AdmissionController,
    ShedDecision,
    WALCircuitBreaker,
    memory_overlay,
)
from .server import MechanismServer
from .supervisor import ServingSupervisor, make_listen_socket

__all__ = [
    "AuditFinding",
    "OnlineAuditor",
    "expected_response_matrix",
    "MicroBatcher",
    "HTTPServingClient",
    "InProcessClient",
    "MechanismServer",
    "ServingSupervisor",
    "make_listen_socket",
    "AdmissionController",
    "ShedDecision",
    "WALCircuitBreaker",
    "memory_overlay",
    "WAL_FAILURE_POLICIES",
    "DEGRADED_MODES",
    "fallback_spec",
    "resolve_fallbacks",
    "CRASH_POINTS",
    "FLEET_FAULTS",
    "FaultInjector",
    "FaultyFS",
    "FlakyEndpoint",
    "InjectedCrash",
    "fsync_storm",
]
