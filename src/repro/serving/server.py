"""The mechanism-serving subsystem: ``repro serve``.

The paper's deployment story is inherently multi-tenant: ONE published
geometric release serves every minimax consumer optimally (Theorem 1),
and heterogeneous deployments (different ``n``, ``alpha``, bespoke
side-information mechanisms) coexist behind one statistic service. This
module is that serving layer, built exclusively from pieces the pipeline
has already *proved*:

* mechanisms come from compiled :class:`~repro.release.artifacts.MechanismArtifact`
  entries in an :class:`~repro.release.artifacts.ArtifactStore` — never
  from a solver: a spec that was not pre-compiled (``repro compile``,
  including ``--side-grid`` pre-warming) is a 404, so the request path
  is zero-solve by construction;
* each artifact is **verified on load** (certificate replay, exact
  pmf-law re-derivation, bit-exact alias-table reconstruction) before it
  may serve a single response;
* concurrent requests are micro-batched
  (:class:`~repro.serving.batching.MicroBatcher`) into fused
  :class:`~repro.sampling.alias.HeterogeneousAliasSampler` gathers —
  mixed ``n``/``alpha`` deployments in one numpy tick;
* every release is charged to the requesting user's
  :class:`~repro.release.ledger.ConcurrentPrivacyLedger` *before*
  sampling; exceeding the per-user floor is an HTTP 429, and the
  charge-or-reject is atomic so racers can never overspend. With
  ``ledger_dir=`` the book is a crash-safe
  :class:`~repro.release.durable_ledger.DurableLedger`: the charge is
  journaled (and fsync'd — per charge, or once per micro-batch under
  group commit) *before* the response is released, so a crash can only
  over-protect, and budgets survive restarts instead of silently
  refilling (which would be a privacy violation, not an availability
  bug). Requests may carry an ``"idem"`` idempotency key: a retried
  publish is answered from the replay journal instead of
  double-charging;
* a sampled slice of responses feeds the
  :class:`~repro.serving.audit.OnlineAuditor`, which periodically
  replays the accumulated counts against the independently re-derived
  geometric law — the last line of defense against a kernel tampered
  *after* load-time verification.

Transport is stdlib-only: HTTP/1.1 (keep-alive) on
:func:`asyncio.start_server` for real sockets (``curl``-able), plus the
zero-copy in-process path (:meth:`MechanismServer.handle_request`) used
by tests, benchmarks, and co-located clients.

Request/response shape (``POST /publish``)::

    {"user": "gov", "n": 100, "alpha": "1/2", "true_result": 42,
     "idem": "optional-retry-key"}
      -> 200 {"value": 41, "alpha": "1/2", "n": 100, ...}
      -> 404 unknown/uncompiled deployment
      -> 429 {"error": "..."} when the user's budget floor is hit
      -> 503 quarantined deployment or unavailable durable ledger

Resilience: artifacts that fail load-time verification are
**quarantined** (503 on that deployment, the rest of the store serves);
``SIGTERM``/``SIGINT`` trigger a graceful drain (stop accepting, await
open connections up to ``drain_deadline``, flush the batcher, fsync and
close the ledger).

``GET /healthz``, ``GET /artifacts``, ``GET /metrics``, and
``GET /ledger/<user>`` expose liveness + ledger/WAL health, the
deployment list, counters + audit findings, and per-user accounting.

Telemetry (PR 9): the server carries a :class:`repro.obs.Telemetry` —
on by default; pass ``telemetry=False`` for the bare pre-telemetry
server — giving it labeled Prometheus metrics (``GET /metrics``
content-negotiates the text exposition; the JSON shape above remains
the default), sampled end-to-end request traces (``--trace-rate`` /
``--trace-dir``; ring served at ``GET /trace/recent``), and budget
burn-rate gauges with a ``GET /obs/burn`` drill-down. A traced publish
carries one trace ID across ``server.publish`` → ``ledger.charge`` →
``wal.append`` → ``wal.fsync`` → ``batch.flush`` → ``sampler.gather``,
the batch-scoped spans broadcast by the micro-batcher.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import signal
import time
from fractions import Fraction

import numpy as np

from ..exceptions import ReproError, ValidationError
from ..obs import (
    MetricsRegistry,
    Telemetry,
    burn_rows_from_book,
    default_registry,
    floor_proximity,
)
from ..release.artifacts import (
    ArtifactSpec,
    resolve_artifact_store,
    verify_artifact,
)
from ..release.durable_ledger import (
    NO_FAULTS,
    DurableLedger,
    LedgerUnavailableError,
    MemoryLedgerBook,
)
from ..release.ledger import ConcurrentPrivacyLedger
from ..sampling.alias import HeterogeneousAliasSampler
from ..sampling.rng import ensure_generator
from .audit import OnlineAuditor
from .batching import MicroBatcher
from .fallback import DEGRADED_MODES, resolve_fallbacks
from .overload import AdmissionController, WALCircuitBreaker, memory_overlay

__all__ = ["MechanismServer"]

#: CLI spellings of the WAL failure policies (the flag names are the
#: self-describing long forms; the breaker uses the short ones).
_WAL_POLICY_ALIASES = {
    "reject-new-charges": "reject",
    "memory-mode-with-alarm": "memory",
    "reject": "reject",
    "memory": "memory",
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Idempotency keys above this length are rejected (they are journaled;
#: unbounded keys would be a disk-growth vector).
_MAX_IDEM = 128

#: Request bodies above this are rejected outright (a publish payload is
#: tiny; anything bigger is a client bug or abuse).
_MAX_BODY = 1 << 16

#: Sentinel distinguishing "cached as invalid" from "not cached".
_UNCACHED = object()

#: Deferred latency samples fold into the histograms at this many
#: pending pairs (and at every scrape) — bounds memory between scrapes
#: while keeping the per-request cost to a tuple append.
_LATENCY_FOLD_CAP = 65536


def _parse_query(query: str) -> dict:
    """Minimal query-string parsing (no repeats, no percent-decoding —
    the observability routes only take simple tokens)."""
    params: dict = {}
    if query:
        for part in query.split("&"):
            name, _, value = part.partition("=")
            if name:
                params[name] = value
    return params


#: ``GET /metrics`` serves the Prometheus text exposition instead of
#: JSON when the Accept header asks for one of these (or the query
#: string carries ``format=prometheus``).
_PROM_ACCEPT = ("text/plain", "application/openmetrics-text")
_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Deployment:
    __slots__ = (
        "index", "spec", "artifact", "verification", "latency", "charges"
    )

    def __init__(self, index, spec, artifact, verification) -> None:
        self.index = index
        self.spec = spec
        self.artifact = artifact
        self.verification = verification
        # Telemetry: the pre-resolved latency-histogram child for this
        # deployment's spec-key label (None when telemetry is off) and a
        # plain charge count the scrape-time collector turns into the
        # epsilon-spent gauge — the hot path pays one histogram observe
        # and one integer increment, never a label resolution.
        self.latency = None
        self.charges = 0


class MechanismServer:
    """Async micro-batched mechanism server over a compiled store.

    Parameters
    ----------
    store:
        The :class:`~repro.release.artifacts.ArtifactStore` (or a path /
        ``None`` for the ``REPRO_ARTIFACT_DIR`` default) holding the
        compiled deployments.
    floor:
        Per-user privacy floor handed to each user's ledger; ``0``
        disables budget enforcement (accounting is still recorded).
    ledger_dir:
        When given, budgets live in a crash-safe
        :class:`~repro.release.durable_ledger.DurableLedger` at this
        directory (shared by N worker processes; budgets survive
        restarts). ``None`` keeps the in-memory book.
    ledger / ledger_fsync:
        ``ledger`` passes a pre-built ledger book directly (overrides
        ``ledger_dir``/``floor`` wiring); ``ledger_fsync`` picks the
        journal policy for a ``ledger_dir`` book — the default
        ``"group"`` amortizes one fsync per micro-batch flush (group
        commit), which keeps the release-implies-durable invariant
        because every batch is synced before its futures resolve.
    drain_deadline:
        Seconds :meth:`stop` waits for in-flight connections before
        cancelling them.
    faults:
        A :class:`~repro.serving.faults.FaultInjector` threaded through
        the batcher and durable ledger (chaos testing only).
    batch_window:
        Micro-batch deadline in seconds (see
        :class:`~repro.serving.batching.MicroBatcher`); ``0`` disables
        batching.
    batch_max:
        Micro-batch size bound.
    audit_rate:
        Fraction of responses fed to the online auditor; ``0`` disables
        the hook.
    audit_every:
        Run an audit sweep every this-many executed batches (``0``
        means only on explicit :meth:`audit` calls).
    verify:
        Verify every artifact on load (default). Loading an unverified
        artifact requires an explicit ``verify=False`` on
        :meth:`load_artifact` — the tamper-injection path used by the
        serving benchmark to prove the online audit catches what load
        verification was prevented from seeing.
    seed / audit_seed:
        Seeds for the sampling RNG and the auditor's slice RNG.
    telemetry:
        ``None`` (default) builds a :class:`repro.obs.Telemetry` over a
        private registry (merged with the process default registry —
        where the solver layer reports — at scrape time);
        ``False`` disables telemetry entirely (the configuration
        ``benchmarks/bench_observability.py`` measures overhead
        against); an explicit :class:`~repro.obs.Telemetry` is adopted
        as-is (shared registries across servers included).
    trace_rate / trace_dir / trace_ring / trace_seed:
        Tracer construction for the default telemetry: the fraction of
        requests traced end-to-end, the directory receiving the JSONL
        span log (``None`` keeps the in-memory ring only), the ring
        capacity behind ``GET /trace/recent``, and the sampling seed.
    queue_depth / shed_deadline:
        Admission control (PR 10): the bound on in-flight publishes and
        the deadline (seconds) above which a request's estimated queue
        wait sheds it — both enforced *before* any ledger charge, with
        429/503 + ``Retry-After``. ``0``/``0.0`` (the defaults) disable
        the gate entirely (no per-request overhead).
    degraded:
        ``"503"`` (default) keeps quarantine semantics; ``"geometric"``
        serves the certificate-verified geometric artifact at the same
        ``(n, alpha)`` in place of a quarantined bespoke one, with
        responses marked ``degraded`` (see :mod:`repro.serving.fallback`
        for the universality justification).
    wal_failure_policy / breaker_cooldown:
        What a charge means while the WAL cannot persist
        (``"reject-new-charges"``/``"reject"`` or
        ``"memory-mode-with-alarm"``/``"memory"``), and the circuit
        breaker's half-open probe interval in seconds.
    worker_id:
        Fleet slot label (set by the supervisor) echoed in
        ``/healthz``/``/readyz`` responses.
    ledger_factory:
        Zero-arg callable building a replacement durable ledger for
        breaker recovery probes; defaults to re-opening ``ledger_dir``.
    """

    def __init__(
        self,
        store=None,
        *,
        floor=0,
        ledger_dir=None,
        ledger=None,
        ledger_fsync: str = "group",
        drain_deadline: float = 5.0,
        faults=None,
        batch_window: float = 0.002,
        batch_max: int = 4096,
        audit_rate: float = 0.05,
        audit_every: int = 64,
        verify: bool = True,
        seed=None,
        audit_seed=None,
        telemetry=None,
        trace_rate: float = 0.0,
        trace_dir=None,
        trace_ring: int = 1024,
        trace_seed=None,
        queue_depth: int = 0,
        shed_deadline: float = 0.0,
        degraded: str = "503",
        wal_failure_policy: str = "reject",
        breaker_cooldown: float = 1.0,
        worker_id=None,
        ledger_factory=None,
    ) -> None:
        self.store = resolve_artifact_store(store)
        if self.store is None:
            raise ReproError(
                "MechanismServer needs an artifact store: pass one (or a "
                "path) or set REPRO_ARTIFACT_DIR"
            )
        self.floor = floor
        self.verify = bool(verify)
        self.drain_deadline = float(drain_deadline)
        self.faults = faults if faults is not None else NO_FAULTS
        self._rng = ensure_generator(seed)
        self._deployments: dict[str, _Deployment] = {}
        self._quarantined: dict[str, dict] = {}
        self._samplers: list = []
        self._fused: HeterogeneousAliasSampler | None = None
        if telemetry is False:
            obs = None
            self._owns_telemetry = False
        elif telemetry is None:
            obs = Telemetry(
                MetricsRegistry(),
                trace_rate=trace_rate,
                trace_dir=trace_dir,
                trace_ring=trace_ring,
                trace_seed=trace_seed,
            )
            self._owns_telemetry = True
        else:
            obs = telemetry
            self._owns_telemetry = False
        self.telemetry = obs
        self._obs = obs
        # Precomputed hot-path handles. The publish path must stay
        # within the bench-enforced overhead ceiling, so the per-request
        # telemetry work is all C-level: the sampling coin is a bound
        # RNG draw, the active-trace check a bound ContextVar.get, and
        # request/outcome tallies are plain dicts that the scrape-time
        # collector mirrors into the Prometheus families.
        self._may_trace = obs is not None and obs.tracer.rate > 0.0
        self._trace_rate = obs.tracer.rate if obs is not None else 0.0
        self._trace_coin = obs.tracer.coin if obs is not None else None
        self._trace_begin = obs.tracer.begin if obs is not None else None
        self._status_counts: dict[int, int] = {}
        self._outcome_counts = {
            "charged": 0, "rejected": 0, "replayed": 0, "pending": 0
        }
        self._latency_pending: list = []
        if ledger is not None:
            self.ledgers = ledger
            if obs is not None and getattr(ledger, "telemetry", None) is None:
                self.ledgers.telemetry = obs
        elif ledger_dir is not None:
            self.ledgers = DurableLedger(
                ledger_dir, floor, fsync=ledger_fsync, faults=self.faults,
                telemetry=obs,
            )
        else:
            self.ledgers = MemoryLedgerBook(floor, telemetry=obs)
        if degraded not in DEGRADED_MODES:
            raise ValidationError(
                f"degraded mode must be one of {DEGRADED_MODES}, got "
                f"{degraded!r}"
            )
        self.degraded = degraded
        self.worker_id = worker_id
        policy = _WAL_POLICY_ALIASES.get(wal_failure_policy)
        if policy is None:
            raise ValidationError(
                "wal_failure_policy must be one of "
                f"{sorted(_WAL_POLICY_ALIASES)}, got {wal_failure_policy!r}"
            )
        self.admission = (
            AdmissionController(int(queue_depth), float(shed_deadline))
            if (queue_depth or shed_deadline)
            else None
        )
        self.breaker = WALCircuitBreaker(
            policy=policy, cooldown=breaker_cooldown
        )
        if ledger_factory is None and ledger is None and ledger_dir is not None:
            def ledger_factory():
                return DurableLedger(
                    ledger_dir, floor, fsync=ledger_fsync,
                    faults=self.faults, telemetry=obs,
                )
        self._ledger_factory = ledger_factory
        self._wal_overlay = None
        self._failed_ledger = None
        self._spec_cache: dict[tuple, tuple[str, Fraction] | None] = {}
        self.auditor = OnlineAuditor(
            rate=audit_rate, rng=audit_seed
        )
        self.audit_every = int(audit_every)
        self._batches_since_sweep = 0
        self.batcher = MicroBatcher(
            self._execute, window=batch_window, max_size=batch_max,
            faults=self.faults, telemetry=obs,
        )
        if obs is not None:
            obs.registry.register_collector(self._collect_gauges)
        self.metrics = {
            "requests": 0,
            "published": 0,
            "replayed": 0,
            "rejected_budget": 0,
            "not_found": 0,
            "bad_request": 0,
            "quarantined_requests": 0,
            "shed": 0,
            "degraded": 0,
            "breaker_rejected": 0,
            "brownout_skips": 0,
            "ledger_unavailable": 0,
            "errors": 0,
            "audit_recorded": 0,
            "audit_sweeps": 0,
            "audit_flagged": 0,
        }
        self._http_server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._shutdown: asyncio.Event | None = None
        self._draining = False
        self._stopped = False

    # -- deployment lifecycle ------------------------------------------
    def load(self, spec: ArtifactSpec) -> int:
        """Load one compiled deployment from the store; returns its index.

        Misses are an error, not a compile: the request path (and the
        warm-up path) of a server must never run a solver — pre-warm
        with ``repro compile`` (``--side-grid`` for bespoke
        side-information artifacts).
        """
        existing = self._deployments.get(spec.key())
        if existing is not None:
            return existing.index
        artifact = self.store.get(spec)
        if artifact is None:
            raise ReproError(
                f"artifact {spec.canonical()!r} is not compiled in "
                f"{self.store.path}; run `repro compile` first"
            )
        return self.load_artifact(artifact)

    def load_artifact(self, artifact, *, verify: bool | None = None) -> int:
        """Register an artifact for serving; returns its batcher index.

        ``verify`` defaults to the server-wide setting; a verification
        failure refuses the deployment. Passing ``verify=False`` is the
        deliberately-unsafe injection port for audit testing.
        """
        verify = self.verify if verify is None else bool(verify)
        spec = artifact.spec
        existing = self._deployments.get(spec.key())
        if existing is not None:
            return existing.index
        verification = None
        if verify:
            verification = verify_artifact(artifact)
            if not verification.ok:
                raise ReproError(
                    f"artifact {spec.canonical()!r} failed load-time "
                    f"verification: {'; '.join(verification.failures)}"
                )
        index = len(self._samplers)
        self._samplers.append(artifact.sampler)
        self._fused = HeterogeneousAliasSampler(self._samplers)
        deployment = _Deployment(index, spec, artifact, verification)
        if self._obs is not None:
            deployment.latency = self._obs.publish_latency.labels(
                spec.key()[:12]
            )
        self._deployments[spec.key()] = deployment
        self.auditor.register(index, artifact)
        return index

    def load_store(self) -> int:
        """Load every (loadable) artifact in the store; returns the count.

        Damaged entries are skipped (they already fail ``repro cache
        verify``). A verification failure **quarantines** that one
        deployment — requests naming it get a 503 with the reason while
        every healthy artifact keeps serving — instead of refusing the
        whole store: one bad entry must not take down the service.
        """
        loaded = 0
        for key in self.store.keys():
            artifact = self.store.load_key(key)
            if artifact is None:
                continue
            try:
                self.load_artifact(artifact)
            except ReproError as err:
                self._quarantined[artifact.spec.key()] = {
                    "spec": artifact.spec,
                    "reason": str(err),
                }
                continue
            loaded += 1
        if self.degraded == "geometric" and self._quarantined:
            # Certified graceful degradation: pair each quarantined
            # bespoke deployment with the verified geometric artifact at
            # the same (n, alpha) — see serving/fallback.py for why that
            # is exactly privacy-preserving and minimax-utility-safe.
            resolve_fallbacks(self)
        return loaded

    @property
    def quarantined(self) -> dict[str, dict]:
        """Deployments refused at load, by spec key (503 when requested)."""
        return dict(self._quarantined)

    @property
    def deployments(self) -> tuple[_Deployment, ...]:
        return tuple(self._deployments.values())

    def ledger(self, user: str) -> ConcurrentPrivacyLedger:
        """The (created-on-first-use) ledger accounting for ``user``."""
        return self.ledgers.book(user)

    # -- the fused execution tick --------------------------------------
    def _execute(self, tables: np.ndarray, rows: np.ndarray) -> np.ndarray:
        obs = self._obs
        if obs is not None:
            t0 = time.perf_counter()
            # Batch-scoped span: the batcher has bound this batch's
            # traced requests, so the fused gather lands in each of
            # their traces.
            with obs.tracer.span("sampler.gather", queries=len(tables)):
                values = self._fused.sample(tables, rows, self._rng)
            obs.gather_latency.observe(time.perf_counter() - t0)
        else:
            values = self._fused.sample(tables, rows, self._rng)
        # Group commit: one fsync covers every charge journaled by this
        # batch's requests, and it lands *before* the batcher resolves
        # their futures — no response is released against a volatile
        # charge. (A no-op for the memory book and fsync="always".)
        try:
            self.ledgers.sync()
        except LedgerUnavailableError as err:
            self._trip_wal(str(err))
            if self.breaker.policy != "memory":
                # Fail this batch's futures: the charges may be on disk
                # but cannot be proven durable, so the responses are
                # withheld (over-protects the users, never under).
                raise
            # Memory policy: the overlay (seeded from the failed book's
            # in-process state, which includes this batch's charges)
            # keeps the floor binding; the batch releases marked
            # volatile.
        admission = self.admission
        if admission is not None and admission.brownout:
            # Brownout: shed our own optional work before any more user
            # requests — the audit slice can skip a tick, user traffic
            # cannot. Loud, never silent.
            self.metrics["brownout_skips"] += 1
            if self._obs is not None:
                self._obs.brownout_skips.labels("audit").inc()
        else:
            recorded = self.auditor.observe(tables, rows, values)
            if recorded:
                self.metrics["audit_recorded"] += recorded
        if self.audit_every > 0:
            self._batches_since_sweep += 1
            if self._batches_since_sweep >= self.audit_every:
                self.audit()
        return values

    def audit(self):
        """Run an audit sweep now; returns the findings."""
        self._batches_since_sweep = 0
        findings = self.auditor.sweep()
        self.metrics["audit_sweeps"] += 1
        self.metrics["audit_flagged"] = sum(1 for f in findings if f.flagged)
        obs = self._obs
        if obs is not None:
            for finding in findings:
                obs.audit_findings.labels(
                    "true" if finding.flagged else "false"
                ).inc()
                # Findings bypass trace sampling — a divergence from the
                # re-derived law is always worth a record.
                obs.tracer.event(
                    "audit.finding",
                    key=finding.key[:12],
                    kind=finding.kind,
                    samples=finding.samples,
                    statistic=finding.statistic,
                    limit=finding.limit,
                    flagged=finding.flagged,
                )
        return findings

    def _fold_latency(self) -> None:
        """Fold deferred latency samples into the histogram children.

        The request path records raw ``(deployment, elapsed)`` pairs
        (two C-level ops); this fold buckets them per deployment in one
        ``observe_many`` batch pass. Runs at every scrape/snapshot and
        whenever the pending list hits :data:`_LATENCY_FOLD_CAP`, which
        bounds deferred memory.
        """
        pending = self._latency_pending
        if not pending:
            return
        self._latency_pending = []
        by_deployment: dict = {}
        for deployment, elapsed in pending:
            bucket = by_deployment.get(deployment)
            if bucket is None:
                bucket = by_deployment[deployment] = []
            bucket.append(elapsed)
        for deployment, values in by_deployment.items():
            deployment.latency.observe_many(values)
            deployment.charges += len(values)

    def _collect_gauges(self) -> None:
        """Scrape-time collector: request tallies, budget burn, WAL.

        Registered on the telemetry registry, so the work — mirroring
        the hot-path dict tallies into their Prometheus families,
        walking the ledger books for burn rows, ranking the top burners
        — happens per scrape/snapshot, never on the request path. Never
        raises: a scrape must not fail because the ledger is
        mid-shutdown.
        """
        obs = self._obs
        try:
            self._fold_latency()
            for status, count in self._status_counts.items():
                obs.requests.labels("publish", str(status)).value = float(
                    count
                )
            for outcome, count in self._outcome_counts.items():
                if count:
                    obs.ledger_outcomes.labels(outcome).value = float(count)
            stats = self.ledgers.stats()
            if "journal_bytes" in stats:
                obs.wal_journal_bytes.set(stats["journal_bytes"])
            rows = burn_rows_from_book(self.ledgers)
            for k, count in floor_proximity(rows).items():
                obs.users_near_floor.labels(str(k)).set(count)
            for row in rows[:10]:
                obs.user_spent_fraction.labels(row.user).set(
                    row.spent_fraction
                )
            for deployment in self._deployments.values():
                alpha = float(deployment.spec.alpha)
                if 0 < alpha < 1:
                    obs.deployment_epsilon.labels(
                        deployment.spec.key()[:12]
                    ).set(deployment.charges * -math.log(alpha))
            obs.breaker_state.set(1.0 if self.breaker.open else 0.0)
            admission = self.admission
            if admission is not None:
                obs.admission_inflight.set(float(admission.inflight))
                obs.admission_brownout.set(
                    1.0 if admission.brownout else 0.0
                )
            if self.degraded == "geometric":
                obs.degraded_deployments.set(
                    float(
                        sum(
                            1
                            for q in self._quarantined.values()
                            if q.get("fallback_key") is not None
                        )
                    )
                )
            obs.worker_ready.set(1.0 if self.readiness()[0] else 0.0)
        except Exception:  # noqa: BLE001 - scrapes must stay available
            pass

    # -- request handling ----------------------------------------------
    def _resolve_spec(self, payload: dict) -> tuple[str, Fraction] | None:
        """Map request deployment fields to ``(spec key, exact alpha)``.

        Memoized per distinct field tuple, so steady-state requests skip
        Fraction parsing, spec validation, and the SHA-256 key
        computation entirely.
        """
        side = payload.get("side")
        cache_key = (
            payload.get("kind", "geometric"),
            payload.get("n"),
            payload.get("alpha"),
            payload.get("loss"),
            None if side is None else tuple(side),
        )
        try:
            hit = self._spec_cache.get(cache_key, _UNCACHED)
        except TypeError:
            hit = _UNCACHED  # unhashable request field: validate fresh
        if hit is not _UNCACHED:
            if hit is None:
                raise ValidationError("malformed deployment fields")
            return hit
        try:
            spec = ArtifactSpec(
                kind=payload.get("kind", "geometric"),
                n=int(payload["n"]),
                alpha=Fraction(str(payload["alpha"])),
                loss=payload.get("loss"),
                side=None if side is None else tuple(int(i) for i in side),
            )
            resolved = (spec.key(), spec.alpha)
        except (KeyError, TypeError, ValueError, ValidationError):
            try:
                self._spec_cache[cache_key] = None
            except TypeError:
                pass
            raise ValidationError(
                "deployment fields must include integer n and a "
                "parseable alpha (e.g. \"1/2\"); optional kind/loss/side "
                "must name a compiled artifact spec"
            ) from None
        self._spec_cache[cache_key] = resolved
        return resolved

    async def publish(self, payload: dict) -> tuple[int, dict]:
        """The core serving operation; returns ``(status, response)``.

        With admission control on, the bounded-queue/deadline gate runs
        here, strictly before any ledger interaction: a shed request
        (429 queue-full / 503 deadline, both with ``Retry-After``)
        provably spent zero budget, so clients retry it freely without
        an idempotency key. One admitted ticket is held per request and
        returned in a ``finally`` — even an injected crash (a
        ``BaseException``) gives the slot back, so the in-flight count
        can never leak upward.
        """
        admission = self.admission
        if admission is None:
            return await self._observed_publish(payload)
        deadline = None
        raw = payload.get("deadline_ms")
        if raw is not None:
            try:
                deadline = float(raw) / 1e3
            except (TypeError, ValueError):
                deadline = None
        shed = admission.try_admit(deadline)
        if shed is not None:
            self.metrics["shed"] += 1
            if self._obs is not None:
                self._obs.sheds.labels(shed.reason).inc()
                counts = self._status_counts
                counts[shed.status] = counts.get(shed.status, 0) + 1
            return shed.status, {
                "error": "overloaded: the request was shed before any "
                "budget charge; retry after the hinted delay (no "
                "idempotency key needed — nothing was spent)",
                "shed": shed.reason,
                "retry_after": round(shed.retry_after, 4),
            }
        t_admit = time.perf_counter()
        try:
            return await self._observed_publish(payload)
        finally:
            admission.release(time.perf_counter() - t_admit)

    async def _observed_publish(self, payload: dict) -> tuple[int, dict]:
        """Telemetry wrapper: one latency clock, the per-status request
        counter, and — for the sampled fraction — the root
        ``server.publish`` span bound to the task so every layer below
        joins the same trace. Traced responses carry the trace ID under
        ``"trace"``. Under brownout the trace coin is skipped entirely
        (optional work sheds first) and the skip is counted.
        """
        obs = self._obs
        if obs is None:
            return await self._publish(payload, 0.0)
        t0 = time.perf_counter()
        ctx = None
        admission = self.admission
        if self._may_trace and admission is not None and admission.brownout:
            self.metrics["brownout_skips"] += 1
            obs.brownout_skips.labels("trace").inc()
        elif self._may_trace:
            # Inline of Tracer.sample: one C-level RNG draw decides,
            # and only the sampled fraction constructs a context.
            rate = self._trace_rate
            if rate >= 1.0 or self._trace_coin() < rate:
                ctx = self._trace_begin()
        if ctx is None:
            status, response = await self._publish(payload, t0)
        else:
            token = obs.tracer.activate(ctx)
            try:
                with obs.tracer.span("server.publish"):
                    status, response = await self._publish(payload, t0, ctx)
            finally:
                obs.tracer.deactivate(token)
            response["trace"] = ctx.trace_id
        counts = self._status_counts
        counts[status] = counts.get(status, 0) + 1
        return status, response

    async def _publish(
        self, payload: dict, t0: float, trace_ctx=None
    ) -> tuple[int, dict]:
        self.metrics["requests"] += 1
        user = payload.get("user")
        if not isinstance(user, str) or not user:
            self.metrics["bad_request"] += 1
            return 400, {"error": "payload needs a non-empty string 'user'"}
        try:
            key, alpha = self._resolve_spec(payload)
        except ValidationError as err:
            self.metrics["bad_request"] += 1
            return 400, {"error": str(err)}
        degraded_from = None
        quarantined = self._quarantined.get(key)
        if quarantined is not None:
            fallback = None
            if self.degraded == "geometric":
                fb_key = quarantined.get("fallback_key")
                if fb_key is not None:
                    fallback = self._deployments.get(fb_key)
            if fallback is None:
                self.metrics["quarantined_requests"] += 1
                return 503, {
                    "error": "deployment is quarantined (failed load-time "
                    "verification); recompile it with `repro compile`",
                    "reason": quarantined["reason"],
                    "key": key[:12],
                }
            # Certified degradation: the same-(n, alpha) geometric
            # artifact is alpha-private under the identical constraint
            # and universally optimal for minimax agents (Theorem 1), so
            # the response is marked degraded but never weaker.
            degraded_from = key
            deployment = fallback
            key = fallback.spec.key()
        else:
            deployment = self._deployments.get(key)
            if deployment is None:
                self.metrics["not_found"] += 1
                return 404, {
                    "error": "deployment is not compiled/loaded; pre-warm "
                    "it with `repro compile` (use --side-grid for "
                    "side-information artifacts)",
                    "key": key[:12],
                }
        try:
            row = int(payload["true_result"])
        except (KeyError, TypeError, ValueError):
            self.metrics["bad_request"] += 1
            return 400, {"error": "payload needs an integer 'true_result'"}
        if not 0 <= row <= deployment.spec.n:
            self.metrics["bad_request"] += 1
            return 400, {
                "error": f"true_result must lie in [0, {deployment.spec.n}]"
            }
        idem = payload.get("idem")
        if idem is not None and not (
            isinstance(idem, str) and 0 < len(idem) <= _MAX_IDEM
        ):
            self.metrics["bad_request"] += 1
            return 400, {
                "error": "optional 'idem' must be a non-empty string of "
                f"at most {_MAX_IDEM} characters"
            }
        obs = self._obs
        # WAL circuit breaker: while open, "reject" refuses the charge
        # outright (503 + Retry-After, nothing spent, nothing released)
        # and "memory" charges the alarm-marked volatile overlay. The
        # half-open probe piggybacks on request arrival — no timer task.
        breaker = self.breaker
        if breaker.open:
            if breaker.should_probe():
                self._recover_wal()
            if breaker.open and breaker.policy == "reject":
                self.metrics["breaker_rejected"] += 1
                return 503, {
                    "error": "privacy WAL is unavailable and the failure "
                    "policy is reject-new-charges: no charge was made and "
                    "no statistic was released",
                    "breaker": "open",
                    "reason": breaker.reason,
                    "retry_after": round(breaker.retry_after(), 4),
                }
        # ``trace_ctx`` rides in from the sampling decision in
        # ``publish``: untraced requests (the vast majority at low
        # sampling rates) carry ``None`` and skip all span machinery.
        try:
            # Atomic charge-or-reject: budget is committed (and, for a
            # durable book, journaled) before the draw, so a crash
            # mid-batch can only over-protect. A replayed idempotency
            # key returns the original response without charging again.
            if trace_ctx is not None:
                with obs.tracer.span("ledger.charge", user=user):
                    decision = self.ledgers.charge(
                        user, alpha, label=f"serve:{key[:12]}", idem=idem
                    )
            else:
                decision = self.ledgers.charge(
                    user, alpha, label=f"serve:{key[:12]}", idem=idem
                )
        except LedgerUnavailableError as err:
            self._trip_wal(str(err))
            if breaker.policy == "memory":
                # _trip_wal swapped self.ledgers to the volatile overlay
                # (seeded with the exact floors the durable book last
                # enforced); the charge retries there and the response
                # will be marked "durability": "volatile".
                decision = self.ledgers.charge(
                    user, alpha, label=f"serve:{key[:12]}", idem=idem
                )
            else:
                self.metrics["ledger_unavailable"] += 1
                return 503, {
                    "error": f"privacy ledger unavailable: {err}; the "
                    "charge was not recorded and no statistic was "
                    "released",
                    "retry_after": round(breaker.retry_after(), 4),
                }
        if obs is not None:
            self._outcome_counts[decision.outcome] += 1
        if decision.outcome == "replayed":
            self.metrics["replayed"] += 1
            status, response = decision.replay
            return status, dict(response)
        if decision.outcome == "rejected":
            self.metrics["rejected_budget"] += 1
            return 429, {
                "error": (
                    f"release at alpha={alpha} would take user {user!r} "
                    f"below the privacy floor {self.floor}"
                ),
                "user": user,
                "cumulative_alpha": str(decision.cumulative_alpha),
                "remaining_alpha": str(decision.remaining_alpha),
            }
        # outcome "charged", or "pending" (the charge was journaled but
        # the response was lost — the budget is already spent, so
        # sampling a fresh response spends nothing extra).
        try:
            if trace_ctx is not None:
                value = await self.batcher.submit(
                    deployment.index, row, trace=trace_ctx
                )
            else:
                value = await self.batcher.submit(deployment.index, row)
        except LedgerUnavailableError as err:
            # The batch's group-commit fsync failed under the reject
            # policy: the charge may be on disk but cannot be proven
            # durable, so the response is withheld. Over-protects the
            # user's budget; never under.
            self.metrics["ledger_unavailable"] += 1
            return 503, {
                "error": f"durability lost mid-batch: {err}; the response "
                "is withheld (the charge, if journaled, only "
                "over-protects)",
                "retry_after": round(self.breaker.retry_after(), 4),
            }
        except Exception as err:  # the gather is pure numpy; be loud
            self.metrics["errors"] += 1
            return 500, {"error": f"sampling failed: {err}"}
        self.metrics["published"] += 1
        if obs is not None:
            # Deferred latency fold: the hot path only appends
            # ``(deployment, elapsed)``; bucketing happens in one
            # batched ``observe_many`` pass at scrape time
            # (_fold_latency), mirroring how the sampler fuses
            # per-request draws into one gather.
            pending = self._latency_pending
            pending.append((deployment, time.perf_counter() - t0))
            if len(pending) >= _LATENCY_FOLD_CAP:
                self._fold_latency()
        response = {
            "value": value,
            "user": user,
            "n": deployment.spec.n,
            "alpha": str(alpha),
            "key": key[:12],
            "cumulative_alpha": str(decision.cumulative_alpha),
        }
        if degraded_from is not None:
            response["degraded"] = "geometric"
            response["requested_key"] = degraded_from[:12]
            self.metrics["degraded"] += 1
            if obs is not None:
                obs.degraded_responses.inc()
        if self.breaker.open and self.breaker.policy == "memory":
            # The alarm in memory-mode-with-alarm: every volatile
            # release says so (alongside /healthz, /readyz, and the
            # breaker gauge) — a durability downgrade is never silent.
            response["durability"] = "volatile"
        if idem is not None:
            # Best-effort replay journal: losing it downgrades a retry
            # from "replayed" to "pending" (re-sample, never re-charge).
            with contextlib.suppress(LedgerUnavailableError):
                self.ledgers.record_result(idem, 200, response)
        self.faults.crash("server.before-response")
        return 200, response

    # -- WAL circuit breaker -------------------------------------------
    def _trip_wal(self, reason: str) -> None:
        """A persistence failure: open the breaker, loudly.

        Under the ``memory`` policy this also swaps the serving book to
        a volatile :func:`~repro.serving.overload.memory_overlay` seeded
        from the failed durable book's in-process state — the per-user
        floor keeps binding exactly where it stood (fsync-ambiguous
        charges count as spent: over-protects).
        """
        breaker = self.breaker
        was_open = breaker.open
        breaker.trip(reason)
        if not was_open:
            obs = self._obs
            if obs is not None:
                obs.breaker_trips.labels("open").inc()
                # Bypasses trace sampling — a durability outage is
                # always worth a record.
                obs.tracer.event(
                    "wal.breaker-open", policy=breaker.policy, reason=reason
                )
            if breaker.policy == "memory" and self._wal_overlay is None:
                self._failed_ledger = self.ledgers
                self._wal_overlay = memory_overlay(self.ledgers)
                self.ledgers = self._wal_overlay

    def _recover_wal(self) -> bool:
        """Half-open probe: try to restore durable charging.

        Opens a fresh ledger via ``ledger_factory`` and demands a
        successful end-to-end :meth:`~repro.release.durable_ledger.
        DurableLedger.probe` (append + unconditional fsync). On success
        any volatile overlay charges are backfilled into the recovered
        journal first, then the serving book swaps back. On failure the
        breaker re-arms for another cooldown.
        """
        breaker = self.breaker
        factory = self._ledger_factory
        if factory is None:
            return False
        fresh = None
        try:
            fresh = factory()
            fresh.probe()
            overlay = self._wal_overlay
            if overlay is not None:
                self._backfill(fresh, overlay)
        except Exception as err:  # noqa: BLE001 - probing must not crash
            if fresh is not None:
                with contextlib.suppress(Exception):
                    fresh.close()
            breaker.trip(f"recovery probe failed: {err}")
            return False
        failed = (
            self._failed_ledger
            if self._failed_ledger is not None
            else self.ledgers
        )
        self.ledgers = fresh
        self._wal_overlay = None
        self._failed_ledger = None
        if failed is not None and failed is not fresh:
            with contextlib.suppress(Exception):
                failed.close()
        breaker.reset()
        obs = self._obs
        if obs is not None:
            obs.breaker_trips.labels("recover").inc()
            obs.tracer.event("wal.breaker-recovered")
        return True

    @staticmethod
    def _backfill(fresh, overlay) -> None:
        """Migrate the outage's volatile charges into the recovered WAL.

        Per user, the overlay's cumulative guarantee divided by the
        recovered one is exactly the product of the alphas charged while
        the disk was gone; journaling it as one combined ``backfill``
        charge lands the durable floor maths precisely where the overlay
        held it. Always affordable — the overlay enforced the same
        floor. Volatile replay entries are deliberately not migrated: a
        retry downgrades from "replayed" to "pending" (re-sample, never
        re-charge).
        """
        for user, book in overlay._books.items():
            view = fresh.view(user)
            fresh_cum = Fraction(
                1 if view is None else view.cumulative_alpha
            )
            delta = Fraction(book.cumulative_alpha) / fresh_cum
            if delta >= 1:
                continue
            fresh.charge(user, delta, label="backfill:wal-outage")
        fresh.sync()

    # -- readiness ------------------------------------------------------
    def readiness(self) -> tuple[bool, list[str]]:
        """Readiness, distinct from ``/healthz`` liveness: may this
        worker take *new* traffic?

        Ready means artifacts are loaded, the server is not draining,
        and the WAL is writable (breaker closed, ledger not failed). A
        memory-mode outage is still not-ready — the worker keeps
        serving volatile responses to clients already talking to it,
        but a fleet should route fresh traffic elsewhere until
        durability returns.
        """
        reasons: list[str] = []
        if not self._deployments:
            reasons.append("no deployments loaded")
        if self._draining or self._stopped:
            reasons.append("draining")
        breaker = self.breaker
        if breaker.open:
            reasons.append(
                f"wal breaker open ({breaker.policy}): {breaker.reason}"
            )
        else:
            try:
                failed = self.ledgers.stats().get("failed")
            except Exception:  # noqa: BLE001 - readiness must not raise
                failed = "ledger stats unavailable"
            if failed:
                reasons.append(f"ledger failed: {failed}")
        return (not reasons, reasons)

    async def handle_request(
        self, method: str, path: str, payload: dict | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict]:
        """Route one request (the transport-independent entry point).

        ``headers`` (lower-cased names) is optional and only consulted
        for content negotiation: ``GET /metrics`` returns the
        Prometheus text exposition instead of the legacy JSON shape
        when the Accept header asks for text/openmetrics (or the query
        string says ``format=prometheus``). Raw-text responses are
        conveyed as ``{"__raw__": text, "__content_type__": ...}`` —
        the HTTP transport unwraps them; in-process callers read the
        keys directly.
        """
        if method == "POST" and path == "/publish":
            return await self.publish(payload or {})
        path, _, query = path.partition("?")
        params = _parse_query(query)
        if method != "GET":
            return 405, {"error": f"method {method} not allowed"}
        status, response = self._route_get(path, params, headers)
        obs = self._obs
        if obs is not None:
            route = path.split("/", 2)[1] if path.startswith("/") else path
            obs.requests.labels(route or "root", str(status)).inc()
        return status, response

    def _route_get(
        self, path: str, params: dict, headers: dict | None
    ) -> tuple[int, dict]:
        if path == "/healthz":
            breaker = self.breaker
            health = {
                "status": "ok",
                "deployments": len(self._deployments),
                "quarantined": len(self._quarantined),
                "draining": self._draining,
                # Ledger/WAL health: journal bytes, seq, last-fsync
                # latency, compaction count for a durable book.
                "ledger": self.ledgers.stats(),
                "breaker": breaker.snapshot(),
                "durability": (
                    "volatile"
                    if breaker.open and breaker.policy == "memory"
                    else "durable"
                    if getattr(self.ledgers, "durable", False)
                    else "memory"
                ),
                "degraded_mode": self.degraded,
            }
            if self.worker_id is not None:
                health["worker"] = self.worker_id
            if self.admission is not None:
                health["admission"] = self.admission.snapshot()
            return 200, health
        if path == "/readyz":
            # Readiness gates *new* traffic; /healthz answers "alive".
            ready, reasons = self.readiness()
            body: dict = {"ready": ready}
            if reasons:
                body["reasons"] = reasons
            if self.worker_id is not None:
                body["worker"] = self.worker_id
            return (200 if ready else 503), body
        if path == "/artifacts":
            return 200, {
                "artifacts": [
                    {
                        "kind": d.spec.kind,
                        "n": d.spec.n,
                        "alpha": str(d.spec.alpha),
                        "loss": d.spec.loss,
                        "side": (
                            None if d.spec.side is None else list(d.spec.side)
                        ),
                        "key": d.spec.key()[:12],
                        "verified": (
                            d.verification.ok
                            if d.verification is not None
                            else False
                        ),
                    }
                    for d in self._deployments.values()
                ],
                "quarantined": [
                    {
                        "kind": q["spec"].kind,
                        "n": q["spec"].n,
                        "alpha": str(q["spec"].alpha),
                        "key": key[:12],
                        "reason": q["reason"],
                        # Non-None when --degraded=geometric attached a
                        # verified geometric fallback serving in its
                        # place.
                        "degraded_to": (
                            None
                            if q.get("fallback_key") is None
                            else q["fallback_key"][:12]
                        ),
                    }
                    for key, q in self._quarantined.items()
                ],
            }
        if path == "/metrics":
            if self._wants_prometheus(params, headers):
                if self._obs is None:
                    return 404, {
                        "error": "telemetry is disabled on this server"
                    }
                text = self._obs.registry.render()
                if self._obs.registry is not default_registry():
                    # Merge in the process-default registry, where the
                    # solver layer (solve cache, artifact store, hybrid
                    # certification) reports — one scrape, whole stack.
                    text += default_registry().render()
                return 200, {
                    "__raw__": text,
                    "__content_type__": _PROM_CONTENT_TYPE,
                }
            return 200, {
                "metrics": dict(self.metrics),
                "batcher": dict(self.batcher.stats),
                "admission": (
                    None
                    if self.admission is None
                    else self.admission.snapshot()
                ),
                "breaker": self.breaker.snapshot(),
                "audit": {
                    "rate": self.auditor.rate,
                    "samples": self.auditor.samples,
                    "findings": [
                        {
                            "key": f.key[:12],
                            "kind": f.kind,
                            "samples": f.samples,
                            "sufficient": f.sufficient,
                            "statistic": f.statistic,
                            "limit": f.limit,
                            "flagged": f.flagged,
                        }
                        for f in self.auditor.last_findings
                    ],
                },
                "ledger": self.ledgers.stats(),
                "users": self.ledgers.users(),
            }
        if path.startswith("/ledger/"):
            user = path[len("/ledger/"):]
            budget = self.ledgers.view(user)
            if budget is None:
                return 404, {"error": f"no releases recorded for {user!r}"}
            return 200, {
                "user": user,
                "releases": budget.releases,
                "floor": str(budget.floor),
                "cumulative_alpha": str(budget.cumulative_alpha),
                "cumulative_epsilon": budget.cumulative_epsilon,
                "remaining_alpha": str(budget.remaining_alpha),
            }
        if path == "/trace/recent":
            if self._obs is None:
                return 404, {"error": "telemetry is disabled on this server"}
            try:
                limit = int(params.get("limit", 100))
            except ValueError:
                return 400, {"error": "limit must be an integer"}
            spans = self._obs.tracer.recent(
                limit,
                name=params.get("name"),
                trace=params.get("trace"),
            )
            return 200, {"spans": spans, "emitted": self._obs.tracer.emitted}
        if path == "/obs/burn":
            rows = burn_rows_from_book(self.ledgers)
            try:
                limit = int(params.get("limit", 50))
            except ValueError:
                return 400, {"error": "limit must be an integer"}
            return 200, {
                "users": self.ledgers.users(),
                "floor_proximity": floor_proximity(rows),
                "rows": [row.to_dict() for row in rows[:limit]],
            }
        return 404, {"error": f"no route for GET {path}"}

    @staticmethod
    def _wants_prometheus(params: dict, headers: dict | None) -> bool:
        if params.get("format") == "prometheus":
            return True
        if headers is None:
            return False
        accept = headers.get("accept", "")
        return any(kind in accept for kind in _PROM_ACCEPT)

    # -- HTTP/1.1 transport --------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        # Registered so a graceful drain can await in-flight handlers
        # (bounded by drain_deadline) instead of abandoning keep-alive
        # connections mid-response.
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            if task is not None:
                self._connections.discard(task)

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, _version = (
                        request_line.decode("latin-1").split()
                    )
                except ValueError:
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", 0) or 0)
                status = None
                if length > _MAX_BODY:
                    status, response = 400, {"error": "request body too large"}
                    length = 0
                body = await reader.readexactly(length) if length else b""
                if status is None:
                    payload = None
                    if body:
                        try:
                            payload = json.loads(body)
                            if not isinstance(payload, dict):
                                raise ValueError("body must be an object")
                        except ValueError as err:
                            payload = None
                            status, response = 400, {
                                "error": f"malformed JSON body: {err}"
                            }
                    if status is None:
                        status, response = await self.handle_request(
                            method, target, payload, headers
                        )
                if isinstance(response, dict) and "__raw__" in response:
                    # A content-negotiated raw-text response (the
                    # Prometheus exposition) — serve it verbatim.
                    data = response["__raw__"].encode("utf-8")
                    content_type = response.get(
                        "__content_type__", "text/plain; charset=utf-8"
                    )
                else:
                    data = json.dumps(response).encode("utf-8")
                    content_type = "application/json"
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                ) and not self._draining
                # Backpressure hint: shed/breaker responses carry a
                # retry_after estimate; surface it as a real Retry-After
                # header (fractional seconds) so plain HTTP clients can
                # pace themselves without parsing the body.
                retry_after = (
                    response.get("retry_after")
                    if status in (429, 503) and isinstance(response, dict)
                    else None
                )
                retry_header = (
                    f"Retry-After: {max(0.0, float(retry_after)):.3f}\r\n"
                    if isinstance(retry_after, (int, float))
                    else ""
                )
                head = (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"{retry_header}"
                    f"Connection: {'keep-alive' if keep_alive else 'close'}"
                    f"\r\n\r\n"
                )
                writer.write(head.encode("latin-1") + data)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def start(
        self, host: str = "127.0.0.1", port: int = 0, *, sock=None
    ) -> None:
        """Bind the HTTP listener (``port=0`` picks an ephemeral port).

        ``sock`` serves on an existing bound-and-listening socket
        instead — the supervisor path, where every worker in the fleet
        inherits the same ``SO_REUSEPORT`` listener so the kernel
        load-balances accepts across them.
        """
        if self._http_server is not None:
            raise ReproError("server is already started")
        if sock is not None:
            self._http_server = await asyncio.start_server(
                self._handle_connection, sock=sock
            )
        else:
            self._http_server = await asyncio.start_server(
                self._handle_connection, host, port
            )

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._http_server is None:
            raise ReproError("server is not started")
        return self._http_server.sockets[0].getsockname()[1]

    async def stop(self, *, drain_deadline: float | None = None) -> None:
        """Graceful drain: stop accepting, finish in-flight work, flush
        the batcher, fsync and close the ledger.

        In-flight keep-alive handlers are awaited up to
        ``drain_deadline`` seconds (the server default when ``None``);
        stragglers — typically idle keep-alive connections parked on a
        read — are then cancelled. Idempotent: a second call is a no-op.
        """
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        deadline = (
            self.drain_deadline if drain_deadline is None else drain_deadline
        )
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
            self._http_server = None
        self.batcher.flush(reason="close")
        pending = {t for t in self._connections if not t.done()}
        if pending:
            _done, alive = await asyncio.wait(pending, timeout=deadline)
            for task in alive:
                task.cancel()
            if alive:
                await asyncio.gather(*alive, return_exceptions=True)
        # Handlers drained after the first flush may have parked more
        # queries; flush again before failing anything still pending.
        self.batcher.flush(reason="close")
        self.batcher.close()
        try:
            self.ledgers.sync()
        except LedgerUnavailableError:
            pass  # already as durable as it will get; close regardless
        self.ledgers.close()
        # A WAL outage may have left the failed durable book (and its
        # flock handle) parked behind the overlay; release it too.
        if (
            self._failed_ledger is not None
            and self._failed_ledger is not self.ledgers
        ):
            with contextlib.suppress(Exception):
                self._failed_ledger.close()
        if self._obs is not None:
            # Flush the span log; close it only if this server built the
            # telemetry (a shared Telemetry may outlive one server).
            if self._owns_telemetry:
                self._obs.close()
            else:
                self._obs.tracer.flush()

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to drain and exit (signal-safe when
        registered via ``loop.add_signal_handler``)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def serve_forever(self, *, install_signal_handlers=False) -> None:
        """Serve until cancelled or shut down (the ``repro serve`` loop).

        With ``install_signal_handlers=True``, ``SIGTERM`` and
        ``SIGINT`` trigger a graceful drain (stop accepting, await open
        handlers, flush the batcher, fsync the ledger) instead of
        killing the process mid-charge.
        """
        if self._http_server is None:
            raise ReproError("call start() before serve_forever()")
        self._shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed: list = []
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    continue  # pragma: no cover - non-POSIX loop
                installed.append(signum)
        shutdown_task = asyncio.create_task(self._shutdown.wait())
        server_task = asyncio.create_task(self._http_server.serve_forever())
        try:
            await asyncio.wait(
                {shutdown_task, server_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
        except asyncio.CancelledError:
            pass
        finally:
            for task in (shutdown_task, server_task):
                task.cancel()
            await asyncio.gather(
                shutdown_task, server_task, return_exceptions=True
            )
            for signum in installed:
                with contextlib.suppress(ValueError, RuntimeError):
                    loop.remove_signal_handler(signum)
            await self.stop()
