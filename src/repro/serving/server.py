"""The mechanism-serving subsystem: ``repro serve``.

The paper's deployment story is inherently multi-tenant: ONE published
geometric release serves every minimax consumer optimally (Theorem 1),
and heterogeneous deployments (different ``n``, ``alpha``, bespoke
side-information mechanisms) coexist behind one statistic service. This
module is that serving layer, built exclusively from pieces the pipeline
has already *proved*:

* mechanisms come from compiled :class:`~repro.release.artifacts.MechanismArtifact`
  entries in an :class:`~repro.release.artifacts.ArtifactStore` — never
  from a solver: a spec that was not pre-compiled (``repro compile``,
  including ``--side-grid`` pre-warming) is a 404, so the request path
  is zero-solve by construction;
* each artifact is **verified on load** (certificate replay, exact
  pmf-law re-derivation, bit-exact alias-table reconstruction) before it
  may serve a single response;
* concurrent requests are micro-batched
  (:class:`~repro.serving.batching.MicroBatcher`) into fused
  :class:`~repro.sampling.alias.HeterogeneousAliasSampler` gathers —
  mixed ``n``/``alpha`` deployments in one numpy tick;
* every release is charged to the requesting user's
  :class:`~repro.release.ledger.ConcurrentPrivacyLedger` *before*
  sampling; exceeding the per-user floor is an HTTP 429, and the
  charge-or-reject is atomic so racers can never overspend. With
  ``ledger_dir=`` the book is a crash-safe
  :class:`~repro.release.durable_ledger.DurableLedger`: the charge is
  journaled (and fsync'd — per charge, or once per micro-batch under
  group commit) *before* the response is released, so a crash can only
  over-protect, and budgets survive restarts instead of silently
  refilling (which would be a privacy violation, not an availability
  bug). Requests may carry an ``"idem"`` idempotency key: a retried
  publish is answered from the replay journal instead of
  double-charging;
* a sampled slice of responses feeds the
  :class:`~repro.serving.audit.OnlineAuditor`, which periodically
  replays the accumulated counts against the independently re-derived
  geometric law — the last line of defense against a kernel tampered
  *after* load-time verification.

Transport is stdlib-only: HTTP/1.1 (keep-alive) on
:func:`asyncio.start_server` for real sockets (``curl``-able), plus the
zero-copy in-process path (:meth:`MechanismServer.handle_request`) used
by tests, benchmarks, and co-located clients.

Request/response shape (``POST /publish``)::

    {"user": "gov", "n": 100, "alpha": "1/2", "true_result": 42,
     "idem": "optional-retry-key"}
      -> 200 {"value": 41, "alpha": "1/2", "n": 100, ...}
      -> 404 unknown/uncompiled deployment
      -> 429 {"error": "..."} when the user's budget floor is hit
      -> 503 quarantined deployment or unavailable durable ledger

Resilience: artifacts that fail load-time verification are
**quarantined** (503 on that deployment, the rest of the store serves);
``SIGTERM``/``SIGINT`` trigger a graceful drain (stop accepting, await
open connections up to ``drain_deadline``, flush the batcher, fsync and
close the ledger).

``GET /healthz``, ``GET /artifacts``, ``GET /metrics``, and
``GET /ledger/<user>`` expose liveness + ledger/WAL health, the
deployment list, counters + audit findings, and per-user accounting.

Telemetry (PR 9): the server carries a :class:`repro.obs.Telemetry` —
on by default; pass ``telemetry=False`` for the bare pre-telemetry
server — giving it labeled Prometheus metrics (``GET /metrics``
content-negotiates the text exposition; the JSON shape above remains
the default), sampled end-to-end request traces (``--trace-rate`` /
``--trace-dir``; ring served at ``GET /trace/recent``), and budget
burn-rate gauges with a ``GET /obs/burn`` drill-down. A traced publish
carries one trace ID across ``server.publish`` → ``ledger.charge`` →
``wal.append`` → ``wal.fsync`` → ``batch.flush`` → ``sampler.gather``,
the batch-scoped spans broadcast by the micro-batcher.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import signal
import time
from fractions import Fraction

import numpy as np

from ..exceptions import ReproError, ValidationError
from ..obs import (
    MetricsRegistry,
    Telemetry,
    burn_rows_from_book,
    default_registry,
    floor_proximity,
)
from ..release.artifacts import (
    ArtifactSpec,
    resolve_artifact_store,
    verify_artifact,
)
from ..release.durable_ledger import (
    NO_FAULTS,
    DurableLedger,
    LedgerUnavailableError,
    MemoryLedgerBook,
)
from ..release.ledger import ConcurrentPrivacyLedger
from ..sampling.alias import HeterogeneousAliasSampler
from ..sampling.rng import ensure_generator
from .audit import OnlineAuditor
from .batching import MicroBatcher

__all__ = ["MechanismServer"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Idempotency keys above this length are rejected (they are journaled;
#: unbounded keys would be a disk-growth vector).
_MAX_IDEM = 128

#: Request bodies above this are rejected outright (a publish payload is
#: tiny; anything bigger is a client bug or abuse).
_MAX_BODY = 1 << 16

#: Sentinel distinguishing "cached as invalid" from "not cached".
_UNCACHED = object()

#: Deferred latency samples fold into the histograms at this many
#: pending pairs (and at every scrape) — bounds memory between scrapes
#: while keeping the per-request cost to a tuple append.
_LATENCY_FOLD_CAP = 65536


def _parse_query(query: str) -> dict:
    """Minimal query-string parsing (no repeats, no percent-decoding —
    the observability routes only take simple tokens)."""
    params: dict = {}
    if query:
        for part in query.split("&"):
            name, _, value = part.partition("=")
            if name:
                params[name] = value
    return params


#: ``GET /metrics`` serves the Prometheus text exposition instead of
#: JSON when the Accept header asks for one of these (or the query
#: string carries ``format=prometheus``).
_PROM_ACCEPT = ("text/plain", "application/openmetrics-text")
_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Deployment:
    __slots__ = (
        "index", "spec", "artifact", "verification", "latency", "charges"
    )

    def __init__(self, index, spec, artifact, verification) -> None:
        self.index = index
        self.spec = spec
        self.artifact = artifact
        self.verification = verification
        # Telemetry: the pre-resolved latency-histogram child for this
        # deployment's spec-key label (None when telemetry is off) and a
        # plain charge count the scrape-time collector turns into the
        # epsilon-spent gauge — the hot path pays one histogram observe
        # and one integer increment, never a label resolution.
        self.latency = None
        self.charges = 0


class MechanismServer:
    """Async micro-batched mechanism server over a compiled store.

    Parameters
    ----------
    store:
        The :class:`~repro.release.artifacts.ArtifactStore` (or a path /
        ``None`` for the ``REPRO_ARTIFACT_DIR`` default) holding the
        compiled deployments.
    floor:
        Per-user privacy floor handed to each user's ledger; ``0``
        disables budget enforcement (accounting is still recorded).
    ledger_dir:
        When given, budgets live in a crash-safe
        :class:`~repro.release.durable_ledger.DurableLedger` at this
        directory (shared by N worker processes; budgets survive
        restarts). ``None`` keeps the in-memory book.
    ledger / ledger_fsync:
        ``ledger`` passes a pre-built ledger book directly (overrides
        ``ledger_dir``/``floor`` wiring); ``ledger_fsync`` picks the
        journal policy for a ``ledger_dir`` book — the default
        ``"group"`` amortizes one fsync per micro-batch flush (group
        commit), which keeps the release-implies-durable invariant
        because every batch is synced before its futures resolve.
    drain_deadline:
        Seconds :meth:`stop` waits for in-flight connections before
        cancelling them.
    faults:
        A :class:`~repro.serving.faults.FaultInjector` threaded through
        the batcher and durable ledger (chaos testing only).
    batch_window:
        Micro-batch deadline in seconds (see
        :class:`~repro.serving.batching.MicroBatcher`); ``0`` disables
        batching.
    batch_max:
        Micro-batch size bound.
    audit_rate:
        Fraction of responses fed to the online auditor; ``0`` disables
        the hook.
    audit_every:
        Run an audit sweep every this-many executed batches (``0``
        means only on explicit :meth:`audit` calls).
    verify:
        Verify every artifact on load (default). Loading an unverified
        artifact requires an explicit ``verify=False`` on
        :meth:`load_artifact` — the tamper-injection path used by the
        serving benchmark to prove the online audit catches what load
        verification was prevented from seeing.
    seed / audit_seed:
        Seeds for the sampling RNG and the auditor's slice RNG.
    telemetry:
        ``None`` (default) builds a :class:`repro.obs.Telemetry` over a
        private registry (merged with the process default registry —
        where the solver layer reports — at scrape time);
        ``False`` disables telemetry entirely (the configuration
        ``benchmarks/bench_observability.py`` measures overhead
        against); an explicit :class:`~repro.obs.Telemetry` is adopted
        as-is (shared registries across servers included).
    trace_rate / trace_dir / trace_ring / trace_seed:
        Tracer construction for the default telemetry: the fraction of
        requests traced end-to-end, the directory receiving the JSONL
        span log (``None`` keeps the in-memory ring only), the ring
        capacity behind ``GET /trace/recent``, and the sampling seed.
    """

    def __init__(
        self,
        store=None,
        *,
        floor=0,
        ledger_dir=None,
        ledger=None,
        ledger_fsync: str = "group",
        drain_deadline: float = 5.0,
        faults=None,
        batch_window: float = 0.002,
        batch_max: int = 4096,
        audit_rate: float = 0.05,
        audit_every: int = 64,
        verify: bool = True,
        seed=None,
        audit_seed=None,
        telemetry=None,
        trace_rate: float = 0.0,
        trace_dir=None,
        trace_ring: int = 1024,
        trace_seed=None,
    ) -> None:
        self.store = resolve_artifact_store(store)
        if self.store is None:
            raise ReproError(
                "MechanismServer needs an artifact store: pass one (or a "
                "path) or set REPRO_ARTIFACT_DIR"
            )
        self.floor = floor
        self.verify = bool(verify)
        self.drain_deadline = float(drain_deadline)
        self.faults = faults if faults is not None else NO_FAULTS
        self._rng = ensure_generator(seed)
        self._deployments: dict[str, _Deployment] = {}
        self._quarantined: dict[str, dict] = {}
        self._samplers: list = []
        self._fused: HeterogeneousAliasSampler | None = None
        if telemetry is False:
            obs = None
            self._owns_telemetry = False
        elif telemetry is None:
            obs = Telemetry(
                MetricsRegistry(),
                trace_rate=trace_rate,
                trace_dir=trace_dir,
                trace_ring=trace_ring,
                trace_seed=trace_seed,
            )
            self._owns_telemetry = True
        else:
            obs = telemetry
            self._owns_telemetry = False
        self.telemetry = obs
        self._obs = obs
        # Precomputed hot-path handles. The publish path must stay
        # within the bench-enforced overhead ceiling, so the per-request
        # telemetry work is all C-level: the sampling coin is a bound
        # RNG draw, the active-trace check a bound ContextVar.get, and
        # request/outcome tallies are plain dicts that the scrape-time
        # collector mirrors into the Prometheus families.
        self._may_trace = obs is not None and obs.tracer.rate > 0.0
        self._trace_rate = obs.tracer.rate if obs is not None else 0.0
        self._trace_coin = obs.tracer.coin if obs is not None else None
        self._trace_begin = obs.tracer.begin if obs is not None else None
        self._status_counts: dict[int, int] = {}
        self._outcome_counts = {
            "charged": 0, "rejected": 0, "replayed": 0, "pending": 0
        }
        self._latency_pending: list = []
        if ledger is not None:
            self.ledgers = ledger
            if obs is not None and getattr(ledger, "telemetry", None) is None:
                self.ledgers.telemetry = obs
        elif ledger_dir is not None:
            self.ledgers = DurableLedger(
                ledger_dir, floor, fsync=ledger_fsync, faults=self.faults,
                telemetry=obs,
            )
        else:
            self.ledgers = MemoryLedgerBook(floor, telemetry=obs)
        self._spec_cache: dict[tuple, tuple[str, Fraction] | None] = {}
        self.auditor = OnlineAuditor(
            rate=audit_rate, rng=audit_seed
        )
        self.audit_every = int(audit_every)
        self._batches_since_sweep = 0
        self.batcher = MicroBatcher(
            self._execute, window=batch_window, max_size=batch_max,
            faults=self.faults, telemetry=obs,
        )
        if obs is not None:
            obs.registry.register_collector(self._collect_gauges)
        self.metrics = {
            "requests": 0,
            "published": 0,
            "replayed": 0,
            "rejected_budget": 0,
            "not_found": 0,
            "bad_request": 0,
            "quarantined_requests": 0,
            "ledger_unavailable": 0,
            "errors": 0,
            "audit_recorded": 0,
            "audit_sweeps": 0,
            "audit_flagged": 0,
        }
        self._http_server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._shutdown: asyncio.Event | None = None
        self._draining = False
        self._stopped = False

    # -- deployment lifecycle ------------------------------------------
    def load(self, spec: ArtifactSpec) -> int:
        """Load one compiled deployment from the store; returns its index.

        Misses are an error, not a compile: the request path (and the
        warm-up path) of a server must never run a solver — pre-warm
        with ``repro compile`` (``--side-grid`` for bespoke
        side-information artifacts).
        """
        existing = self._deployments.get(spec.key())
        if existing is not None:
            return existing.index
        artifact = self.store.get(spec)
        if artifact is None:
            raise ReproError(
                f"artifact {spec.canonical()!r} is not compiled in "
                f"{self.store.path}; run `repro compile` first"
            )
        return self.load_artifact(artifact)

    def load_artifact(self, artifact, *, verify: bool | None = None) -> int:
        """Register an artifact for serving; returns its batcher index.

        ``verify`` defaults to the server-wide setting; a verification
        failure refuses the deployment. Passing ``verify=False`` is the
        deliberately-unsafe injection port for audit testing.
        """
        verify = self.verify if verify is None else bool(verify)
        spec = artifact.spec
        existing = self._deployments.get(spec.key())
        if existing is not None:
            return existing.index
        verification = None
        if verify:
            verification = verify_artifact(artifact)
            if not verification.ok:
                raise ReproError(
                    f"artifact {spec.canonical()!r} failed load-time "
                    f"verification: {'; '.join(verification.failures)}"
                )
        index = len(self._samplers)
        self._samplers.append(artifact.sampler)
        self._fused = HeterogeneousAliasSampler(self._samplers)
        deployment = _Deployment(index, spec, artifact, verification)
        if self._obs is not None:
            deployment.latency = self._obs.publish_latency.labels(
                spec.key()[:12]
            )
        self._deployments[spec.key()] = deployment
        self.auditor.register(index, artifact)
        return index

    def load_store(self) -> int:
        """Load every (loadable) artifact in the store; returns the count.

        Damaged entries are skipped (they already fail ``repro cache
        verify``). A verification failure **quarantines** that one
        deployment — requests naming it get a 503 with the reason while
        every healthy artifact keeps serving — instead of refusing the
        whole store: one bad entry must not take down the service.
        """
        loaded = 0
        for key in self.store.keys():
            artifact = self.store.load_key(key)
            if artifact is None:
                continue
            try:
                self.load_artifact(artifact)
            except ReproError as err:
                self._quarantined[artifact.spec.key()] = {
                    "spec": artifact.spec,
                    "reason": str(err),
                }
                continue
            loaded += 1
        return loaded

    @property
    def quarantined(self) -> dict[str, dict]:
        """Deployments refused at load, by spec key (503 when requested)."""
        return dict(self._quarantined)

    @property
    def deployments(self) -> tuple[_Deployment, ...]:
        return tuple(self._deployments.values())

    def ledger(self, user: str) -> ConcurrentPrivacyLedger:
        """The (created-on-first-use) ledger accounting for ``user``."""
        return self.ledgers.book(user)

    # -- the fused execution tick --------------------------------------
    def _execute(self, tables: np.ndarray, rows: np.ndarray) -> np.ndarray:
        obs = self._obs
        if obs is not None:
            t0 = time.perf_counter()
            # Batch-scoped span: the batcher has bound this batch's
            # traced requests, so the fused gather lands in each of
            # their traces.
            with obs.tracer.span("sampler.gather", queries=len(tables)):
                values = self._fused.sample(tables, rows, self._rng)
            obs.gather_latency.observe(time.perf_counter() - t0)
        else:
            values = self._fused.sample(tables, rows, self._rng)
        # Group commit: one fsync covers every charge journaled by this
        # batch's requests, and it lands *before* the batcher resolves
        # their futures — no response is released against a volatile
        # charge. (A no-op for the memory book and fsync="always".)
        self.ledgers.sync()
        recorded = self.auditor.observe(tables, rows, values)
        if recorded:
            self.metrics["audit_recorded"] += recorded
        if self.audit_every > 0:
            self._batches_since_sweep += 1
            if self._batches_since_sweep >= self.audit_every:
                self.audit()
        return values

    def audit(self):
        """Run an audit sweep now; returns the findings."""
        self._batches_since_sweep = 0
        findings = self.auditor.sweep()
        self.metrics["audit_sweeps"] += 1
        self.metrics["audit_flagged"] = sum(1 for f in findings if f.flagged)
        obs = self._obs
        if obs is not None:
            for finding in findings:
                obs.audit_findings.labels(
                    "true" if finding.flagged else "false"
                ).inc()
                # Findings bypass trace sampling — a divergence from the
                # re-derived law is always worth a record.
                obs.tracer.event(
                    "audit.finding",
                    key=finding.key[:12],
                    kind=finding.kind,
                    samples=finding.samples,
                    statistic=finding.statistic,
                    limit=finding.limit,
                    flagged=finding.flagged,
                )
        return findings

    def _fold_latency(self) -> None:
        """Fold deferred latency samples into the histogram children.

        The request path records raw ``(deployment, elapsed)`` pairs
        (two C-level ops); this fold buckets them per deployment in one
        ``observe_many`` batch pass. Runs at every scrape/snapshot and
        whenever the pending list hits :data:`_LATENCY_FOLD_CAP`, which
        bounds deferred memory.
        """
        pending = self._latency_pending
        if not pending:
            return
        self._latency_pending = []
        by_deployment: dict = {}
        for deployment, elapsed in pending:
            bucket = by_deployment.get(deployment)
            if bucket is None:
                bucket = by_deployment[deployment] = []
            bucket.append(elapsed)
        for deployment, values in by_deployment.items():
            deployment.latency.observe_many(values)
            deployment.charges += len(values)

    def _collect_gauges(self) -> None:
        """Scrape-time collector: request tallies, budget burn, WAL.

        Registered on the telemetry registry, so the work — mirroring
        the hot-path dict tallies into their Prometheus families,
        walking the ledger books for burn rows, ranking the top burners
        — happens per scrape/snapshot, never on the request path. Never
        raises: a scrape must not fail because the ledger is
        mid-shutdown.
        """
        obs = self._obs
        try:
            self._fold_latency()
            for status, count in self._status_counts.items():
                obs.requests.labels("publish", str(status)).value = float(
                    count
                )
            for outcome, count in self._outcome_counts.items():
                if count:
                    obs.ledger_outcomes.labels(outcome).value = float(count)
            stats = self.ledgers.stats()
            if "journal_bytes" in stats:
                obs.wal_journal_bytes.set(stats["journal_bytes"])
            rows = burn_rows_from_book(self.ledgers)
            for k, count in floor_proximity(rows).items():
                obs.users_near_floor.labels(str(k)).set(count)
            for row in rows[:10]:
                obs.user_spent_fraction.labels(row.user).set(
                    row.spent_fraction
                )
            for deployment in self._deployments.values():
                alpha = float(deployment.spec.alpha)
                if 0 < alpha < 1:
                    obs.deployment_epsilon.labels(
                        deployment.spec.key()[:12]
                    ).set(deployment.charges * -math.log(alpha))
        except Exception:  # noqa: BLE001 - scrapes must stay available
            pass

    # -- request handling ----------------------------------------------
    def _resolve_spec(self, payload: dict) -> tuple[str, Fraction] | None:
        """Map request deployment fields to ``(spec key, exact alpha)``.

        Memoized per distinct field tuple, so steady-state requests skip
        Fraction parsing, spec validation, and the SHA-256 key
        computation entirely.
        """
        side = payload.get("side")
        cache_key = (
            payload.get("kind", "geometric"),
            payload.get("n"),
            payload.get("alpha"),
            payload.get("loss"),
            None if side is None else tuple(side),
        )
        try:
            hit = self._spec_cache.get(cache_key, _UNCACHED)
        except TypeError:
            hit = _UNCACHED  # unhashable request field: validate fresh
        if hit is not _UNCACHED:
            if hit is None:
                raise ValidationError("malformed deployment fields")
            return hit
        try:
            spec = ArtifactSpec(
                kind=payload.get("kind", "geometric"),
                n=int(payload["n"]),
                alpha=Fraction(str(payload["alpha"])),
                loss=payload.get("loss"),
                side=None if side is None else tuple(int(i) for i in side),
            )
            resolved = (spec.key(), spec.alpha)
        except (KeyError, TypeError, ValueError, ValidationError):
            try:
                self._spec_cache[cache_key] = None
            except TypeError:
                pass
            raise ValidationError(
                "deployment fields must include integer n and a "
                "parseable alpha (e.g. \"1/2\"); optional kind/loss/side "
                "must name a compiled artifact spec"
            ) from None
        self._spec_cache[cache_key] = resolved
        return resolved

    async def publish(self, payload: dict) -> tuple[int, dict]:
        """The core serving operation; returns ``(status, response)``.

        With telemetry on this wrapper adds one latency clock, the
        per-status request counter (children cached per status), and —
        for the sampled fraction — the root ``server.publish`` span
        bound to the task so every layer below joins the same trace.
        Traced responses carry the trace ID under ``"trace"``.
        """
        obs = self._obs
        if obs is None:
            return await self._publish(payload, 0.0)
        t0 = time.perf_counter()
        ctx = None
        if self._may_trace:
            # Inline of Tracer.sample: one C-level RNG draw decides,
            # and only the sampled fraction constructs a context.
            rate = self._trace_rate
            if rate >= 1.0 or self._trace_coin() < rate:
                ctx = self._trace_begin()
        if ctx is None:
            status, response = await self._publish(payload, t0)
        else:
            token = obs.tracer.activate(ctx)
            try:
                with obs.tracer.span("server.publish"):
                    status, response = await self._publish(payload, t0, ctx)
            finally:
                obs.tracer.deactivate(token)
            response["trace"] = ctx.trace_id
        counts = self._status_counts
        counts[status] = counts.get(status, 0) + 1
        return status, response

    async def _publish(
        self, payload: dict, t0: float, trace_ctx=None
    ) -> tuple[int, dict]:
        self.metrics["requests"] += 1
        user = payload.get("user")
        if not isinstance(user, str) or not user:
            self.metrics["bad_request"] += 1
            return 400, {"error": "payload needs a non-empty string 'user'"}
        try:
            key, alpha = self._resolve_spec(payload)
        except ValidationError as err:
            self.metrics["bad_request"] += 1
            return 400, {"error": str(err)}
        quarantined = self._quarantined.get(key)
        if quarantined is not None:
            self.metrics["quarantined_requests"] += 1
            return 503, {
                "error": "deployment is quarantined (failed load-time "
                "verification); recompile it with `repro compile`",
                "reason": quarantined["reason"],
                "key": key[:12],
            }
        deployment = self._deployments.get(key)
        if deployment is None:
            self.metrics["not_found"] += 1
            return 404, {
                "error": "deployment is not compiled/loaded; pre-warm it "
                "with `repro compile` (use --side-grid for "
                "side-information artifacts)",
                "key": key[:12],
            }
        try:
            row = int(payload["true_result"])
        except (KeyError, TypeError, ValueError):
            self.metrics["bad_request"] += 1
            return 400, {"error": "payload needs an integer 'true_result'"}
        if not 0 <= row <= deployment.spec.n:
            self.metrics["bad_request"] += 1
            return 400, {
                "error": f"true_result must lie in [0, {deployment.spec.n}]"
            }
        idem = payload.get("idem")
        if idem is not None and not (
            isinstance(idem, str) and 0 < len(idem) <= _MAX_IDEM
        ):
            self.metrics["bad_request"] += 1
            return 400, {
                "error": "optional 'idem' must be a non-empty string of "
                f"at most {_MAX_IDEM} characters"
            }
        obs = self._obs
        # ``trace_ctx`` rides in from the sampling decision in
        # ``publish``: untraced requests (the vast majority at low
        # sampling rates) carry ``None`` and skip all span machinery.
        try:
            # Atomic charge-or-reject: budget is committed (and, for a
            # durable book, journaled) before the draw, so a crash
            # mid-batch can only over-protect. A replayed idempotency
            # key returns the original response without charging again.
            if trace_ctx is not None:
                with obs.tracer.span("ledger.charge", user=user):
                    decision = self.ledgers.charge(
                        user, alpha, label=f"serve:{key[:12]}", idem=idem
                    )
            else:
                decision = self.ledgers.charge(
                    user, alpha, label=f"serve:{key[:12]}", idem=idem
                )
        except LedgerUnavailableError as err:
            self.metrics["ledger_unavailable"] += 1
            return 503, {
                "error": f"privacy ledger unavailable: {err}; the charge "
                "was not recorded and no statistic was released"
            }
        if obs is not None:
            self._outcome_counts[decision.outcome] += 1
        if decision.outcome == "replayed":
            self.metrics["replayed"] += 1
            status, response = decision.replay
            return status, dict(response)
        if decision.outcome == "rejected":
            self.metrics["rejected_budget"] += 1
            return 429, {
                "error": (
                    f"release at alpha={alpha} would take user {user!r} "
                    f"below the privacy floor {self.floor}"
                ),
                "user": user,
                "cumulative_alpha": str(decision.cumulative_alpha),
                "remaining_alpha": str(decision.remaining_alpha),
            }
        # outcome "charged", or "pending" (the charge was journaled but
        # the response was lost — the budget is already spent, so
        # sampling a fresh response spends nothing extra).
        try:
            if trace_ctx is not None:
                value = await self.batcher.submit(
                    deployment.index, row, trace=trace_ctx
                )
            else:
                value = await self.batcher.submit(deployment.index, row)
        except Exception as err:  # the gather is pure numpy; be loud
            self.metrics["errors"] += 1
            return 500, {"error": f"sampling failed: {err}"}
        self.metrics["published"] += 1
        if obs is not None:
            # Deferred latency fold: the hot path only appends
            # ``(deployment, elapsed)``; bucketing happens in one
            # batched ``observe_many`` pass at scrape time
            # (_fold_latency), mirroring how the sampler fuses
            # per-request draws into one gather.
            pending = self._latency_pending
            pending.append((deployment, time.perf_counter() - t0))
            if len(pending) >= _LATENCY_FOLD_CAP:
                self._fold_latency()
        response = {
            "value": value,
            "user": user,
            "n": deployment.spec.n,
            "alpha": str(alpha),
            "key": key[:12],
            "cumulative_alpha": str(decision.cumulative_alpha),
        }
        if idem is not None:
            # Best-effort replay journal: losing it downgrades a retry
            # from "replayed" to "pending" (re-sample, never re-charge).
            with contextlib.suppress(LedgerUnavailableError):
                self.ledgers.record_result(idem, 200, response)
        self.faults.crash("server.before-response")
        return 200, response

    async def handle_request(
        self, method: str, path: str, payload: dict | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict]:
        """Route one request (the transport-independent entry point).

        ``headers`` (lower-cased names) is optional and only consulted
        for content negotiation: ``GET /metrics`` returns the
        Prometheus text exposition instead of the legacy JSON shape
        when the Accept header asks for text/openmetrics (or the query
        string says ``format=prometheus``). Raw-text responses are
        conveyed as ``{"__raw__": text, "__content_type__": ...}`` —
        the HTTP transport unwraps them; in-process callers read the
        keys directly.
        """
        if method == "POST" and path == "/publish":
            return await self.publish(payload or {})
        path, _, query = path.partition("?")
        params = _parse_query(query)
        if method != "GET":
            return 405, {"error": f"method {method} not allowed"}
        status, response = self._route_get(path, params, headers)
        obs = self._obs
        if obs is not None:
            route = path.split("/", 2)[1] if path.startswith("/") else path
            obs.requests.labels(route or "root", str(status)).inc()
        return status, response

    def _route_get(
        self, path: str, params: dict, headers: dict | None
    ) -> tuple[int, dict]:
        if path == "/healthz":
            health = {
                "status": "ok",
                "deployments": len(self._deployments),
                "quarantined": len(self._quarantined),
                "draining": self._draining,
                # Ledger/WAL health: journal bytes, seq, last-fsync
                # latency, compaction count for a durable book.
                "ledger": self.ledgers.stats(),
            }
            return 200, health
        if path == "/artifacts":
            return 200, {
                "artifacts": [
                    {
                        "kind": d.spec.kind,
                        "n": d.spec.n,
                        "alpha": str(d.spec.alpha),
                        "loss": d.spec.loss,
                        "side": (
                            None if d.spec.side is None else list(d.spec.side)
                        ),
                        "key": d.spec.key()[:12],
                        "verified": (
                            d.verification.ok
                            if d.verification is not None
                            else False
                        ),
                    }
                    for d in self._deployments.values()
                ],
                "quarantined": [
                    {
                        "kind": q["spec"].kind,
                        "n": q["spec"].n,
                        "alpha": str(q["spec"].alpha),
                        "key": key[:12],
                        "reason": q["reason"],
                    }
                    for key, q in self._quarantined.items()
                ],
            }
        if path == "/metrics":
            if self._wants_prometheus(params, headers):
                if self._obs is None:
                    return 404, {
                        "error": "telemetry is disabled on this server"
                    }
                text = self._obs.registry.render()
                if self._obs.registry is not default_registry():
                    # Merge in the process-default registry, where the
                    # solver layer (solve cache, artifact store, hybrid
                    # certification) reports — one scrape, whole stack.
                    text += default_registry().render()
                return 200, {
                    "__raw__": text,
                    "__content_type__": _PROM_CONTENT_TYPE,
                }
            return 200, {
                "metrics": dict(self.metrics),
                "batcher": dict(self.batcher.stats),
                "audit": {
                    "rate": self.auditor.rate,
                    "samples": self.auditor.samples,
                    "findings": [
                        {
                            "key": f.key[:12],
                            "kind": f.kind,
                            "samples": f.samples,
                            "sufficient": f.sufficient,
                            "statistic": f.statistic,
                            "limit": f.limit,
                            "flagged": f.flagged,
                        }
                        for f in self.auditor.last_findings
                    ],
                },
                "ledger": self.ledgers.stats(),
                "users": self.ledgers.users(),
            }
        if path.startswith("/ledger/"):
            user = path[len("/ledger/"):]
            budget = self.ledgers.view(user)
            if budget is None:
                return 404, {"error": f"no releases recorded for {user!r}"}
            return 200, {
                "user": user,
                "releases": budget.releases,
                "floor": str(budget.floor),
                "cumulative_alpha": str(budget.cumulative_alpha),
                "cumulative_epsilon": budget.cumulative_epsilon,
                "remaining_alpha": str(budget.remaining_alpha),
            }
        if path == "/trace/recent":
            if self._obs is None:
                return 404, {"error": "telemetry is disabled on this server"}
            try:
                limit = int(params.get("limit", 100))
            except ValueError:
                return 400, {"error": "limit must be an integer"}
            spans = self._obs.tracer.recent(
                limit,
                name=params.get("name"),
                trace=params.get("trace"),
            )
            return 200, {"spans": spans, "emitted": self._obs.tracer.emitted}
        if path == "/obs/burn":
            rows = burn_rows_from_book(self.ledgers)
            try:
                limit = int(params.get("limit", 50))
            except ValueError:
                return 400, {"error": "limit must be an integer"}
            return 200, {
                "users": self.ledgers.users(),
                "floor_proximity": floor_proximity(rows),
                "rows": [row.to_dict() for row in rows[:limit]],
            }
        return 404, {"error": f"no route for GET {path}"}

    @staticmethod
    def _wants_prometheus(params: dict, headers: dict | None) -> bool:
        if params.get("format") == "prometheus":
            return True
        if headers is None:
            return False
        accept = headers.get("accept", "")
        return any(kind in accept for kind in _PROM_ACCEPT)

    # -- HTTP/1.1 transport --------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        # Registered so a graceful drain can await in-flight handlers
        # (bounded by drain_deadline) instead of abandoning keep-alive
        # connections mid-response.
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            if task is not None:
                self._connections.discard(task)

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, _version = (
                        request_line.decode("latin-1").split()
                    )
                except ValueError:
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", 0) or 0)
                status = None
                if length > _MAX_BODY:
                    status, response = 400, {"error": "request body too large"}
                    length = 0
                body = await reader.readexactly(length) if length else b""
                if status is None:
                    payload = None
                    if body:
                        try:
                            payload = json.loads(body)
                            if not isinstance(payload, dict):
                                raise ValueError("body must be an object")
                        except ValueError as err:
                            payload = None
                            status, response = 400, {
                                "error": f"malformed JSON body: {err}"
                            }
                    if status is None:
                        status, response = await self.handle_request(
                            method, target, payload, headers
                        )
                if isinstance(response, dict) and "__raw__" in response:
                    # A content-negotiated raw-text response (the
                    # Prometheus exposition) — serve it verbatim.
                    data = response["__raw__"].encode("utf-8")
                    content_type = response.get(
                        "__content_type__", "text/plain; charset=utf-8"
                    )
                else:
                    data = json.dumps(response).encode("utf-8")
                    content_type = "application/json"
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                ) and not self._draining
                head = (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: {'keep-alive' if keep_alive else 'close'}"
                    f"\r\n\r\n"
                )
                writer.write(head.encode("latin-1") + data)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind the HTTP listener (``port=0`` picks an ephemeral port)."""
        if self._http_server is not None:
            raise ReproError("server is already started")
        self._http_server = await asyncio.start_server(
            self._handle_connection, host, port
        )

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._http_server is None:
            raise ReproError("server is not started")
        return self._http_server.sockets[0].getsockname()[1]

    async def stop(self, *, drain_deadline: float | None = None) -> None:
        """Graceful drain: stop accepting, finish in-flight work, flush
        the batcher, fsync and close the ledger.

        In-flight keep-alive handlers are awaited up to
        ``drain_deadline`` seconds (the server default when ``None``);
        stragglers — typically idle keep-alive connections parked on a
        read — are then cancelled. Idempotent: a second call is a no-op.
        """
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        deadline = (
            self.drain_deadline if drain_deadline is None else drain_deadline
        )
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
            self._http_server = None
        self.batcher.flush(reason="close")
        pending = {t for t in self._connections if not t.done()}
        if pending:
            _done, alive = await asyncio.wait(pending, timeout=deadline)
            for task in alive:
                task.cancel()
            if alive:
                await asyncio.gather(*alive, return_exceptions=True)
        # Handlers drained after the first flush may have parked more
        # queries; flush again before failing anything still pending.
        self.batcher.flush(reason="close")
        self.batcher.close()
        try:
            self.ledgers.sync()
        except LedgerUnavailableError:
            pass  # already as durable as it will get; close regardless
        self.ledgers.close()
        if self._obs is not None:
            # Flush the span log; close it only if this server built the
            # telemetry (a shared Telemetry may outlive one server).
            if self._owns_telemetry:
                self._obs.close()
            else:
                self._obs.tracer.flush()

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to drain and exit (signal-safe when
        registered via ``loop.add_signal_handler``)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def serve_forever(self, *, install_signal_handlers=False) -> None:
        """Serve until cancelled or shut down (the ``repro serve`` loop).

        With ``install_signal_handlers=True``, ``SIGTERM`` and
        ``SIGINT`` trigger a graceful drain (stop accepting, await open
        handlers, flush the batcher, fsync the ledger) instead of
        killing the process mid-charge.
        """
        if self._http_server is None:
            raise ReproError("call start() before serve_forever()")
        self._shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed: list = []
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    continue  # pragma: no cover - non-POSIX loop
                installed.append(signum)
        shutdown_task = asyncio.create_task(self._shutdown.wait())
        server_task = asyncio.create_task(self._http_server.serve_forever())
        try:
            await asyncio.wait(
                {shutdown_task, server_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
        except asyncio.CancelledError:
            pass
        finally:
            for task in (shutdown_task, server_task):
                task.cancel()
            await asyncio.gather(
                shutdown_task, server_task, return_exceptions=True
            )
            for signum in installed:
                with contextlib.suppress(ValueError, RuntimeError):
                    loop.remove_signal_handler(signum)
            await self.stop()
