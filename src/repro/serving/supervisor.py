"""Supervised multi-worker serving fleet: ``repro serve --workers N``.

One :class:`MechanismServer` process saturates one core (the gather is
numpy, but charges, HTTP framing, and the event loop are Python), so the
fleet story is N worker *processes* sharing the pieces PR 6–8 already
made shareable:

* **one listen socket** — the supervisor binds a single
  ``SO_REUSEPORT`` TCP listener and passes its fd to every worker over
  ``fork/exec`` (``subprocess`` + ``pass_fds``); the kernel
  load-balances accepts across workers, so there is no userspace proxy
  on the hot path and a worker crash never loses the port;
* **one durable ledger** — the flock-shared
  :class:`~repro.release.durable_ledger.DurableLedger` directory; every
  charge from every worker is serialized through the same WAL, so the
  per-user floor binds fleet-wide, not per-process;
* **one artifact store** — advisory-locked, so N workers racing a cold
  compile produce one artifact.

The supervisor itself is deliberately boring and stdlib-only: a
synchronous loop that spawns workers, reads their **heartbeat pipes**
(one ``os.pipe`` per worker; the worker writes a JSON line every
``heartbeat_interval`` seconds carrying its pid, readiness, and publish
count), cross-checks liveness with real ``GET /healthz`` probes through
the shared listener, and restarts whatever dies:

* a worker that **exits** (crash, ``SIGKILL``, OOM) is respawned with
  capped exponential backoff (``backoff_base * 2**failures`` up to
  ``backoff_cap``; the failure count resets after ``stability_reset``
  seconds of healthy uptime). Restarts are budget-safe by construction:
  the replacement replays the shared WAL, so acked charges survive and
  a crash can only over-protect;
* a worker whose **heartbeats stop** (hung event loop) is killed and
  respawned;
* a worker that beats but reports **not ready** (dropped listener, open
  WAL breaker, no deployments) past ``not_ready_timeout`` is asked to
  drain (``SIGTERM``) and replaced.

``SIGTERM``/``SIGINT`` on the supervisor flips the fleet to **lame
duck**: restarts stop, every worker gets ``SIGTERM`` (each drains
in-flight requests, flushes its batcher, fsyncs the shared ledger),
stragglers past ``drain_deadline`` are killed, and the listener closes
last. ``SIGHUP`` (or :meth:`ServingSupervisor.rolling_reload`) replaces
workers **one slot at a time**, waiting for each replacement's
readiness heartbeat before touching the next — a rolling artifact
reload with at least ``workers - 1`` serving capacity throughout.

Chaos hooks (the ``-m chaos`` suite drives these): worker configs can
arm an **fsync storm** (a :class:`~repro.serving.faults.FaultyFS` burst
that must open the worker's WAL circuit breaker, never silently drop
durability) or a **listener drop** (the worker closes its HTTP listener
but keeps beating not-ready — the supervisor must notice and replace
it); :meth:`ServingSupervisor.kill_worker` delivers real signals
mid-traffic.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from fractions import Fraction

from ..exceptions import ReproError, ValidationError

__all__ = ["ServingSupervisor", "make_listen_socket"]


def make_listen_socket(
    host: str = "127.0.0.1", port: int = 0, *, backlog: int = 128
) -> socket.socket:
    """Bind one shareable TCP listener for the whole fleet.

    ``SO_REUSEPORT`` is set when the platform offers it (Linux/BSD) so
    future sibling listeners could join; the fleet's workers share this
    *one* socket's fd regardless, which keeps accept load-balancing in
    the kernel and survives any single worker's death.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if hasattr(socket, "SO_REUSEPORT"):
        with contextlib.suppress(OSError):
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    sock.listen(backlog)
    return sock


@dataclass
class _WorkerSlot:
    """Supervisor-side state for one fleet slot."""

    index: int
    proc: subprocess.Popen | None = None
    hb_fd: int | None = None
    hb_buf: bytes = b""
    pid: int | None = None
    started_at: float = 0.0
    last_beat: float = 0.0
    beats: int = 0
    ready: bool | None = None
    not_ready_since: float | None = None
    published: int = 0
    failures: int = 0
    restart_at: float | None = None
    spawns: int = 0
    exits: list = field(default_factory=list)

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class ServingSupervisor:
    """Spawn, watch, restart, drain, and roll a fleet of serving workers.

    Parameters
    ----------
    worker_config:
        The JSON-serializable server configuration every worker builds
        its :class:`~repro.serving.server.MechanismServer` from. Keys
        mirror the server constructor: ``store`` (path, required),
        ``floor`` (string fraction), ``ledger_dir``, ``ledger_fsync``,
        ``batch_window``, ``batch_max``, ``audit_rate``, ``audit_every``,
        ``queue_depth``, ``shed_deadline``, ``degraded``,
        ``wal_failure_policy``, ``breaker_cooldown``, ``drain_deadline``,
        ``trace_rate``, ``telemetry`` (``False`` to disable), ``seed``,
        plus an optional ``faults`` dict (``{"fsync_storm": {"after": k,
        "times": m}}`` and/or ``{"listener_drop_after_s": x}``).
    workers:
        Fleet size (slots). Each slot holds at most one live process.
    host / port:
        Where the shared listener binds (``port=0`` picks an ephemeral
        port, exposed as :attr:`port` after :meth:`start`).
    heartbeat_interval / heartbeat_timeout / not_ready_timeout:
        Worker beat cadence; how long silence means "hung — kill and
        respawn"; how long a beating-but-not-ready worker is tolerated
        before being drained and replaced.
    backoff_base / backoff_cap / stability_reset:
        Capped exponential restart backoff, and the healthy-uptime span
        after which the failure count resets.
    drain_deadline:
        Lame-duck patience: seconds workers get to drain after
        ``SIGTERM`` before ``SIGKILL``.
    probe_interval:
        Cadence of supervisor-side ``GET /healthz`` probes through the
        shared listener (``0`` disables); probe results land in
        :attr:`stats` — heartbeats stay authoritative for liveness.
    slot_overrides:
        Optional per-slot config overlays (``{slot_index: {...}}``),
        merged over ``worker_config`` — how the chaos suite aims an
        fsync storm at exactly one worker.
    """

    def __init__(
        self,
        worker_config: dict,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 3.0,
        not_ready_timeout: float = 3.0,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        stability_reset: float = 5.0,
        drain_deadline: float = 5.0,
        probe_interval: float = 1.0,
        slot_overrides: dict | None = None,
    ) -> None:
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if "store" not in worker_config:
            raise ValidationError("worker_config needs a 'store' path")
        self.worker_config = dict(worker_config)
        self.workers = int(workers)
        self.host = host
        self._requested_port = int(port)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.not_ready_timeout = float(not_ready_timeout)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.stability_reset = float(stability_reset)
        self.drain_deadline = float(drain_deadline)
        self.probe_interval = float(probe_interval)
        self.slot_overrides = dict(slot_overrides or {})
        self._slots = [_WorkerSlot(i) for i in range(self.workers)]
        self._socket: socket.socket | None = None
        self._draining = False
        self._shutdown = False
        self._reload_requested = False
        self._last_probe = 0.0
        self._env = dict(os.environ)
        # Children run `python -m repro.serving.supervisor --worker ...`;
        # make sure they can import repro exactly as this process does
        # (tests run from a source tree, not an installed package).
        self._env["PYTHONPATH"] = os.pathsep.join(
            p for p in sys.path if p
        )
        self.stats = {
            "spawns": 0,
            "restarts": 0,
            "heartbeat_kills": 0,
            "not_ready_restarts": 0,
            "rolling_reloads": 0,
            "probes": 0,
            "probe_failures": 0,
            "last_probe_status": None,
        }

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        if self._socket is None:
            raise ReproError("supervisor is not started")
        return self._socket.getsockname()[1]

    def start(self) -> None:
        """Bind the shared listener and spawn the full fleet."""
        if self._socket is not None:
            raise ReproError("supervisor is already started")
        self._socket = make_listen_socket(self.host, self._requested_port)
        for slot in self._slots:
            self._spawn(slot)

    def _spawn(self, slot: _WorkerSlot) -> None:
        read_fd, write_fd = os.pipe()
        config = dict(self.worker_config)
        config.update(self.slot_overrides.get(slot.index, {}))
        config["worker_id"] = f"w{slot.index}"
        config["socket_fd"] = self._socket.fileno()
        config["heartbeat_fd"] = write_fd
        config["heartbeat_interval"] = self.heartbeat_interval
        seed = config.get("seed")
        if seed is not None:
            # Distinct sampling streams per slot and per incarnation,
            # still deterministic for a fixed kill schedule.
            config["seed"] = int(seed) + 10_000 * slot.index + slot.spawns
        try:
            # `-c` rather than `-m`: the package's __init__ imports this
            # module, and runpy would warn about the double import.
            slot.proc = subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    "import sys; from repro.serving.supervisor import main;"
                    " sys.exit(main(sys.argv[1:]))",
                    "--worker",
                    json.dumps(config),
                ],
                pass_fds=(self._socket.fileno(), write_fd),
                env=self._env,
            )
        finally:
            os.close(write_fd)
        os.set_blocking(read_fd, False)
        slot.hb_fd = read_fd
        slot.hb_buf = b""
        slot.pid = slot.proc.pid
        now = time.monotonic()
        slot.started_at = now
        # A fresh worker gets a full heartbeat_timeout of grace measured
        # from spawn, not from a beat it has not sent yet.
        slot.last_beat = now
        slot.beats = 0
        slot.ready = None
        slot.not_ready_since = None
        slot.restart_at = None
        slot.spawns += 1
        self.stats["spawns"] += 1

    def _close_heartbeat(self, slot: _WorkerSlot) -> None:
        if slot.hb_fd is not None:
            with contextlib.suppress(OSError):
                os.close(slot.hb_fd)
            slot.hb_fd = None
            slot.hb_buf = b""

    # -- heartbeat + supervision pass ----------------------------------
    def _drain_heartbeats(self, slot: _WorkerSlot, now: float) -> None:
        if slot.hb_fd is None:
            return
        closed = False
        try:
            while True:
                chunk = os.read(slot.hb_fd, 65536)
                if not chunk:
                    closed = True
                    break
                slot.hb_buf += chunk
        except BlockingIOError:
            pass
        except OSError:
            closed = True
        *lines, slot.hb_buf = slot.hb_buf.split(b"\n")
        for line in lines:
            if not line:
                continue
            try:
                beat = json.loads(line)
            except ValueError:
                continue
            slot.last_beat = now
            slot.beats += 1
            slot.published = int(beat.get("published", slot.published))
            ready = bool(beat.get("ready", False))
            if ready:
                slot.not_ready_since = None
            elif slot.ready is not False or slot.not_ready_since is None:
                slot.not_ready_since = now
            slot.ready = ready
        if closed:
            self._close_heartbeat(slot)

    def poll(self) -> None:
        """One supervision pass: reap, judge heartbeats, restart, probe.

        Synchronous and cheap — :meth:`run` calls it in a loop, tests
        call it directly to step the supervisor deterministically.
        """
        now = time.monotonic()
        for slot in self._slots:
            self._drain_heartbeats(slot, now)
            proc = slot.proc
            if proc is not None:
                code = proc.poll()
                if code is not None:
                    slot.exits.append(code)
                    slot.proc = None
                    # Collect the final beat (exit-time counters) still
                    # sitting in the pipe before discarding it.
                    self._drain_heartbeats(slot, now)
                    self._close_heartbeat(slot)
                    if not self._draining:
                        if now - slot.started_at >= self.stability_reset:
                            slot.failures = 0
                        delay = min(
                            self.backoff_base * (2 ** slot.failures),
                            self.backoff_cap,
                        )
                        slot.failures += 1
                        slot.restart_at = now + delay
                elif (
                    not self._draining
                    and now - slot.last_beat > self.heartbeat_timeout
                ):
                    # Beating stopped but the process lives: a hung
                    # event loop. SIGKILL now; the exit is reaped (and
                    # the restart scheduled) on the next pass.
                    self.stats["heartbeat_kills"] += 1
                    with contextlib.suppress(ProcessLookupError):
                        proc.kill()
                elif (
                    not self._draining
                    and slot.ready is False
                    and slot.not_ready_since is not None
                    and now - slot.not_ready_since > self.not_ready_timeout
                ):
                    # Alive, honest, and useless (dropped listener, open
                    # breaker, empty store): drain it and let the exit
                    # path respawn a replacement.
                    self.stats["not_ready_restarts"] += 1
                    slot.not_ready_since = now  # do not re-signal each pass
                    with contextlib.suppress(ProcessLookupError):
                        proc.terminate()
            if (
                slot.proc is None
                and not self._draining
                and slot.restart_at is not None
                and now >= slot.restart_at
            ):
                slot.restart_at = None
                self._spawn(slot)
                self.stats["restarts"] += 1
        if (
            self.probe_interval > 0
            and not self._draining
            and self._socket is not None
            and now - self._last_probe >= self.probe_interval
            and any(slot.alive() for slot in self._slots)
        ):
            self._last_probe = now
            self.stats["probes"] += 1
            try:
                status, _payload = self.probe("/healthz", timeout=1.0)
                self.stats["last_probe_status"] = status
            except OSError:
                self.stats["probe_failures"] += 1
                self.stats["last_probe_status"] = None

    def probe(
        self, path: str = "/healthz", *, timeout: float = 2.0
    ) -> tuple[int, dict]:
        """One synchronous HTTP GET through the shared listener.

        The kernel picks whichever worker accepts — this is the
        end-to-end liveness cross-check the heartbeat pipes cannot
        provide (a worker can beat while its listener is gone).
        """
        with socket.create_connection(
            ("127.0.0.1", self.port), timeout=timeout
        ) as conn:
            conn.sendall(
                f"GET {path} HTTP/1.1\r\nHost: fleet\r\n"
                f"Connection: close\r\n\r\n".encode("latin-1")
            )
            conn.settimeout(timeout)
            data = b""
            while True:
                try:
                    chunk = conn.recv(65536)
                except socket.timeout:
                    break
                if not chunk:
                    break
                data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        if not head:
            raise ConnectionError("empty response from fleet")
        status = int(head.split(maxsplit=2)[1])
        try:
            payload = json.loads(body) if body else {}
        except ValueError:
            payload = {}
        return status, payload

    # -- steady-state loops --------------------------------------------
    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Block until every slot's worker heartbeats ready (or timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            self.poll()
            if all(
                slot.alive() and slot.ready for slot in self._slots
            ):
                return True
            time.sleep(self.heartbeat_interval / 4)
        return False

    def run(
        self,
        *,
        install_signal_handlers: bool = True,
        poll_interval: float = 0.05,
    ) -> None:
        """Supervise until shut down (the ``repro serve --workers`` loop).

        ``SIGTERM``/``SIGINT`` trigger lame-duck draining; ``SIGHUP``
        requests a rolling reload.
        """
        if self._socket is None:
            self.start()
        previous: dict[int, object] = {}
        if install_signal_handlers:
            def _request_stop(signum, frame):  # noqa: ARG001
                self._shutdown = True

            def _request_reload(signum, frame):  # noqa: ARG001
                self._reload_requested = True

            for signum, handler in (
                (signal.SIGTERM, _request_stop),
                (signal.SIGINT, _request_stop),
                (signal.SIGHUP, _request_reload),
            ):
                try:
                    previous[signum] = signal.signal(signum, handler)
                except (ValueError, OSError, AttributeError):
                    continue  # pragma: no cover - non-main thread/platform
        try:
            while not self._shutdown:
                self.poll()
                if self._reload_requested:
                    self._reload_requested = False
                    self.rolling_reload()
                time.sleep(poll_interval)
            self.lame_duck()
        finally:
            for signum, handler in previous.items():
                with contextlib.suppress(ValueError, OSError):
                    signal.signal(signum, handler)

    def request_shutdown(self) -> None:
        self._shutdown = True

    # -- draining and rolling reloads ----------------------------------
    def lame_duck(self, *, drain_deadline: float | None = None) -> None:
        """Stop restarting, drain every worker, close the listener.

        Each worker's own SIGTERM path is the PR 8 graceful drain:
        finish in-flight requests, flush the batcher, group-commit the
        shared WAL. Stragglers past the deadline get ``SIGKILL`` —
        which is budget-safe, because their acked charges are already
        journaled.
        """
        self._draining = True
        deadline = time.monotonic() + (
            self.drain_deadline if drain_deadline is None else drain_deadline
        )
        for slot in self._slots:
            if slot.alive():
                with contextlib.suppress(ProcessLookupError):
                    slot.proc.terminate()
        while time.monotonic() < deadline and any(
            slot.alive() for slot in self._slots
        ):
            self.poll()
            time.sleep(0.02)
        for slot in self._slots:
            if slot.alive():
                with contextlib.suppress(ProcessLookupError):
                    slot.proc.kill()
            if slot.proc is not None:
                with contextlib.suppress(Exception):
                    slot.proc.wait(timeout=2.0)
                slot.exits.append(slot.proc.returncode)
                slot.proc = None
            self._drain_heartbeats(slot, time.monotonic())
            self._close_heartbeat(slot)
        if self._socket is not None:
            with contextlib.suppress(OSError):
                self._socket.close()
            self._socket = None

    def rolling_reload(self, *, ready_timeout: float = 30.0) -> bool:
        """Replace workers one slot at a time (artifact reload).

        Each slot is drained (``SIGTERM``), respawned — the replacement
        re-reads the artifact store, picking up recompiled entries —
        and must heartbeat ready before the next slot is touched, so
        fleet capacity never dips below ``workers - 1``. Returns
        ``False`` if any replacement missed its readiness deadline.
        """
        ok = True
        for slot in self._slots:
            if self._draining or self._shutdown:
                return False
            if slot.alive():
                with contextlib.suppress(ProcessLookupError):
                    slot.proc.terminate()
                with contextlib.suppress(Exception):
                    slot.proc.wait(timeout=self.drain_deadline)
                if slot.alive():
                    with contextlib.suppress(ProcessLookupError):
                        slot.proc.kill()
                    with contextlib.suppress(Exception):
                        slot.proc.wait(timeout=2.0)
                slot.exits.append(slot.proc.returncode)
                slot.proc = None
                self._close_heartbeat(slot)
            self._spawn(slot)
            deadline = time.monotonic() + ready_timeout
            slot_ready = False
            while time.monotonic() < deadline:
                self.poll()
                if slot.alive() and slot.ready:
                    slot_ready = True
                    break
                time.sleep(self.heartbeat_interval / 4)
            ok = ok and slot_ready
        self.stats["rolling_reloads"] += 1
        return ok

    # -- chaos hooks ----------------------------------------------------
    def kill_worker(self, index: int, sig: int = signal.SIGKILL) -> int:
        """Deliver ``sig`` to the worker in ``index``'s slot (chaos).

        Returns the victim's pid. The supervision loop will reap the
        corpse and respawn with backoff — the invariant under test is
        that no acked charge is lost and no user passes the floor.
        """
        slot = self._slots[index]
        if not slot.alive():
            raise ReproError(f"slot {index} has no live worker to signal")
        pid = slot.proc.pid
        os.kill(pid, sig)
        return pid

    def status(self) -> dict:
        """A JSON-friendly snapshot for tests and operators."""
        return {
            "workers": self.workers,
            "draining": self._draining,
            "port": None if self._socket is None else self.port,
            "stats": dict(self.stats),
            "slots": [
                {
                    "index": slot.index,
                    "pid": slot.pid,
                    "alive": slot.alive(),
                    "ready": slot.ready,
                    "beats": slot.beats,
                    "published": slot.published,
                    "failures": slot.failures,
                    "spawns": slot.spawns,
                    "exits": list(slot.exits),
                }
                for slot in self._slots
            ],
        }


# -- the worker process ------------------------------------------------


def _build_worker_server(config: dict):
    """Construct this worker's server from the supervisor's JSON config.

    Imported lazily so the supervisor module stays importable without
    numpy (the worker obviously needs the full stack).
    """
    from ..release.durable_ledger import DurableLedger
    from .faults import FaultInjector, FaultyFS, fsync_storm
    from .server import MechanismServer

    faults_cfg = config.get("faults") or {}
    faults = None
    ledger = None
    ledger_factory = None
    floor = Fraction(config["floor"]) if config.get("floor") else 0
    ledger_dir = config.get("ledger_dir")
    ledger_fsync = config.get("ledger_fsync", "group")
    storm = faults_cfg.get("fsync_storm")
    if storm and ledger_dir:
        # The wal.fsync-storm fleet fault: this worker's WAL rides a
        # FaultyFS armed to fail a burst of fsyncs. The breaker must
        # open; once the storm exhausts, a recovery probe through the
        # same seam succeeds.
        faults = FaultInjector()
        fsync_storm(
            faults,
            after=int(storm.get("after", 0)),
            times=int(storm.get("times", 3)),
        )
        fs = FaultyFS(faults)

        def ledger_factory():
            return DurableLedger(
                ledger_dir, floor, fsync=ledger_fsync, fs=fs
            )

        ledger = ledger_factory()
    kwargs = dict(
        store=config["store"],
        floor=floor,
        drain_deadline=config.get("drain_deadline", 5.0),
        batch_window=config.get("batch_window", 0.002),
        batch_max=config.get("batch_max", 4096),
        audit_rate=config.get("audit_rate", 0.05),
        audit_every=config.get("audit_every", 64),
        seed=config.get("seed"),
        queue_depth=config.get("queue_depth", 0),
        shed_deadline=config.get("shed_deadline", 0.0),
        degraded=config.get("degraded", "503"),
        wal_failure_policy=config.get("wal_failure_policy", "reject"),
        breaker_cooldown=config.get("breaker_cooldown", 1.0),
        worker_id=config.get("worker_id"),
        trace_rate=config.get("trace_rate", 0.0),
    )
    if config.get("telemetry") is False:
        kwargs["telemetry"] = False
    if ledger is not None:
        kwargs["ledger"] = ledger
        kwargs["ledger_factory"] = ledger_factory
    elif ledger_dir:
        kwargs["ledger_dir"] = ledger_dir
        kwargs["ledger_fsync"] = ledger_fsync
    return MechanismServer(**kwargs)


async def _heartbeat_loop(server, fd: int, interval: float) -> None:
    """Write one JSON heartbeat line per interval to the supervisor.

    ``ready`` folds the server's own readiness with "is the listener
    actually serving" — the signal the listener-drop chaos relies on. A
    full pipe skips a beat (the supervisor is slow, not dead); a broken
    pipe ends the loop but never the worker (it keeps draining traffic
    even if the supervisor died).
    """
    os.set_blocking(fd, False)
    while True:
        http = server._http_server
        listening = http is not None and http.is_serving()
        ready = listening and server.readiness()[0]
        line = (
            json.dumps(
                {
                    "pid": os.getpid(),
                    "ready": bool(ready),
                    "published": server.metrics["published"],
                }
            )
            + "\n"
        ).encode("utf-8")
        try:
            os.write(fd, line)
        except BlockingIOError:
            pass
        except OSError:
            return
        await asyncio.sleep(interval)


async def _worker_serve(config: dict) -> None:
    server = _build_worker_server(config)
    server.load_store()
    sock = socket.socket(fileno=config["socket_fd"])
    sock.setblocking(False)
    await server.start(sock=sock)
    tasks = []
    hb_fd = config.get("heartbeat_fd")
    if hb_fd is not None:
        tasks.append(
            asyncio.create_task(
                _heartbeat_loop(
                    server, hb_fd, config.get("heartbeat_interval", 0.25)
                )
            )
        )
    drop_after = (config.get("faults") or {}).get("listener_drop_after_s")
    dropped = asyncio.Event()
    if drop_after:
        # The worker.listener-drop fleet fault: the process stays alive
        # and keeps beating, but stops accepting — the supervisor must
        # notice via ready=False and replace it.
        def _drop() -> None:
            if server._http_server is not None:
                server._http_server.close()
            dropped.set()

        asyncio.get_running_loop().call_later(float(drop_after), _drop)
    try:
        await server.serve_forever(install_signal_handlers=True)
        if dropped.is_set() and not server._shutdown.is_set():
            # The injected fault ended serve_forever, not a shutdown
            # request: simulate the real failure (accept loop dead,
            # event loop alive) by beating not-ready until the
            # supervisor drains this worker.
            await asyncio.Event().wait()
    finally:
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        # Flush the batcher and group-commit tail, close the shared
        # ledger cleanly — the drain half of lame-duck lives here.
        with contextlib.suppress(Exception):
            await server.stop()
        if hb_fd is not None:
            # One final beat with the settled counters, so the
            # supervisor's last pipe drain sees this worker's true
            # published total (the periodic loop was just cancelled).
            with contextlib.suppress(OSError):
                os.write(
                    hb_fd,
                    (
                        json.dumps(
                            {
                                "pid": os.getpid(),
                                "ready": False,
                                "published": server.metrics["published"],
                            }
                        )
                        + "\n"
                    ).encode("utf-8"),
                )


def _worker_main(config: dict) -> int:
    asyncio.run(_worker_serve(config))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serving.supervisor",
        description="Fleet worker entry point (internal).",
    )
    parser.add_argument(
        "--worker",
        help="internal: JSON worker config from the supervisor",
    )
    args = parser.parse_args(argv)
    if not args.worker:
        parser.error(
            "this module only runs as a supervised worker; start a fleet "
            "with `repro serve --workers N`"
        )
    return _worker_main(json.loads(args.worker))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
