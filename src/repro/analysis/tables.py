"""Reproduction of the paper's Tables 1 and 2.

**Table 1** (Section 2.5/2.6): for the consumer with loss ``|i - r|``,
side information ``S = {0,1,2,3}``, ``n = 3``, ``alpha = 1/4``, the paper
prints (a) the optimal mechanism, (b) the geometric mechanism
``G_{3,1/4}``, and (c) the consumer-interaction matrix, illustrating the
factorization *optimal = geometric x interaction*.

Two display conventions in the published table need care:

* (b) is printed *without* the scalar prefactor ``(1-a)/(1+a)``: the
  printed entries (``4/3``, ``1/4``, ...) equal ``G * (1+a)/(1-a)``. We
  reproduce both the true stochastic ``G`` and the paper-scaled render,
  and verify the printed entries exactly.
* the printed (a) entries are lightly rounded (their rows sum to
  ~1.0113, so they cannot be a verbatim LP solution); we reproduce the
  exact optimum and record per-entry deltas against the printed values.

**Table 2** displays ``G_{n,alpha}`` and ``G'_{n,alpha}`` symbolically;
:func:`reproduce_table2` builds both for concrete ``(n, alpha)`` and
verifies the column-scaling relation and Lemma 1's determinant identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..core.derivability import derivation_factor
from ..core.geometric import (
    GeometricMechanism,
    column_scaling,
    gprime_matrix,
)
from ..core.interaction import optimal_interaction
from ..core.mechanism import Mechanism
from ..core.optimal import optimal_mechanism
from ..linalg.rational import RationalMatrix
from ..linalg.toeplitz import kms_determinant
from ..losses.standard import AbsoluteLoss
from ..validation import as_fraction, as_fraction_matrix, check_alpha, check_result_range

__all__ = [
    "PAPER_TABLE1_A",
    "PAPER_TABLE1_B",
    "PAPER_TABLE1_C",
    "Table1Reproduction",
    "reproduce_table1",
    "Table2Reproduction",
    "reproduce_table2",
]

#: Table 1(a) exactly as printed (rows sum to ~1.0113 — see module doc).
PAPER_TABLE1_A = as_fraction_matrix(
    [
        [Fraction(2, 3), Fraction(5, 17), Fraction(1, 25), Fraction(1, 98)],
        [Fraction(1, 6), Fraction(7, 11), Fraction(7, 44), Fraction(2, 49)],
        [Fraction(2, 49), Fraction(7, 44), Fraction(7, 11), Fraction(1, 6)],
        [Fraction(1, 98), Fraction(1, 25), Fraction(5, 17), Fraction(2, 3)],
    ]
)

#: Table 1(b) exactly as printed — ``G_{3,1/4}`` times ``(1+a)/(1-a)``.
PAPER_TABLE1_B = as_fraction_matrix(
    [
        [Fraction(4, 3), Fraction(1, 4), Fraction(1, 16), Fraction(1, 48)],
        [Fraction(1, 3), Fraction(1), Fraction(1, 4), Fraction(1, 12)],
        [Fraction(1, 12), Fraction(1, 4), Fraction(1), Fraction(1, 3)],
        [Fraction(1, 48), Fraction(1, 16), Fraction(1, 4), Fraction(4, 3)],
    ]
)

#: Table 1(c) exactly as printed — the consumer interaction matrix.
PAPER_TABLE1_C = as_fraction_matrix(
    [
        [Fraction(9, 11), Fraction(2, 11), Fraction(0), Fraction(0)],
        [Fraction(0), Fraction(1), Fraction(0), Fraction(0)],
        [Fraction(0), Fraction(0), Fraction(1), Fraction(0)],
        [Fraction(0), Fraction(0), Fraction(2, 11), Fraction(9, 11)],
    ]
)


@dataclass(frozen=True)
class Table1Reproduction:
    """All artifacts of Table 1, recomputed exactly.

    Attributes
    ----------
    n, alpha:
        The published instance parameters (3 and 1/4).
    optimal:
        Exact bespoke-LP optimal mechanism — our Table 1(a).
    optimal_loss:
        Its minimax loss.
    geometric:
        ``G_{3,1/4}`` (row-stochastic) — Table 1(b) up to the display
        prefactor.
    geometric_paper_scaled:
        ``G * (1+a)/(1-a)`` — the entries as printed in the paper.
    interaction_kernel:
        Our consumer's optimal interaction with the geometric
        mechanism — our Table 1(c).
    induced:
        ``geometric @ interaction_kernel``.
    interaction_loss:
        Loss achieved by interacting with the geometric mechanism.
    factorization_kernel:
        ``G^{-1} @ optimal`` — the exact kernel that rebuilds the LP
        optimum from the geometric mechanism (Theorem 2's factor).
    paper_kernel_loss:
        Loss achieved by the *paper's printed* interaction matrix (c).
    universality_gap:
        ``optimal_loss - interaction_loss`` (Theorem 1 says exactly 0).
    """

    n: int
    alpha: Fraction
    optimal: Mechanism
    optimal_loss: Fraction
    geometric: Mechanism
    geometric_paper_scaled: np.ndarray
    interaction_kernel: np.ndarray
    induced: Mechanism
    interaction_loss: Fraction
    factorization_kernel: np.ndarray
    paper_kernel_loss: Fraction
    universality_gap: Fraction


def reproduce_table1() -> Table1Reproduction:
    """Recompute every panel of Table 1 with exact arithmetic."""
    n = 3
    alpha = Fraction(1, 4)
    loss = AbsoluteLoss()
    side = range(n + 1)

    bespoke = optimal_mechanism(n, alpha, loss, side, exact=True)
    geometric = GeometricMechanism(n, alpha)
    interaction = optimal_interaction(geometric, loss, side, exact=True)
    display_scale = (1 + alpha) / (1 - alpha)
    scaled = geometric.matrix
    paper_scaled = np.empty_like(scaled)
    for i in range(n + 1):
        for j in range(n + 1):
            paper_scaled[i, j] = scaled[i, j] * display_scale
    factor = derivation_factor(bespoke.mechanism, alpha)

    paper_induced = geometric.post_process(PAPER_TABLE1_C)
    paper_loss = paper_induced.worst_case_loss(loss, side)

    return Table1Reproduction(
        n=n,
        alpha=alpha,
        optimal=bespoke.mechanism,
        optimal_loss=bespoke.loss,
        geometric=geometric,
        geometric_paper_scaled=paper_scaled,
        interaction_kernel=interaction.kernel,
        induced=interaction.induced,
        interaction_loss=interaction.loss,
        factorization_kernel=factor,
        paper_kernel_loss=paper_loss,
        universality_gap=bespoke.loss - interaction.loss,
    )


@dataclass(frozen=True)
class Table2Reproduction:
    """Both Table 2 matrices plus the identities relating them.

    Attributes
    ----------
    geometric:
        ``G_{n,alpha}`` as a stochastic mechanism.
    gprime:
        ``G'_{n,alpha}`` (the KMS matrix ``alpha^{|i-j|}``).
    scaling:
        Column factors ``c_j`` with ``G = G' diag(c)``.
    gprime_determinant:
        ``det G'`` computed by elimination.
    gprime_determinant_formula:
        Lemma 1's closed form ``(1-a^2)^{m-1}``.
    scaling_identity_holds:
        Whether ``G == G' diag(c)`` exactly.
    """

    geometric: Mechanism
    gprime: RationalMatrix
    scaling: list[Fraction]
    gprime_determinant: Fraction
    gprime_determinant_formula: Fraction
    scaling_identity_holds: bool


def reproduce_table2(n: int = 3, alpha=Fraction(1, 4)) -> Table2Reproduction:
    """Build ``G`` and ``G'`` and verify the relations Table 2 asserts."""
    n = check_result_range(n)
    alpha = as_fraction(alpha, name="alpha")
    check_alpha(alpha)
    geometric = GeometricMechanism(n, alpha)
    gprime = gprime_matrix(n, alpha)
    scaling = column_scaling(n, alpha)
    rebuilt = gprime @ RationalMatrix.diagonal(scaling)
    identity_holds = rebuilt == geometric.to_rational_matrix()
    return Table2Reproduction(
        geometric=geometric,
        gprime=gprime,
        scaling=scaling,
        gprime_determinant=gprime.determinant(),
        gprime_determinant_formula=kms_determinant(n + 1, alpha),
        scaling_identity_holds=identity_holds,
    )
