"""Figure 1: the geometric mechanism's output distribution.

The paper's only figure plots the two-sided geometric pmf for
``alpha = 0.2`` centered at query result 5, over outputs -20..20.
:func:`figure1_series` regenerates the plotted series exactly;
:func:`ascii_plot` renders it in a terminal.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.geometric import geometric_noise_pmf
from ..exceptions import ValidationError
from ..validation import check_alpha

__all__ = ["figure1_series", "ascii_plot"]


def figure1_series(
    alpha=Fraction(1, 5),
    center: int = 5,
    low: int = -20,
    high: int = 20,
) -> list[tuple[int, object]]:
    """The (output, probability) series of the paper's Figure 1.

    Defaults reproduce the published parameters: ``alpha = 0.2``, true
    query result 5, x-axis -20..20. Exact probabilities for Fraction
    ``alpha``.
    """
    check_alpha(alpha)
    if low > high:
        raise ValidationError(f"empty output range: {low} > {high}")
    return [
        (z, geometric_noise_pmf(alpha, z - center)) for z in range(low, high + 1)
    ]


def ascii_plot(
    series, *, width: int = 50, height_label: str = "Pr"
) -> str:
    """Render an (x, y) series as a horizontal-bar ASCII plot."""
    points = [(x, float(y)) for x, y in series]
    if not points:
        raise ValidationError("series must be non-empty")
    if width < 5:
        raise ValidationError(f"width must be >= 5, got {width}")
    peak = max(y for _, y in points)
    if peak <= 0:
        raise ValidationError("series must contain a positive value")
    lines = [f"{'x':>5}  {height_label}"]
    for x, y in points:
        bar = "#" * max(0, round(width * y / peak))
        lines.append(f"{x:>5}  {y:.6f} {bar}")
    return "\n".join(lines)
