"""Privacy-utility trade-off analysis.

The paper's Section 2.1 observes that varying ``alpha`` in ``[0, 1]``
trades privacy against utility; this module quantifies the trade-off for
concrete consumers:

* :func:`tradeoff_curve` — the frontier ``alpha -> optimal minimax
  loss`` (optimal loss is non-decreasing in alpha: more privacy costs
  utility; tested);
* :func:`value_of_rationality` — how much rational post-processing buys
  over taking the geometric mechanism's output at face value, per
  consumer; this is the concrete payoff of the paper's rational-consumer
  model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.geometric import GeometricMechanism
from ..core.interaction import optimal_interaction
from ..core.optimal import optimal_mechanism
from ..exceptions import ValidationError
from ..validation import check_alpha

__all__ = [
    "TradeoffPoint",
    "tradeoff_curve",
    "RationalityRecord",
    "value_of_rationality",
]


@dataclass(frozen=True)
class TradeoffPoint:
    """One point on the privacy-utility frontier.

    Attributes
    ----------
    alpha:
        Privacy level.
    epsilon:
        The same in the epsilon convention.
    optimal_loss:
        The minimax-optimal loss achievable at this level (Section 2.5
        LP == interaction-with-G loss, by Theorem 1).
    """

    alpha: object
    epsilon: float
    optimal_loss: object


def tradeoff_curve(
    n: int,
    alphas,
    loss,
    side_information=None,
    *,
    exact: bool = True,
) -> list[TradeoffPoint]:
    """Compute the privacy-utility frontier for one consumer.

    Parameters
    ----------
    n:
        Maximum query result.
    alphas:
        Iterable of privacy levels to sweep (need not be sorted).
    loss, side_information:
        The consumer's parameters.
    exact:
        Solve exactly (Fraction alphas) or with HiGHS.
    """
    from ..core.privacy import alpha_to_epsilon

    levels = list(alphas)
    if not levels:
        raise ValidationError("alphas must be non-empty")
    for alpha in levels:
        check_alpha(alpha)
    points = []
    for alpha in sorted(levels):
        result = optimal_mechanism(
            n, alpha, loss, side_information, exact=exact
        )
        points.append(
            TradeoffPoint(
                alpha=alpha,
                epsilon=alpha_to_epsilon(alpha),
                optimal_loss=result.loss,
            )
        )
    return points


@dataclass(frozen=True)
class RationalityRecord:
    """Face-value vs rational consumption of the geometric mechanism.

    Attributes
    ----------
    alpha:
        Privacy level of the deployment.
    face_value_loss:
        Worst-case loss of accepting G's output verbatim.
    rational_loss:
        Worst-case loss after the optimal interaction (== the bespoke
        optimum by Theorem 1).
    improvement:
        ``face_value_loss - rational_loss`` (>= 0; strictly positive
        whenever side information or the loss's shape make
        re-interpretation worthwhile).
    """

    alpha: object
    face_value_loss: object
    rational_loss: object
    improvement: object


def value_of_rationality(
    n: int,
    alpha,
    loss,
    side_information=None,
    *,
    exact: bool = True,
) -> RationalityRecord:
    """Quantify what the paper's rational interaction buys one consumer."""
    check_alpha(alpha)
    deployed = GeometricMechanism(n, alpha)
    face_value = deployed.worst_case_loss(loss, side_information)
    interaction = optimal_interaction(
        deployed, loss, side_information, exact=exact
    )
    return RationalityRecord(
        alpha=alpha,
        face_value_loss=face_value,
        rational_loss=interaction.loss,
        improvement=face_value - interaction.loss,
    )
