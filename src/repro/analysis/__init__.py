"""Reproduction of the paper's tables and figures, plus sweeps.

Each artifact in the paper has a dedicated entry point here returning
plain data (matrices, series, records); the benchmark suite times and
prints them, and EXPERIMENTS.md records paper-vs-measured values.
"""

from .figures import ascii_plot, figure1_series
from .fractions_fmt import format_matrix, format_value
from .sweeps import (
    UniversalityRecord,
    bayesian_universality_sweep,
    universality_sweep,
)
from .tables import (
    Table1Reproduction,
    reproduce_table1,
    reproduce_table2,
)
from .tradeoff import (
    RationalityRecord,
    TradeoffPoint,
    tradeoff_curve,
    value_of_rationality,
)

__all__ = [
    "TradeoffPoint",
    "tradeoff_curve",
    "RationalityRecord",
    "value_of_rationality",
    "figure1_series",
    "ascii_plot",
    "format_matrix",
    "format_value",
    "Table1Reproduction",
    "reproduce_table1",
    "reproduce_table2",
    "UniversalityRecord",
    "universality_sweep",
    "bayesian_universality_sweep",
]
