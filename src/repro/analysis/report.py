"""Plain-text experiment reports.

Renderers that turn reproduction dataclasses into the text blocks the
benchmarks print and EXPERIMENTS.md records.
"""

from __future__ import annotations

from .figures import ascii_plot, figure1_series
from .fractions_fmt import format_matrix, format_value
from .tables import (
    PAPER_TABLE1_A,
    PAPER_TABLE1_B,
    PAPER_TABLE1_C,
    Table1Reproduction,
    Table2Reproduction,
)

__all__ = ["render_table1", "render_table2", "render_figure1"]


def render_table1(repro: Table1Reproduction) -> str:
    """Side-by-side rendering of Table 1: measured vs printed."""
    lines = [
        f"Table 1 reproduction (n={repro.n}, alpha={repro.alpha}, "
        "loss=|i-r|, S={0,1,2,3})",
        "",
        "(a) optimal mechanism [measured, exact LP]:",
        format_matrix(repro.optimal),
        "    optimal minimax loss: "
        + format_value(repro.optimal_loss)
        + f" = {float(repro.optimal_loss):.6f}",
        "",
        "(a) as printed in the paper (entries are rounded; rows sum to "
        "~1.0113):",
        format_matrix(PAPER_TABLE1_A),
        "",
        "(b) geometric mechanism G_{3,1/4} [measured, row-stochastic]:",
        format_matrix(repro.geometric),
        "(b) with the paper's display scaling (x (1+a)/(1-a)):",
        format_matrix(repro.geometric_paper_scaled),
        "(b) as printed in the paper:",
        format_matrix(PAPER_TABLE1_B),
        "",
        "(c) optimal consumer interaction [measured]:",
        format_matrix(repro.interaction_kernel),
        "(c) as printed in the paper:",
        format_matrix(PAPER_TABLE1_C),
        "    loss via measured interaction:  "
        + format_value(repro.interaction_loss)
        + f" = {float(repro.interaction_loss):.6f}",
        "    loss via paper's printed (c):   "
        + format_value(repro.paper_kernel_loss)
        + f" = {float(repro.paper_kernel_loss):.6f}",
        "",
        "factorization check (Theorem 2): G^{-1} @ optimal =",
        format_matrix(repro.factorization_kernel),
        "",
        "universality gap (Theorem 1, must be 0): "
        + format_value(repro.universality_gap),
    ]
    return "\n".join(lines)


def render_table2(repro: Table2Reproduction) -> str:
    """Rendering of Table 2's two matrices and their identities."""
    lines = [
        f"Table 2 reproduction (n={repro.geometric.n})",
        "",
        "G_{n,alpha}:",
        format_matrix(repro.geometric),
        "",
        "G'_{n,alpha} = alpha^{|i-j|}:",
        format_matrix(repro.gprime),
        "",
        "column scaling c with G = G' diag(c): "
        + ", ".join(format_value(c) for c in repro.scaling),
        f"scaling identity holds exactly: {repro.scaling_identity_holds}",
        "det G' (elimination):      "
        + format_value(repro.gprime_determinant),
        "det G' (Lemma 1 formula):  "
        + format_value(repro.gprime_determinant_formula),
    ]
    return "\n".join(lines)


def render_figure1(alpha=None, center: int = 5) -> str:
    """Figure 1's series as an ASCII plot (paper parameters by default)."""
    from fractions import Fraction

    series = figure1_series(
        alpha if alpha is not None else Fraction(1, 5), center
    )
    header = (
        "Figure 1 reproduction: geometric mechanism output distribution, "
        f"alpha={alpha if alpha is not None else '1/5'}, result={center}"
    )
    return header + "\n" + ascii_plot(series)
