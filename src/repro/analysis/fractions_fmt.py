"""Rendering matrices the way the paper prints them.

The paper's tables print mechanisms as grids of small fractions
(``2/3``, ``5/17``, ...). These helpers render exact matrices verbatim
and float matrices either as decimals or as nearest small fractions for
side-by-side comparison with the published tables.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..core.mechanism import Mechanism
from ..linalg.rational import RationalMatrix

__all__ = ["format_value", "format_matrix", "nearest_fractions"]


def format_value(value, *, max_denominator: int | None = None) -> str:
    """Render one entry: exact fractions verbatim, floats to 6 digits."""
    if isinstance(value, Fraction):
        if max_denominator is not None:
            value = value.limit_denominator(max_denominator)
        if value.denominator == 1:
            return str(value.numerator)
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    return f"{float(value):.6f}"


def _rows_of(matrix) -> list[list]:
    if isinstance(matrix, Mechanism):
        matrix = matrix.matrix
    if isinstance(matrix, RationalMatrix):
        matrix = matrix.to_numpy()
    matrix = np.asarray(matrix)
    return [list(row) for row in matrix]


def format_matrix(
    matrix, *, max_denominator: int | None = None, indent: str = "  "
) -> str:
    """Render a matrix as an aligned text grid (one row per line)."""
    rows = _rows_of(matrix)
    rendered = [
        [format_value(entry, max_denominator=max_denominator) for entry in row]
        for row in rows
    ]
    widths = [
        max(len(rendered[i][j]) for i in range(len(rendered)))
        for j in range(len(rendered[0]))
    ]
    lines = [
        indent
        + "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        for row in rendered
    ]
    return "\n".join(lines)


def nearest_fractions(matrix, max_denominator: int = 100) -> np.ndarray:
    """Round a float matrix to nearest small fractions (object array).

    Used when comparing LP float output against the paper's printed
    fractions.
    """
    rows = _rows_of(matrix)
    out = np.empty((len(rows), len(rows[0])), dtype=object)
    for i, row in enumerate(rows):
        for j, entry in enumerate(row):
            out[i, j] = Fraction(float(entry)).limit_denominator(
                max_denominator
            )
    return out
