"""Parameter sweeps validating the paper's theorems at scale.

The central sweep checks Theorem 1's *simultaneous utility maximization*
across a grid of consumers: for each (n, alpha, loss, side-information)
cell, the loss achieved by optimally interacting with the deployed
geometric mechanism must equal the optimum of the consumer's bespoke LP.
A Bayesian variant reproduces the GRS09 baseline result the paper
generalizes.

Both sweeps scale out with ``workers=``: distinct unsolved cells are
chunked across a process pool, each worker returns its chunk of
``(bespoke, interaction)`` losses, and the chunks merge back into the
shared cell cache — so the records (and the cache a caller passes in)
are bit-identical to a serial run, just produced on all cores.

Two layers of caching compose here. The in-memory ``cache=`` dict
dedupes repeated cells *within and across calls in one process*; the
persistent ``solve_cache=``/``cache_dir=`` layer
(:mod:`repro.solvers.cache`) memoizes the underlying LP solves *across
runs and processes* — worker pools share the same cache directory, so a
re-run of a sweep (or an incrementally grown grid) performs zero LP
solves for every cell already on disk.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..agents.bayesian import BayesianAgent
from ..core.geometric import cached_geometric_mechanism
from ..core.interaction import optimal_interaction
from ..core.optimal import optimal_mechanism
from ..exceptions import ValidationError
from ..losses.base import LossFunction
from ..solvers.cache import SolveCache, resolve_cache

__all__ = [
    "UniversalityRecord",
    "universality_sweep",
    "bayesian_universality_sweep",
]


@dataclass(frozen=True)
class UniversalityRecord:
    """One cell of a universality sweep.

    Attributes
    ----------
    n, alpha:
        Instance parameters.
    loss_name:
        Description of the consumer's loss function.
    side_information:
        The admissible-result set used.
    bespoke_loss:
        Optimum of the consumer's tailored LP (Section 2.5).
    interaction_loss:
        Loss from optimal interaction with the geometric mechanism.
    gap:
        ``bespoke_loss - interaction_loss``; Theorem 1 predicts 0
        (interaction can never beat the bespoke optimum, so gap <= 0
        would signal a bug; gap > tolerance falsifies universality).
    holds:
        Whether the gap is zero (within the arithmetic regime's
        tolerance).
    """

    n: int
    alpha: object
    loss_name: str
    side_information: tuple[int, ...]
    bespoke_loss: object
    interaction_loss: object
    gap: object
    holds: bool


def _cell_key(n, alpha, loss, members, exact, space="x"):
    """Hashable identity of one sweep cell (the tuple itself, so dict
    lookups keep full equality semantics rather than bare hashes).

    Loss functions hash by identity, which is the right notion here:
    grids are built by repeating the same loss objects across cells.
    The LP parameterization participates too: exact-regime results are
    bit-identical across spaces, but float factor solves are not, so a
    shared ``cache=`` dict must not serve one space's cells to the
    other. Unhashable alphas disable caching for the cell (return
    ``None``).
    """
    key = (n, alpha, loss, members, exact, space)
    try:
        hash(key)
    except TypeError:
        return None
    return key


def _cache_token(solve_cache):
    """Picklable stand-in for a solve cache, shipped to worker processes.

    Directory caches are shared through the filesystem, so workers only
    need the path; ``False`` propagates an explicit opt-out (otherwise a
    worker would fall back to its own ``REPRO_CACHE_DIR`` default).
    """
    if solve_cache is False:
        return False
    resolved = resolve_cache(solve_cache)
    return None if resolved is None else str(resolved.path)


def _solve_universality_cell(cell, solve_cache=None, space="x"):
    """Solve one distinct sweep cell (runs in worker processes too)."""
    n, alpha, loss, members, exact = cell
    bespoke = optimal_mechanism(
        n,
        alpha,
        loss,
        members,
        exact=exact,
        space=space,
        solve_cache=solve_cache,
    )
    deployed = cached_geometric_mechanism(
        n, alpha if exact else float(alpha)
    )
    interaction = optimal_interaction(
        deployed, loss, members, exact=exact, solve_cache=solve_cache
    )
    return bespoke.loss, interaction.loss


def _solve_universality_chunk(args):
    cells, exact, cache_token, space = args
    solve_cache = resolve_cache(cache_token)
    return [
        _solve_universality_cell(
            cell + (exact,),
            solve_cache=False if solve_cache is None else solve_cache,
            space=space,
        )
        for cell in cells
    ]


def _solve_bayesian_cell(cell, solve_cache=None):
    """Solve one distinct Bayesian sweep cell (worker-safe)."""
    n, alpha, loss, prior, exact = cell
    agent = BayesianAgent(loss, prior, n=n)
    _, bespoke_loss = agent.bespoke_mechanism(
        alpha, exact=exact, solve_cache=solve_cache
    )
    deployed = cached_geometric_mechanism(
        n, alpha if exact else float(alpha)
    )
    return bespoke_loss, agent.best_interaction(deployed).loss


def _solve_bayesian_chunk(args):
    cells, exact, cache_token = args
    solve_cache = resolve_cache(cache_token)
    return [
        _solve_bayesian_cell(
            cell + (exact,),
            solve_cache=False if solve_cache is None else solve_cache,
        )
        for cell in cells
    ]


def _parallel_fill(solved, pending, chunk_solver, chunk_extra, workers):
    """Solve ``pending`` (key -> cell) on a process pool, merge results.

    Cells are chunked round-robin so workers stay balanced on grids
    whose cost grows along one axis (e.g. increasing ``n``); each chunk
    comes back as a list aligned with its cells, and the merged
    ``solved`` cache is indistinguishable from a serial run's.
    ``chunk_extra`` is the per-chunk argument tail (regime flag, solve-
    cache token, ...), identical for every chunk.
    """
    keys = list(pending)
    workers = max(1, min(int(workers), len(keys)))
    if workers == 1 or len(keys) < 2:
        for key in keys:
            solved[key] = chunk_solver(([pending[key]],) + chunk_extra)[0]
        return
    chunks = [keys[start::workers] for start in range(workers)]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        chunk_results = pool.map(
            chunk_solver,
            [
                ([pending[key] for key in chunk],) + chunk_extra
                for chunk in chunks
            ],
        )
        for chunk, results in zip(chunks, chunk_results):
            for key, result in zip(chunk, results):
                solved[key] = result


def universality_sweep(
    cases,
    *,
    exact: bool = False,
    tolerance: float = 1e-6,
    cache: dict | None = None,
    workers: int | None = None,
    solve_cache=None,
    cache_dir=None,
    space: str = "x",
) -> list[UniversalityRecord]:
    """Run the Theorem 1 check over ``(n, alpha, loss, side_info)`` cases.

    Repeated ``(n, alpha, loss, side_information)`` cells are deduped:
    the bespoke LP and the interaction LP each solve once per distinct
    cell, and the deployed geometric mechanism is shared per
    ``(n, alpha)`` via
    :func:`repro.core.geometric.cached_geometric_mechanism`.

    Parameters
    ----------
    cases:
        Iterable of ``(n, alpha, loss, side_information)`` tuples;
        ``side_information`` may be None or an iterable of results.
    exact:
        Use the exact (certify-first) backend (zero tolerance).
    tolerance:
        Gap tolerance in the float regime.
    cache:
        Optional dict reused across calls so successive sweeps over
        overlapping grids skip already-solved cells. Defaults to a fresh
        per-call cache.
    workers:
        When > 1, distinct unsolved cells are solved on a process pool
        of this size and merged back into ``cache``; records are
        bit-identical to a serial run. Cells whose key is unhashable
        (and hence uncacheable) are solved serially.
    solve_cache:
        Persistent cross-run LP solve cache
        (:class:`repro.solvers.cache.SolveCache`, a directory path,
        ``None`` for the ``REPRO_CACHE_DIR`` default, or ``False`` to
        disable). Worker pools share directory-backed caches, so warm
        re-runs perform zero LP solves.
    cache_dir:
        Convenience spelling of ``solve_cache=<directory>`` (ignored
        when ``solve_cache`` is given).
    space:
        LP parameterization for the bespoke solves (``"x"`` or the
        Theorem 2 ``"factor"`` reparameterization); see
        :func:`repro.core.optimal.optimal_mechanism`.
    """
    records: list[UniversalityRecord] = []
    solved = {} if cache is None else cache
    if solve_cache is None and cache_dir is not None:
        solve_cache = SolveCache(cache_dir)
    lp_cache = resolve_cache(solve_cache)
    cell_cache = False if lp_cache is None else lp_cache
    cases = [
        (n, alpha, loss, side) for n, alpha, loss, side in cases
    ]
    for n, alpha, loss, side in cases:
        if not isinstance(loss, LossFunction):
            raise ValidationError("sweep cases must use LossFunction losses")
    if workers is not None and workers > 1:
        pending: dict = {}
        for n, alpha, loss, side in cases:
            members = tuple(
                range(n + 1) if side is None else sorted(int(i) for i in side)
            )
            key = _cell_key(n, alpha, loss, members, exact, space)
            if key is not None and key not in solved and key not in pending:
                pending[key] = (n, alpha, loss, members)
        if pending:
            _parallel_fill(
                solved,
                pending,
                _solve_universality_chunk,
                (exact, _cache_token(solve_cache), space),
                workers,
            )
    for n, alpha, loss, side in cases:
        members = tuple(
            range(n + 1) if side is None else sorted(int(i) for i in side)
        )
        key = _cell_key(n, alpha, loss, members, exact, space)
        if key is not None and key in solved:
            bespoke_loss, interaction_loss = solved[key]
        else:
            bespoke_loss, interaction_loss = _solve_universality_cell(
                (n, alpha, loss, members, exact),
                solve_cache=cell_cache,
                space=space,
            )
            if key is not None:
                solved[key] = (bespoke_loss, interaction_loss)
        gap = bespoke_loss - interaction_loss
        holds = gap == 0 if exact else abs(float(gap)) <= tolerance
        records.append(
            UniversalityRecord(
                n=n,
                alpha=alpha,
                loss_name=loss.describe(),
                side_information=members,
                bespoke_loss=bespoke_loss,
                interaction_loss=interaction_loss,
                gap=gap,
                holds=holds,
            )
        )
    return records


def bayesian_universality_sweep(
    cases,
    *,
    exact: bool = False,
    tolerance: float = 1e-6,
    cache: dict | None = None,
    workers: int | None = None,
    solve_cache=None,
    cache_dir=None,
) -> list[UniversalityRecord]:
    """GRS09 baseline: the same sweep for Bayesian consumers.

    ``cases`` are ``(n, alpha, loss, prior)`` tuples. For each, the
    prior-expected loss achieved by the Bayesian agent's deterministic
    remap of the geometric mechanism is compared against the GRS09
    bespoke LP optimum. Repeated cells are deduped as in
    :func:`universality_sweep` (the prior participates in the cell key),
    ``workers=`` fans distinct cells out to a process pool the same way,
    and ``solve_cache=``/``cache_dir=`` consult the same persistent LP
    solve cache.
    """
    records: list[UniversalityRecord] = []
    solved = {} if cache is None else cache
    if solve_cache is None and cache_dir is not None:
        solve_cache = SolveCache(cache_dir)
    lp_cache = resolve_cache(solve_cache)
    cell_cache = False if lp_cache is None else lp_cache
    cases = [(n, alpha, loss, prior) for n, alpha, loss, prior in cases]
    if workers is not None and workers > 1:
        pending: dict = {}
        for n, alpha, loss, prior in cases:
            prior_key = tuple(np.asarray(prior).tolist())
            key = _cell_key(n, alpha, loss, prior_key, exact)
            if key is not None and key not in solved and key not in pending:
                pending[key] = (n, alpha, loss, prior)
        if pending:
            _parallel_fill(
                solved,
                pending,
                _solve_bayesian_chunk,
                (exact, _cache_token(solve_cache)),
                workers,
            )
    for n, alpha, loss, prior in cases:
        prior_key = tuple(np.asarray(prior).tolist())
        key = _cell_key(n, alpha, loss, prior_key, exact)
        if key is not None and key in solved:
            bespoke_loss, interaction_loss = solved[key]
        else:
            bespoke_loss, interaction_loss = _solve_bayesian_cell(
                (n, alpha, loss, prior, exact), solve_cache=cell_cache
            )
            if key is not None:
                solved[key] = (bespoke_loss, interaction_loss)
        gap = bespoke_loss - interaction_loss
        holds = gap == 0 if exact else abs(float(gap)) <= tolerance
        records.append(
            UniversalityRecord(
                n=n,
                alpha=alpha,
                loss_name=loss.describe(),
                side_information=tuple(range(n + 1)),
                bespoke_loss=bespoke_loss,
                interaction_loss=interaction_loss,
                gap=gap,
                holds=holds,
            )
        )
    return records
