"""Parameter sweeps validating the paper's theorems at scale.

The central sweep checks Theorem 1's *simultaneous utility maximization*
across a grid of consumers: for each (n, alpha, loss, side-information)
cell, the loss achieved by optimally interacting with the deployed
geometric mechanism must equal the optimum of the consumer's bespoke LP.
A Bayesian variant reproduces the GRS09 baseline result the paper
generalizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..agents.bayesian import BayesianAgent
from ..core.geometric import cached_geometric_mechanism
from ..core.interaction import optimal_interaction
from ..core.optimal import optimal_mechanism
from ..exceptions import ValidationError
from ..losses.base import LossFunction

__all__ = [
    "UniversalityRecord",
    "universality_sweep",
    "bayesian_universality_sweep",
]


@dataclass(frozen=True)
class UniversalityRecord:
    """One cell of a universality sweep.

    Attributes
    ----------
    n, alpha:
        Instance parameters.
    loss_name:
        Description of the consumer's loss function.
    side_information:
        The admissible-result set used.
    bespoke_loss:
        Optimum of the consumer's tailored LP (Section 2.5).
    interaction_loss:
        Loss from optimal interaction with the geometric mechanism.
    gap:
        ``bespoke_loss - interaction_loss``; Theorem 1 predicts 0
        (interaction can never beat the bespoke optimum, so gap <= 0
        would signal a bug; gap > tolerance falsifies universality).
    holds:
        Whether the gap is zero (within the arithmetic regime's
        tolerance).
    """

    n: int
    alpha: object
    loss_name: str
    side_information: tuple[int, ...]
    bespoke_loss: object
    interaction_loss: object
    gap: object
    holds: bool


def _cell_key(n, alpha, loss, members, exact):
    """Hashable identity of one sweep cell (the tuple itself, so dict
    lookups keep full equality semantics rather than bare hashes).

    Loss functions hash by identity, which is the right notion here:
    grids are built by repeating the same loss objects across cells.
    Unhashable alphas disable caching for the cell (return ``None``).
    """
    key = (n, alpha, loss, members, exact)
    try:
        hash(key)
    except TypeError:
        return None
    return key


def universality_sweep(
    cases,
    *,
    exact: bool = False,
    tolerance: float = 1e-6,
    cache: dict | None = None,
) -> list[UniversalityRecord]:
    """Run the Theorem 1 check over ``(n, alpha, loss, side_info)`` cases.

    Repeated ``(n, alpha, loss, side_information)`` cells are deduped:
    the bespoke LP and the interaction LP each solve once per distinct
    cell, and the deployed geometric mechanism is shared per
    ``(n, alpha)`` via
    :func:`repro.core.geometric.cached_geometric_mechanism`.

    Parameters
    ----------
    cases:
        Iterable of ``(n, alpha, loss, side_information)`` tuples;
        ``side_information`` may be None or an iterable of results.
    exact:
        Use the exact simplex (slower; zero tolerance).
    tolerance:
        Gap tolerance in the float regime.
    cache:
        Optional dict reused across calls so successive sweeps over
        overlapping grids skip already-solved cells. Defaults to a fresh
        per-call cache.
    """
    records: list[UniversalityRecord] = []
    solved = {} if cache is None else cache
    for n, alpha, loss, side in cases:
        if not isinstance(loss, LossFunction):
            raise ValidationError("sweep cases must use LossFunction losses")
        members = tuple(
            range(n + 1) if side is None else sorted(int(i) for i in side)
        )
        key = _cell_key(n, alpha, loss, members, exact)
        if key is not None and key in solved:
            bespoke_loss, interaction_loss = solved[key]
        else:
            bespoke = optimal_mechanism(n, alpha, loss, side, exact=exact)
            deployed = cached_geometric_mechanism(
                n, alpha if exact else float(alpha)
            )
            interaction = optimal_interaction(
                deployed, loss, side, exact=exact
            )
            bespoke_loss = bespoke.loss
            interaction_loss = interaction.loss
            if key is not None:
                solved[key] = (bespoke_loss, interaction_loss)
        gap = bespoke_loss - interaction_loss
        holds = gap == 0 if exact else abs(float(gap)) <= tolerance
        records.append(
            UniversalityRecord(
                n=n,
                alpha=alpha,
                loss_name=loss.describe(),
                side_information=members,
                bespoke_loss=bespoke_loss,
                interaction_loss=interaction_loss,
                gap=gap,
                holds=holds,
            )
        )
    return records


def bayesian_universality_sweep(
    cases,
    *,
    exact: bool = False,
    tolerance: float = 1e-6,
    cache: dict | None = None,
) -> list[UniversalityRecord]:
    """GRS09 baseline: the same sweep for Bayesian consumers.

    ``cases`` are ``(n, alpha, loss, prior)`` tuples. For each, the
    prior-expected loss achieved by the Bayesian agent's deterministic
    remap of the geometric mechanism is compared against the GRS09
    bespoke LP optimum. Repeated cells are deduped as in
    :func:`universality_sweep` (the prior participates in the cell key).
    """
    records: list[UniversalityRecord] = []
    solved = {} if cache is None else cache
    for n, alpha, loss, prior in cases:
        agent = BayesianAgent(loss, prior, n=n)
        prior_key = tuple(np.asarray(prior).tolist())
        key = _cell_key(n, alpha, loss, prior_key, exact)
        if key is not None and key in solved:
            bespoke_loss, interaction_loss = solved[key]
        else:
            _, bespoke_loss = agent.bespoke_mechanism(alpha, exact=exact)
            deployed = cached_geometric_mechanism(
                n, alpha if exact else float(alpha)
            )
            interaction_loss = agent.best_interaction(deployed).loss
            if key is not None:
                solved[key] = (bespoke_loss, interaction_loss)
        gap = bespoke_loss - interaction_loss
        holds = gap == 0 if exact else abs(float(gap)) <= tolerance
        records.append(
            UniversalityRecord(
                n=n,
                alpha=alpha,
                loss_name=loss.describe(),
                side_information=tuple(range(n + 1)),
                bespoke_loss=bespoke_loss,
                interaction_loss=interaction_loss,
                gap=gap,
                holds=holds,
            )
        )
    return records
