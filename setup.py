"""Legacy setup shim (offline environments lack the `wheel` package)."""

from setuptools import setup

setup()
