"""Experiment TH1b — Theorem 1 part 2: simultaneous utility maximization.

Paper claim: for EVERY minimax consumer (monotone loss + side
information), optimally interacting with the deployed geometric
mechanism achieves exactly the optimum of the consumer's bespoke LP.

Regeneration: a grid of 45 exact consumer cells (5 losses x 3
side-information sets x 3 alphas at n = 3) plus 12 random monotone
losses; the gap must be exactly zero in every cell.
"""

from fractions import Fraction

import numpy as np
from _report import emit

from repro.analysis.fractions_fmt import format_value
from repro.analysis.sweeps import universality_sweep
from repro.losses import (
    AbsoluteLoss,
    CappedLoss,
    SquaredLoss,
    ThresholdLoss,
    ZeroOneLoss,
)
from repro.losses.random import random_monotone_loss

N = 3
LOSSES = [
    AbsoluteLoss(),
    SquaredLoss(),
    ZeroOneLoss(),
    CappedLoss(AbsoluteLoss(), 2),
    ThresholdLoss(1),
]
SIDES = [None, {0, 1}, {1, 2, 3}]
ALPHAS = [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]


def grid_cases():
    cases = [
        (N, alpha, loss, side)
        for alpha in ALPHAS
        for loss in LOSSES
        for side in SIDES
    ]
    for seed in range(12):
        cases.append(
            (
                N,
                Fraction(1, 2),
                random_monotone_loss(N, rng=np.random.default_rng(seed)),
                None,
            )
        )
    return cases


def run_sweep():
    return universality_sweep(grid_cases(), exact=True)


def test_theorem1_universality(benchmark):
    records = benchmark(run_sweep)

    assert len(records) == 57
    assert all(record.holds for record in records)
    assert all(record.gap == 0 for record in records)

    lines = [
        f"{str(r.alpha):>5}  {r.loss_name:<30.30} "
        f"S={str(set(r.side_information)):<14.14} "
        f"bespoke={format_value(r.bespoke_loss):>9} "
        f"interaction={format_value(r.interaction_loss):>9} gap=0"
        for r in records
    ]
    emit(
        "theorem1_universality",
        f"Theorem 1 sweep: {len(records)} exact consumers, every gap == 0\n"
        + "\n".join(lines),
    )
