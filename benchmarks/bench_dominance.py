"""Experiment X6 — full dominance over the alpha-DP polytope.

Theorem 1 quantifies over ALL alpha-DP mechanisms: no deployment can
serve any minimax consumer better than the geometric mechanism does
(after rational interaction on both sides). The bespoke-LP comparison of
TH1b already certifies this implicitly; this bench attacks it directly —
random *vertices* of the DP polytope (which include non-derivable
mechanisms, per Appendix B) are pitted against the geometric deployment
for random monotone consumers. The geometric side must never lose.
"""

from fractions import Fraction

import numpy as np
from _report import emit

from repro.core.geometric import GeometricMechanism
from repro.core.interaction import optimal_interaction
from repro.core.polytope import random_private_mechanism
from repro.losses import AbsoluteLoss, SquaredLoss
from repro.losses.random import random_monotone_loss

N = 3
ALPHA = Fraction(1, 2)
VERTICES = 10


def run_duel():
    g = GeometricMechanism(N, ALPHA)
    rows = []
    for seed in range(VERTICES):
        rng = np.random.default_rng(seed)
        rival = random_private_mechanism(N, ALPHA, rng)
        for loss in (
            AbsoluteLoss(),
            SquaredLoss(),
            random_monotone_loss(N, rng=rng),
        ):
            with_g = optimal_interaction(g, loss, exact=True).loss
            with_rival = optimal_interaction(rival, loss, exact=True).loss
            rows.append((seed, loss.describe(), with_g, with_rival))
    return rows


def test_geometric_dominates_polytope_vertices(benchmark):
    rows = benchmark(run_duel)

    assert len(rows) == VERTICES * 3
    for seed, loss_name, with_g, with_rival in rows:
        assert with_g <= with_rival, (seed, loss_name)
    strict_wins = sum(1 for *_, g, r in rows if g < r)
    assert strict_wins > 0  # generic vertices are strictly worse

    lines = [
        f"  vertex {seed} {loss_name:<26.26} "
        f"geometric={float(with_g):.4f}  rival={float(with_rival):.4f}  "
        f"{'tie' if with_g == with_rival else 'geometric wins'}"
        for seed, loss_name, with_g, with_rival in rows[:12]
    ]
    emit(
        "dominance",
        f"{VERTICES} random DP-polytope vertices x 3 losses at "
        f"alpha={ALPHA}, n={N}: geometric never loses "
        f"({strict_wins}/{len(rows)} strict wins)\n" + "\n".join(lines),
    )
