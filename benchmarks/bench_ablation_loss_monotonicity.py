"""Experiment X1 — ablation: why the monotone-loss assumption matters.

The paper's only assumption on preferences is that losses are monotone
in |i - r|. This ablation probes the boundary: random losses *inside*
the model never violate universality (Theorem 1), while random losses
*outside* the model (non-monotone) can — the bespoke LP then strictly
beats any post-processing of the geometric mechanism.
"""

from fractions import Fraction

import numpy as np
from _report import emit

from repro.core.geometric import GeometricMechanism
from repro.core.interaction import optimal_interaction
from repro.core.optimal import optimal_mechanism
from repro.losses.random import random_monotone_loss, random_nonmonotone_loss

N = 3
ALPHA = Fraction(1, 2)
DRAWS = 12


def gap_for(loss):
    bespoke = optimal_mechanism(N, ALPHA, loss, exact=True)
    interaction = optimal_interaction(
        GeometricMechanism(N, ALPHA), loss, exact=True
    )
    return interaction.loss - bespoke.loss  # >= 0 always


def run_ablation():
    inside, outside = [], []
    for seed in range(DRAWS):
        rng = np.random.default_rng(seed)
        inside.append(gap_for(random_monotone_loss(N, rng=rng)))
        outside.append(gap_for(random_nonmonotone_loss(N, rng=rng)))
    return inside, outside


def test_monotonicity_ablation(benchmark):
    inside, outside = benchmark(run_ablation)

    # Inside the model: Theorem 1 holds on every draw, exactly.
    assert all(gap == 0 for gap in inside)
    # Outside the model: at least one draw must break universality
    # (the geometric mechanism is NOT universal without monotonicity).
    violations = [gap for gap in outside if gap > 0]
    assert violations, "expected universality violations without monotonicity"

    emit(
        "ablation_loss_monotonicity",
        f"{DRAWS} random monotone losses:     all gaps == 0 (Theorem 1)\n"
        f"{DRAWS} random non-monotone losses: "
        f"{len(violations)} universality violations, e.g. gaps "
        + ", ".join(str(v) for v in violations[:4])
        + "\nconclusion: the monotone-in-|i-r| assumption is necessary, "
        "not cosmetic",
    )
