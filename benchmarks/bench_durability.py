"""Benchmark: durable privacy budgets under serving load.

PR 8 adds the crash-safe :class:`repro.release.durable_ledger.DurableLedger`:
every charge is appended to a checksummed write-ahead log and made
durable *before* the response is released, so budgets survive crashes
and restarts instead of silently refilling. Durability has a price —
this benchmark measures it and pins the floor:

* ``durable_qps`` — end-to-end in-process serving throughput with the
  WAL in each fsync mode, against the in-memory baseline:

  - ``memory``   — no ledger directory (PR 7 behavior, the baseline);
  - ``off``      — journaled, never fsync'd (page-cache durability);
  - ``group``    — group commit: one fsync per micro-batch flush,
    *before* any response of the batch is released (the serving
    default, and the mode the ``>= 5e3 req/s`` floor is enforced on);
  - ``always``   — one fsync per charge (standalone-safe default; the
    per-charge fsync caps throughput near 1/fsync-latency).

* p50/p99 publish latency per mode (the fsync-on-vs-off-vs-group
  latency comparison, satellite of the durability PR);
* ``recovery`` — after a loaded run the ledger directory is reopened
  cold and verified: every acknowledged 200 has its exact charge in the
  recovered state (no admitted charge lost), and the journal passes the
  read-only integrity check.

Standalone: ``PYTHONPATH=src:benchmarks python benchmarks/bench_durability.py``
(``--quick`` for a CI smoke run; ``--check`` enforces the durable
group-commit floor — **>= 5e3 batched requests/sec** — in quick mode
too, plus the recovery assertions). Emits a ``BENCH {json}`` line and
writes ``benchmarks/out/BENCH_durability.json``.
"""

import argparse
import asyncio
import itertools
import sys
import tempfile
import time
from fractions import Fraction
from pathlib import Path

import numpy as np

from _report import emit, emit_bench

from repro.release.artifacts import ArtifactSpec, ArtifactStore
from repro.release.durable_ledger import DurableLedger, verify_ledger_dir
from repro.serving import InProcessClient, MechanismServer

#: Acceptance floor (enforced by ``--check`` even in quick mode): the
#: group-commit durable serving path must sustain this request rate.
DURABLE_QPS_FLOOR = 5e3

#: The deployment mix (mixed n and alpha: every flush is a fused
#: heterogeneous gather AND a multi-user group commit).
DEPLOYMENTS = [
    (8, Fraction(1, 2)),
    (40, Fraction(1, 4)),
    (100, Fraction(2, 3)),
]


def build_store(path) -> ArtifactStore:
    store = ArtifactStore(path)
    for n, alpha in DEPLOYMENTS:
        store.get_or_compile(ArtifactSpec("geometric", n, alpha))
    return store


async def drive(server, *, requests, users, concurrency):
    client = InProcessClient(server)
    latencies = np.zeros(requests)
    statuses: dict[int, int] = {}
    counter = itertools.count()
    mix = [(n, str(alpha), n // 2) for n, alpha in DEPLOYMENTS]

    async def worker():
        while True:
            i = next(counter)
            if i >= requests:
                return
            n, alpha, row = mix[i % len(mix)]
            begin = time.perf_counter()
            status, _ = await client.publish(
                user=f"u{i % users}", n=n, alpha=alpha, true_result=row
            )
            latencies[i] = time.perf_counter() - begin
            statuses[status] = statuses.get(status, 0) + 1

    start = time.perf_counter()
    await asyncio.gather(*[worker() for _ in range(concurrency)])
    wall = time.perf_counter() - start
    return wall, latencies, statuses


def bench_mode(store, mode, *, requests, users, concurrency, tmp):
    """One loaded run in one budget-backend mode; all requests must 200."""
    kwargs = {}
    ledger_dir = None
    if mode != "memory":
        ledger_dir = Path(tmp) / f"ledger-{mode}"
        kwargs = {"ledger_dir": ledger_dir, "ledger_fsync": mode}
    server = MechanismServer(
        store,
        batch_window=0.001,
        audit_rate=0.0,
        seed=23,
        **kwargs,
    )
    server.load_store()
    wall, latencies, statuses = asyncio.run(
        drive(server, requests=requests, users=users, concurrency=concurrency)
    )
    assert statuses == {200: requests}, f"unexpected statuses: {statuses}"
    asyncio.run(server.stop())
    result = {
        "mode": mode,
        "requests": requests,
        "simulated_users": users,
        "concurrency": concurrency,
        "wall_seconds": wall,
        "qps": requests / wall,
        "latency_p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "latency_p99_ms": float(np.percentile(latencies, 99)) * 1e3,
    }
    if ledger_dir is not None:
        result["ledger_dir"] = str(ledger_dir)
    return result


def check_recovery(store, *, requests, users, concurrency, tmp):
    """Cold-reopen the group-commit ledger: no admitted charge lost."""
    ledger_dir = Path(tmp) / "ledger-recovery"
    server = MechanismServer(
        store,
        batch_window=0.001,
        audit_rate=0.0,
        seed=29,
        ledger_dir=ledger_dir,
        ledger_fsync="group",
    )
    server.load_store()
    _wall, _lat, statuses = asyncio.run(
        drive(server, requests=requests, users=users, concurrency=concurrency)
    )
    acked = statuses.get(200, 0)
    assert acked == requests
    asyncio.run(server.stop())  # graceful: final group commit + close

    report = verify_ledger_dir(ledger_dir)
    assert report["ok"], f"ledger failed integrity check: {report['failures']}"
    recovered = DurableLedger(ledger_dir)
    releases = sum(
        recovered.view(user).releases for user in list(recovered._books)
    )
    assert releases == acked, (
        f"recovered {releases} charges but {acked} responses were "
        "acknowledged — an admitted charge was lost"
    )
    # spot-check exactness: one user's cumulative is the literal product
    user = next(iter(recovered._books))
    budget = recovered.view(user)
    assert budget.cumulative_alpha == Fraction(
        budget.cumulative_alpha
    )  # exact Fraction, not float
    recovered.close()
    return {
        "requests": requests,
        "acknowledged": acked,
        "recovered_releases": releases,
        "recovered_users": report["users"],
        "journal_records": report["records"],
        "snapshot_seq": report["snapshot_seq"],
        "integrity_ok": True,
        "admitted_charge_lost": False,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small load for a CI smoke run"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when the durable group-commit floor "
        "(>= 5e3 requests/sec) is missed — enforced in quick mode too",
    )
    args = parser.parse_args(argv)

    if args.quick:
        requests, users, concurrency = 10_000, 5_000, 1024
        always_requests = 1_500
    else:
        requests, users, concurrency = 120_000, 50_000, 2048
        always_requests = 8_000

    with tempfile.TemporaryDirectory(prefix="bench-durability-") as tmp:
        store = build_store(Path(tmp) / "artifacts")
        modes = []
        for mode in ("memory", "off", "group"):
            modes.append(
                bench_mode(
                    store, mode,
                    requests=requests, users=users,
                    concurrency=concurrency, tmp=tmp,
                )
            )
        # fsync-per-charge is fsync-latency-bound; smaller load, same
        # statistics.
        modes.append(
            bench_mode(
                store, "always",
                requests=always_requests, users=users,
                concurrency=concurrency, tmp=tmp,
            )
        )
        recovery = check_recovery(
            store,
            requests=requests // 2, users=users,
            concurrency=concurrency, tmp=tmp,
        )

    by_mode = {row["mode"]: row for row in modes}
    results = {
        "quick": args.quick,
        "deployments": [
            {"n": n, "alpha": str(alpha)} for n, alpha in DEPLOYMENTS
        ],
        "modes": modes,
        "recovery": recovery,
        "targets": {"durable_group_qps": DURABLE_QPS_FLOOR},
    }

    lines = ["durable privacy budgets under serving load:"]
    for row in modes:
        lines.append(
            "  {mode:>7}: {qps:10.0f} req/s  p50={latency_p50_ms:6.2f}ms "
            "p99={latency_p99_ms:6.2f}ms  ({requests:,} requests)"
            .format(**row)
        )
    lines.append(
        "  durability cost (group vs memory): {cost:.1f}%".format(
            cost=100.0
            * (1 - by_mode["group"]["qps"] / by_mode["memory"]["qps"])
        )
    )
    lines.append(
        "  recovery: {recovered_releases:,}/{acknowledged:,} acknowledged "
        "charges recovered exactly ({recovered_users} users, "
        "{journal_records} journal records; integrity OK)".format(**recovery)
    )
    emit("durability", "\n".join(lines))
    emit_bench("durability", results)

    if args.check:
        group_qps = by_mode["group"]["qps"]
        if group_qps < DURABLE_QPS_FLOOR:
            print(
                f"durability target missed: group-commit qps "
                f"{group_qps:.0f}/s < {DURABLE_QPS_FLOOR:.0e}/s"
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
