"""Experiment X4 — the privacy-utility frontier and the value of rationality.

Section 2.1 of the paper frames alpha in [0, 1] as a privacy dial; this
bench regenerates the resulting frontier for three consumers (optimal
minimax loss versus alpha — non-decreasing, pinned at 0 when alpha -> 0)
and quantifies what the paper's rational-interaction model buys over
taking the geometric output at face value, per side-information set.
"""

from fractions import Fraction

from _report import emit

from repro.analysis.fractions_fmt import format_value
from repro.analysis.tradeoff import tradeoff_curve, value_of_rationality
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss

N = 3
ALPHAS = [Fraction(k, 10) for k in (1, 3, 5, 7, 9)]
LOSSES = [AbsoluteLoss(), SquaredLoss(), ZeroOneLoss()]


def build_frontiers():
    return {
        loss.describe(): tradeoff_curve(N, ALPHAS, loss) for loss in LOSSES
    }


def test_tradeoff_frontier(benchmark):
    frontiers = benchmark(build_frontiers)

    lines = ["  alpha   " + "  ".join(f"{l.describe():>22.22}" for l in LOSSES)]
    for index, alpha in enumerate(ALPHAS):
        cells = []
        for loss in LOSSES:
            points = frontiers[loss.describe()]
            cells.append(f"{format_value(points[index].optimal_loss):>22}")
        lines.append(f"  {str(alpha):>5}   " + "  ".join(cells))

    for name, points in frontiers.items():
        losses = [p.optimal_loss for p in points]
        assert losses == sorted(losses), name  # privacy costs utility

    emit(
        "tradeoff_curve",
        f"privacy-utility frontier at n={N} "
        "(optimal minimax loss; non-decreasing in alpha):\n"
        + "\n".join(lines),
    )


def test_value_of_rationality(benchmark):
    side_infos = {"none": None, ">=2": {2, 3}, "exact-ish": {1, 2}}

    def compute():
        return {
            label: value_of_rationality(
                N, Fraction(1, 2), AbsoluteLoss(), side
            )
            for label, side in side_infos.items()
        }

    records = benchmark(compute)

    assert records["none"].improvement >= 0
    assert records[">=2"].improvement > 0  # side info makes it pay

    lines = [
        f"  S={label:<10} face-value={format_value(r.face_value_loss):>8} "
        f"rational={format_value(r.rational_loss):>8} "
        f"improvement={format_value(r.improvement)}"
        for label, r in records.items()
    ]
    emit(
        "value_of_rationality",
        "what rational interaction buys (alpha=1/2, loss=|i-r|):\n"
        + "\n".join(lines),
    )
