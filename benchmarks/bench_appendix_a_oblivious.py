"""Experiment A1 — Appendix A: obliviousness is without loss of generality.

Paper claim (Lemma 6): averaging a non-oblivious alpha-DP mechanism over
equal-count databases yields an oblivious mechanism that is still
alpha-DP and no lossier for any minimax consumer.

Regenerated on the explicit bit-row domain: random non-oblivious DP
mechanisms are averaged; privacy and the loss inequality are checked for
several losses on every draw.
"""

import numpy as np
from _report import emit

from repro.core.oblivious import random_nonoblivious_mechanism
from repro.core.privacy import is_differentially_private
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss

N = 3
ALPHA = 0.5
DRAWS = 8
LOSSES = [AbsoluteLoss(), SquaredLoss(), ZeroOneLoss()]


def sweep():
    rows = []
    for seed in range(DRAWS):
        mechanism = random_nonoblivious_mechanism(
            N, ALPHA, np.random.default_rng(seed)
        )
        averaged = mechanism.obliviate()
        private = is_differentially_private(averaged, ALPHA, atol=1e-12)
        losses = []
        for loss in LOSSES:
            before = float(mechanism.worst_case_loss(loss))
            after = float(averaged.worst_case_loss(loss))
            losses.append((loss.describe(), before, after))
        rows.append((seed, mechanism.is_oblivious(), private, losses))
    return rows


def test_appendix_a_reduction(benchmark):
    rows = benchmark(sweep)

    for seed, was_oblivious, private, losses in rows:
        assert not was_oblivious  # genuinely non-oblivious inputs
        assert private  # Lemma 6: privacy preserved
        for _, before, after in losses:
            assert after <= before + 1e-12  # Lemma 6: loss not increased

    lines = []
    for seed, _, _, losses in rows:
        for name, before, after in losses:
            lines.append(
                f"  draw {seed} {name:<24.24} "
                f"non-oblivious={before:.4f}  averaged={after:.4f}  "
                f"delta={after - before:+.4f}"
            )
    emit(
        "appendix_a_oblivious",
        f"Lemma 6 on {DRAWS} random non-oblivious 1/2-DP mechanisms "
        f"(n={N}, 2^{N} databases):\n" + "\n".join(lines),
    )
