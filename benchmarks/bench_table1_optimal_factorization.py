"""Experiment T1 — Table 1: optimal mechanism = geometric x interaction.

Paper artifact: for the consumer with loss |i-r|, S = {0..3}, n = 3,
alpha = 1/4, Table 1 prints (a) the optimal mechanism, (b) G_{3,1/4},
and (c) the consumer-interaction matrix.

Regeneration: exact LP solves for (a) and (c); (b) from Definition 4.
Shape requirements:

* (b) matches the paper's printed entries exactly (after the display
  scaling (1+a)/(1-a) the paper omits);
* (a) = (b) @ (c') exactly for our measured interaction (c');
* the universality gap (Theorem 1) is exactly zero;
* the paper's printed (c) is a rounding of the optimum: same support,
  loss within 0.5% of optimal.
"""

import numpy as np
from _report import emit

from repro.analysis.report import render_table1
from repro.analysis.tables import (
    PAPER_TABLE1_B,
    PAPER_TABLE1_C,
    reproduce_table1,
)


def test_table1_reproduction(benchmark):
    repro = benchmark(reproduce_table1)

    assert (repro.geometric_paper_scaled == PAPER_TABLE1_B).all()
    assert repro.universality_gap == 0
    product = np.dot(repro.geometric.matrix, repro.interaction_kernel)
    assert (product == repro.induced.matrix).all()
    assert repro.interaction_loss == repro.optimal_loss
    for i in range(4):
        for j in range(4):
            assert (repro.interaction_kernel[i, j] == 0) == (
                PAPER_TABLE1_C[i, j] == 0
            )
    assert 1 <= float(repro.paper_kernel_loss / repro.optimal_loss) < 1.005

    emit("table1_optimal_factorization", render_table1(repro))
