"""Experiment L3 — Lemma 3: privacy can be added, never removed.

Paper claim: for alpha <= beta, T_{alpha,beta} = G_alpha^{-1} G_beta is
a stochastic matrix (so G_beta is derivable from G_alpha); for
alpha > beta the factor has negative entries. Regenerated over a grid
of ordered pairs, exactly, plus the transitivity of the kernels
(Algorithm 1's chaining identity).
"""

from fractions import Fraction

import numpy as np
from _report import emit

from repro.core.derivability import (
    check_derivability,
    privacy_chain_kernel,
)
from repro.core.geometric import GeometricMechanism
from repro.linalg.stochastic import is_row_stochastic

N = 3
GRID = [Fraction(k, 10) for k in range(1, 10)]


def sweep():
    forward_ok = 0
    backward_rejected = 0
    pairs = 0
    for a in GRID:
        for b in GRID:
            if a == b:
                continue
            pairs += 1
            if a < b:
                kernel = privacy_chain_kernel(N, a, b)
                product = np.dot(GeometricMechanism(N, a).matrix, kernel)
                identity = (
                    product == GeometricMechanism(N, b).matrix
                ).all()
                forward_ok += is_row_stochastic(kernel) and identity
            else:
                report = check_derivability(
                    GeometricMechanism(N, b), a
                )
                backward_rejected += not report.derivable
    return pairs, forward_ok, backward_rejected


def test_lemma3_chain(benchmark):
    pairs, forward_ok, backward_rejected = benchmark(sweep)

    assert pairs == 72
    assert forward_ok == 36  # every a < b pair succeeds
    assert backward_rejected == 36  # every a > b pair is refused

    # Transitivity: T_{a,b} T_{b,c} == T_{a,c}.
    a, b, c = Fraction(1, 5), Fraction(2, 5), Fraction(7, 10)
    composed = np.dot(
        privacy_chain_kernel(N, a, b), privacy_chain_kernel(N, b, c)
    )
    assert (composed == privacy_chain_kernel(N, a, c)).all()

    emit(
        "lemma3_privacy_chain",
        f"ordered pairs over alpha grid {[str(g) for g in GRID]} (n={N}):\n"
        f"  a < b: kernel stochastic and G_a @ T == G_b for "
        f"{forward_ok}/36 pairs\n"
        f"  a > b: derivation correctly refused for "
        f"{backward_rejected}/36 pairs\n"
        "  transitivity T_ab T_bc == T_ac: exact",
    )
