"""Benchmark: telemetry overhead on the batched serving hot path.

PR 9 threads :mod:`repro.obs` through the serving stack — Prometheus
metrics, sampled end-to-end request traces, and budget burn-rate
gauges. Observability that slows the thing it observes gets turned
off, so this benchmark puts a hard ceiling on the cost:

* ``overhead_fraction`` — extra per-request CPU cost of the *default*
  telemetry configuration (metrics + burn gauges; tracing off, as
  shipped) versus ``telemetry=False`` on the micro-batched in-process
  serving path: warmed-up, interleaved rounds of the same load with
  mode order rotated each round; the overhead is the smaller of two
  noise-conservative estimators of the per-request ``process_time``
  delta (per-mode minima, paired per-round median — see
  :func:`bench_overhead`) over the best telemetry-off run. ``--check``
  fails above :data:`OVERHEAD_CEILING` (**5%**).
* ``traced_overhead_fraction`` — the same comparison with 1% trace
  sampling to a JSONL sink on top (the opt-in ``--trace-rate 0.01``
  configuration). Sampled tracing buys span records with real CPU, so
  it carries its own ceiling, :data:`TRACED_OVERHEAD_CEILING`
  (**15%**).
* ``p99_agreement`` — the log-bucketed histogram's p99 versus the
  exact sorted-array p99 of the same latency samples. The histogram
  reports a bucket upper bound, so the ratio must land in
  ``[1, LATENCY_BUCKET_GROWTH]`` (asserted).
* trace completeness — a traced publish through a durable group-commit
  ledger yields **one** trace ID whose spans cover
  ``server.publish`` → ``ledger.charge`` → ``wal.append`` →
  ``wal.fsync`` → ``batch.flush`` → ``sampler.gather`` (asserted); a
  sample of those spans is archived to
  ``benchmarks/out/trace_sample.jsonl`` for the CI artifact.
* scrape sanity — the Prometheus exposition from the loaded server
  parses: every expected family present, histogram buckets cumulative.

Standalone:
``PYTHONPATH=src:benchmarks python benchmarks/bench_observability.py``
(``--quick`` for CI; ``--check`` enforces the overhead ceiling and the
assertions above). Emits ``BENCH {json}`` and writes
``benchmarks/out/BENCH_observability.json``.
"""

import argparse
import asyncio
import gc
import itertools
import sys
import tempfile
import time
from fractions import Fraction

import numpy as np

from _report import OUT_DIR, emit, emit_bench

from repro.obs.metrics import LATENCY_BUCKET_GROWTH
from repro.release.artifacts import ArtifactSpec, ArtifactStore
from repro.serving import InProcessClient, MechanismServer

#: ``--check`` fails when default telemetry (metrics, tracing off)
#: costs more than this fraction of telemetry-off CPU on the batched
#: serving path.
OVERHEAD_CEILING = 0.05

#: Ceiling for the opt-in 1%-sampled-tracing configuration (metrics +
#: ``--trace-rate 0.01`` + JSONL sink): each traced request pays for
#: span records plus its share of the batch-broadcast spans, so the
#: budget is looser than the always-on default — ~+10% measured on a
#: quiet host; the ceiling leaves noise headroom while still tripping
#: on gross regressions (e.g. per-record serialization on the emit
#: path, which this benchmark caught during development).
TRACED_OVERHEAD_CEILING = 0.15

DEPLOYMENTS = [
    (8, Fraction(1, 2)),
    (40, Fraction(1, 4)),
    (100, Fraction(2, 3)),
]

#: Span names one traced publish must cover on a durable server.
EXPECTED_SPANS = {
    "server.publish",
    "ledger.charge",
    "wal.append",
    "wal.fsync",
    "batch.flush",
    "sampler.gather",
}


def build_store(path) -> ArtifactStore:
    store = ArtifactStore(path)
    for n, alpha in DEPLOYMENTS:
        store.get_or_compile(ArtifactSpec("geometric", n, alpha))
    return store


async def drive(server, *, requests, users, concurrency, warmup=0):
    client = InProcessClient(server)
    mix = [(n, str(alpha), n // 2) for n, alpha in DEPLOYMENTS]
    statuses: dict[int, int] = {}

    async def load(count, record):
        counter = itertools.count()

        async def worker():
            while True:
                i = next(counter)
                if i >= count:
                    return
                n, alpha, row = mix[i % len(mix)]
                status, _ = await client.publish(
                    user=f"u{i % users}", n=n, alpha=alpha, true_result=row
                )
                if record:
                    statuses[status] = statuses.get(status, 0) + 1

        await asyncio.gather(*[worker() for _ in range(concurrency)])

    if warmup:
        # Untimed pre-load on this exact server: warms the adaptive
        # interpreter's caches for the mode-specific code paths so the
        # measured section does not pay first-iterations costs.
        await load(warmup, False)
    # Cyclic GC fires by allocation count, so *when* it lands inside
    # the measured window is luck — and each pass scans the ~concurrency
    # parked tasks, which swamps a few-percent effect. Park it for the
    # bounded measured load; refcounting still reclaims acyclic garbage.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        cpu_start = time.process_time()
        await load(requests, True)
        cpu = time.process_time() - cpu_start
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    return wall, cpu, statuses


#: Overhead-run configurations, measured against each other:
#: ``off`` disables telemetry entirely; ``metrics`` is the shipped
#: default (metrics + burn gauges, tracing off); ``traced`` adds the
#: opt-in 1% trace sampling to a JSONL sink.
MODES = ("off", "metrics", "traced")


def one_run(store, *, mode, trace_dir, requests, users, concurrency):
    """One load run; returns ``(qps, cpu_us_per_request)``.

    The measured path is the production serving shape: a durable
    group-commit ledger (fresh WAL per run) under the micro-batcher, so
    every mode pays for real charge journaling and the traced mode
    exercises the full span vocabulary including ``wal.append`` /
    ``wal.fsync``. Asserts every request succeeded. The CPU figure
    (``time.process_time`` over the drive) is what the overhead check
    compares: telemetry cost is CPU work, and process CPU time is
    robust to the tens-of-percent wall-clock swings a noisy shared
    host injects into back-to-back runs.
    """
    with tempfile.TemporaryDirectory(prefix="bench-obs-wal-") as ledger:
        kwargs = dict(
            ledger_dir=ledger, ledger_fsync="group",
            batch_window=0.001, audit_rate=0.0, seed=23,
        )
        if mode == "off":
            kwargs.update(telemetry=False)
        elif mode == "traced":
            kwargs.update(
                trace_rate=0.01, trace_dir=trace_dir, trace_seed=7
            )
        server = MechanismServer(store, **kwargs)
        server.load_store()
        warmup = max(1000, requests // 10)
        gc.collect()  # start every run from the same heap state
        wall, cpu, statuses = asyncio.run(
            drive(
                server, requests=requests, users=users,
                concurrency=concurrency, warmup=warmup,
            )
        )
        assert statuses == {200: requests}, (
            f"unexpected statuses: {statuses}"
        )
        if mode != "off":
            snapshot = server.telemetry.registry.snapshot()
            published = sum(
                value
                for labels, value in snapshot["repro_requests_total"][
                    "series"
                ].items()
                if labels.startswith("publish,")
            )
            assert published == requests + warmup
            server.telemetry.close()
    return requests / wall, cpu / requests * 1e6


def bench_overhead(store, *, requests, users, concurrency, rounds):
    """Interleaved off/metrics/traced rounds; overhead per-request CPU.

    A discarded warmup run absorbs cold-start effects (allocator and
    code-path warmup), and rotating which mode goes first each round
    cancels the monotone drift a busy host shows across back-to-back
    runs. Contention noise is one-sided — a co-tenant can only *add*
    CPU to a run — so any single estimator is biased upward by noise,
    and the check uses the smaller of two independently conservative
    ones:

    * *floor*: ``min(mode) - min(off)`` over all rounds — exact when
      each mode lands at least one quiet window, but one lucky-low
      baseline (or a busy stretch that denies the instrumented mode a
      quiet slot) can manufacture phantom overhead;
    * *paired median*: the three modes of one round run back-to-back
      in the same time window, so their per-round delta cancels
      cross-round drift; the median over rounds discards rounds where
      a tenant landed mid-run, but keeps the one-sided skew of
      within-round noise.

    A real regression inflates every instrumented run and therefore
    *both* estimators; taking their minimum only sheds noise bias. The
    delta is normalized by the best telemetry-off run.
    """
    runs: dict[str, list] = {mode: [] for mode in MODES}
    with tempfile.TemporaryDirectory(prefix="bench-obs-trace-") as traces:
        one_run(  # warmup, discarded
            store, mode="off", trace_dir=None,
            requests=requests, users=users, concurrency=concurrency,
        )
        for round_index in range(rounds):
            offset = round_index % len(MODES)
            order = MODES[offset:] + MODES[:offset]
            for mode in order:
                result = one_run(
                    store,
                    mode=mode,
                    trace_dir=traces if mode == "traced" else None,
                    requests=requests,
                    users=users,
                    concurrency=concurrency,
                )
                runs[mode].append(result)
    best = {mode: min(cpu for _, cpu in runs[mode]) for mode in MODES}
    cpu = {mode: [c for _, c in runs[mode]] for mode in MODES}

    def overhead(mode: str) -> float:
        deltas = sorted(
            on - off for on, off in zip(cpu[mode], cpu["off"])
        )
        mid = len(deltas) // 2
        median = (
            deltas[mid]
            if len(deltas) % 2
            else (deltas[mid - 1] + deltas[mid]) / 2.0
        )
        floor = best[mode] - best["off"]
        return min(median, floor) / best["off"]

    report = {
        "requests": requests,
        "simulated_users": users,
        "concurrency": concurrency,
        "rounds": rounds,
        "overhead_fraction": overhead("metrics"),
        "traced_overhead_fraction": overhead("traced"),
    }
    for mode in MODES:
        report[f"qps_{mode}"] = max(qps for qps, _ in runs[mode])
        report[f"cpu_us_{mode}"] = best[mode]
        report[f"cpu_us_{mode}_runs"] = [cpu for _, cpu in runs[mode]]
    return report


def bench_p99_agreement(store, *, requests, concurrency):
    """Histogram p99 vs exact sorted p99 of the same latency samples."""
    server = MechanismServer(
        store, batch_window=0.001, audit_rate=0.0, seed=29
    )
    server.load_store()
    client = InProcessClient(server)
    latencies = np.zeros(requests)
    counter = itertools.count()

    async def worker():
        while True:
            i = next(counter)
            if i >= requests:
                return
            begin = time.perf_counter()
            status, _ = await client.publish(
                user=f"p{i}", n=8, alpha="1/2", true_result=3
            )
            latencies[i] = time.perf_counter() - begin
            assert status == 200

    async def go():
        await asyncio.gather(*[worker() for _ in range(concurrency)])

    asyncio.run(go())
    # The per-deployment latency histogram observed the same requests
    # from inside the server (server-side clock, so compare shapes, not
    # identical samples: both measure the same publish round-trips).
    # Snapshot first: it runs the collectors, folding any deferred
    # latency samples into the histogram children.
    server.telemetry.registry.snapshot()
    family = server.telemetry.publish_latency
    ((_, child),) = [
        (labels, child)
        for labels, child in family.children()
        if child.count == requests
    ]
    hist_p99 = child.quantile(0.99)
    hist_p50 = child.quantile(0.5)
    exact_p99 = float(np.percentile(np.sort(latencies), 99))
    ratio = hist_p99 / exact_p99
    # The histogram reports the bucket's upper bound of its own
    # server-side samples; client-observed latency is >= server-side, so
    # allow one bucket of slack on both sides of the growth factor.
    assert ratio <= LATENCY_BUCKET_GROWTH * LATENCY_BUCKET_GROWTH, (
        f"histogram p99 {hist_p99:.6f}s vs exact {exact_p99:.6f}s: "
        f"ratio {ratio:.2f} above one-bucket guarantee"
    )
    assert ratio >= 1.0 / (LATENCY_BUCKET_GROWTH * LATENCY_BUCKET_GROWTH)
    return {
        "requests": requests,
        "hist_p50_ms": hist_p50 * 1e3,
        "hist_p99_ms": hist_p99 * 1e3,
        "exact_p99_ms": exact_p99 * 1e3,
        "p99_agreement_ratio": ratio,
        "bucket_growth": LATENCY_BUCKET_GROWTH,
    }


def check_trace_completeness(store, *, requests):
    """Every traced publish carries one trace covering charge→sample."""
    with tempfile.TemporaryDirectory(prefix="bench-obs-ledger-") as ledger:
        server = MechanismServer(
            store,
            ledger_dir=ledger,
            ledger_fsync="group",
            batch_window=0.001,
            audit_rate=0.0,
            seed=31,
            trace_rate=1.0,
            trace_seed=3,
        )
        server.load_store()
        client = InProcessClient(server)

        async def go():
            results = await asyncio.gather(*[
                client.publish(
                    user=f"t{i}", n=8, alpha="1/2", true_result=3
                )
                for i in range(requests)
            ])
            await server.stop()
            return results

        results = asyncio.run(go())
        tracer = server.telemetry.tracer
        spans_by_trace: dict[str, set] = {}
        records = tracer.recent(tracer.emitted)
        for record in records:
            spans_by_trace.setdefault(record["trace"], set()).add(
                record["name"]
            )
        complete = 0
        for status, body in results:
            assert status == 200
            names = spans_by_trace.get(body["trace"], set())
            assert EXPECTED_SPANS <= names, (
                f"trace {body['trace']} missing spans: "
                f"{EXPECTED_SPANS - names}"
            )
            complete += 1
        # Archive a sample of real spans for the CI artifact.
        OUT_DIR.mkdir(exist_ok=True)
        import json

        sample_trace = results[0][1]["trace"]
        with open(OUT_DIR / "trace_sample.jsonl", "w") as handle:
            for record in reversed(records):
                if record["trace"] == sample_trace:
                    handle.write(
                        json.dumps(record, default=str) + "\n"
                    )
        return {
            "requests": requests,
            "traced": complete,
            "spans_per_trace": sorted(
                spans_by_trace[sample_trace]
            ),
            "sample": "benchmarks/out/trace_sample.jsonl",
        }


def check_scrape(store):
    """The Prometheus exposition parses and carries the key families."""
    server = MechanismServer(
        store, batch_window=0.001, audit_rate=0.0, seed=37
    )
    server.load_store()
    client = InProcessClient(server)

    async def go():
        await client.publish(user="s", n=8, alpha="1/2", true_result=3)
        result = await server.handle_request(
            "GET", "/metrics?format=prometheus"
        )
        await server.stop()
        return result

    status, body = asyncio.run(go())
    assert status == 200
    text = body["__raw__"]
    for family in (
        "repro_requests_total",
        "repro_publish_latency_seconds",
        "repro_ledger_charges_total",
        "repro_batch_flushes_total",
    ):
        assert f"# TYPE {family}" in text, f"missing family {family}"
    # Cumulative bucket counts are monotone within each series.
    counts = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("repro_publish_latency_seconds_bucket")
    ]
    assert counts == sorted(counts)
    return {
        "exposition_lines": len(text.splitlines()),
        "families": text.count("# TYPE "),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small load for a CI smoke run"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when telemetry overhead exceeds "
        f"{OVERHEAD_CEILING:.0%} of telemetry-off throughput",
    )
    args = parser.parse_args(argv)

    if args.quick:
        # Many small interleaved rounds beat few large ones: both
        # overhead estimators (per-mode floor, paired per-round
        # median) sharpen with more alternations — more chances at a
        # quiet window, more noisy rounds for the median to discard.
        requests, users, concurrency, rounds = 8_000, 10_000, 1024, 12
        trace_requests = 64
    else:
        requests, users, concurrency, rounds = 30_000, 10_000, 2048, 12
        trace_requests = 256

    with tempfile.TemporaryDirectory(prefix="bench-obs-") as tmp:
        store = build_store(tmp)
        overhead = bench_overhead(
            store,
            requests=requests,
            users=users,
            concurrency=concurrency,
            rounds=rounds,
        )
        agreement = bench_p99_agreement(
            store, requests=min(requests, 30_000), concurrency=concurrency
        )
        traces = check_trace_completeness(store, requests=trace_requests)
        scrape = check_scrape(store)

    results = {
        "quick": args.quick,
        "deployments": [
            {"n": n, "alpha": str(alpha)} for n, alpha in DEPLOYMENTS
        ],
        "overhead": overhead,
        "p99_agreement": agreement,
        "trace_completeness": traces,
        "scrape": scrape,
        "targets": {
            "overhead_ceiling": OVERHEAD_CEILING,
            "traced_overhead_ceiling": TRACED_OVERHEAD_CEILING,
        },
    }

    lines = ["telemetry overhead on the batched serving path:"]
    lines.append(
        "  off: {cpu_us_off:.2f}us/req cpu ({qps_off:.0f} req/s)   "
        "metrics (default): {cpu_us_metrics:.2f}us/req "
        "({overhead_fraction:+.1%}, ceiling {ceiling:.0%})   "
        "+1% traces: {cpu_us_traced:.2f}us/req "
        "({traced_overhead_fraction:+.1%}, ceiling "
        "{traced_ceiling:.0%})".format(
            ceiling=OVERHEAD_CEILING,
            traced_ceiling=TRACED_OVERHEAD_CEILING,
            **overhead,
        )
    )
    lines.append(
        "  latency histogram: p50={hist_p50_ms:.2f}ms "
        "p99={hist_p99_ms:.2f}ms vs exact p99={exact_p99_ms:.2f}ms "
        "(ratio {p99_agreement_ratio:.2f}, bucket growth "
        "{bucket_growth:.0f}x)".format(**agreement)
    )
    lines.append(
        "  traces: {traced}/{requests} publishes each carried one "
        "trace covering {spans}".format(
            spans=", ".join(traces["spans_per_trace"]), **traces
        )
    )
    lines.append(
        "  scrape: {families} families, {exposition_lines} exposition "
        "lines, buckets monotone (asserted)".format(**scrape)
    )
    emit("observability", "\n".join(lines))
    emit_bench("observability", results)

    if args.check:
        failures = []
        if overhead["overhead_fraction"] > OVERHEAD_CEILING:
            failures.append(
                "default telemetry overhead "
                f"{overhead['overhead_fraction']:.1%} > "
                f"{OVERHEAD_CEILING:.0%}"
            )
        if overhead["traced_overhead_fraction"] > TRACED_OVERHEAD_CEILING:
            failures.append(
                "1%-traced telemetry overhead "
                f"{overhead['traced_overhead_fraction']:.1%} > "
                f"{TRACED_OVERHEAD_CEILING:.0%}"
            )
        if failures:
            print(
                "observability target missed: " + "; ".join(failures)
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
