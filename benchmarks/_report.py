"""Shared reporting helpers for the benchmark suite.

Each benchmark regenerates one of the paper's artifacts and calls
:func:`emit` with the rows/series the paper reports; the text is printed
(visible with ``pytest -s``) and archived under ``benchmarks/out/`` so
EXPERIMENTS.md can reference stable files.

Perf benchmarks additionally call :func:`emit_bench` with their
machine-readable results: the dict is printed as the grep-able
``BENCH {json}`` line dashboards already consume *and* written to
``benchmarks/out/BENCH_<name>.json``, which CI uploads as an artifact —
so the speedup trajectory is preserved per run instead of living only
in scrollback.
"""

from __future__ import annotations

import json
import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a reproduction report and archive it to benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def emit_bench(name: str, results: dict) -> None:
    """Print the ``BENCH`` line and archive BENCH_<name>.json."""
    OUT_DIR.mkdir(exist_ok=True)
    payload = json.dumps(results)
    print("BENCH " + payload)
    (OUT_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )
