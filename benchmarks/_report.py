"""Shared reporting helper for the benchmark suite.

Each benchmark regenerates one of the paper's artifacts and calls
:func:`emit` with the rows/series the paper reports; the text is printed
(visible with ``pytest -s``) and archived under ``benchmarks/out/`` so
EXPERIMENTS.md can reference stable files.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a reproduction report and archive it to benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
