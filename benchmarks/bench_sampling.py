"""Benchmark: O(1) alias-table sampling at line rate.

PR 6 replaces the two-sided-geometric hot path (two ``rng.geometric``
draws plus a clip per release) with precomputed per-row Walker/Vose
alias tables (:mod:`repro.sampling.alias`): one uniform, two flat
gathers, and a compare per sample, batched across heterogeneous true
results — and, via :class:`repro.sampling.alias.HeterogeneousAliasSampler`,
across deployments with different ``n`` and ``alpha`` in one fused tick.

Measured here:

* ``alias_samples_per_second`` — batched :class:`RowAliasSampler`
  throughput on geometric rows (the ``publish_batch`` hot path);
* ``legacy_samples_per_second`` — the pre-PR-6 path for the same batch:
  ``sample_two_sided_geometric`` noise plus ``np.clip``;
* ``heterogeneous_samples_per_second`` — one fused tick across three
  deployments of different sizes and privacy levels.

Correctness is asserted in every mode (``--quick`` included):

* every alias table's :meth:`cell_probabilities` equals the exact
  rational ``G_{n,alpha}`` row **bit-for-bit**, including the boundary
  columns that fold the unbounded noise tails (Definition 4), and the
  interior cells match :func:`two_sided_geometric_pmf` exactly;
* chi-square goodness-of-fit of alias draws against the exact pmf, and
  statistical equivalence between the alias path and the legacy
  noise-plus-clip path under fixed seeds (both paths chi-square-consistent
  with the same exact law, small total-variation gap between them).

Standalone: ``PYTHONPATH=src:benchmarks python benchmarks/bench_sampling.py``
(``--quick`` for a CI smoke run; ``--check`` to fail when the full-mode
throughput floor — **>= 1e7 alias samples/sec batched** — is missed; in
quick mode ``--check`` enforces the exactness and statistical assertions
only). Emits a ``BENCH {json}`` line and writes
``benchmarks/out/BENCH_sampling.json``.
"""

import argparse
import sys
import time
from fractions import Fraction

import numpy as np

from _report import emit, emit_bench

from repro.core.geometric import geometric_matrix
from repro.sampling.alias import (
    HeterogeneousAliasSampler,
    cached_geometric_sampler,
)
from repro.sampling.geometric import (
    sample_two_sided_geometric,
    two_sided_geometric_pmf,
)

#: Full-mode acceptance floor: batched alias sampling at line rate.
SAMPLES_PER_SECOND_FLOOR = 1e7


def best_of(fn, repeats=3):
    """Minimum wall time of ``repeats`` runs plus the last result."""
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), result


def check_exactness():
    """Alias tables encode the exact mechanism rows bit-for-bit."""
    cells = 0
    for n, alpha in [
        (3, Fraction(1, 4)),
        (5, Fraction(1, 3)),
        (10, Fraction(2, 3)),
        (17, Fraction(3, 5)),
    ]:
        matrix = geometric_matrix(n, alpha)
        sampler = cached_geometric_sampler(n, alpha)
        assert sampler.is_exact()
        for i in range(n + 1):
            reconstructed = sampler.tables[i].cell_probabilities()
            expected = list(matrix[i])
            assert reconstructed == expected, (
                f"alias row {i} of G_{{{n},{alpha}}} diverged from the "
                "exact kernel row"
            )
            # Interior columns obey the unbounded two-sided law exactly;
            # boundary columns carry the folded tail mass of Definition 4.
            for r in range(1, n):
                assert reconstructed[r] == two_sided_geometric_pmf(
                    alpha, r - i
                )
            for r in (0, n):
                assert reconstructed[r] == alpha ** abs(r - i) / (1 + alpha)
            cells += n + 1
    return {"rows_checked": cells // 1, "bit_exact": True}


def _chi_square(observed, expected_pmf, total):
    expected = np.asarray(
        [float(p) for p in expected_pmf]
    ) * total
    return float(((observed - expected) ** 2 / expected).sum())


def check_statistics(draws_per_row):
    """Chi-square fit + fixed-seed equivalence vs the legacy sampler."""
    n, alpha = 9, Fraction(1, 3)
    matrix = geometric_matrix(n, alpha)
    sampler = cached_geometric_sampler(n, alpha)
    # dof = n per row; a chi-square statistic this far above the mean has
    # p < 1e-6, so a pass is a strong (yet non-flaky, seeded) fit check.
    limit = n + 10.0 * np.sqrt(2.0 * n)
    worst_alias = worst_legacy = 0.0
    worst_tv = 0.0
    for i in (0, n // 2, n):
        rng = np.random.default_rng(20_100 + i)
        alias_draws = sampler.sample(
            np.full(draws_per_row, i, dtype=np.int64), rng
        )
        rng = np.random.default_rng(20_100 + i)
        noise = sample_two_sided_geometric(
            float(alpha), rng, draws_per_row
        )
        legacy_draws = np.clip(i + noise, 0, n)
        alias_counts = np.bincount(alias_draws, minlength=n + 1)
        legacy_counts = np.bincount(legacy_draws, minlength=n + 1)
        chi_alias = _chi_square(alias_counts, matrix[i], draws_per_row)
        chi_legacy = _chi_square(legacy_counts, matrix[i], draws_per_row)
        tv = 0.5 * float(
            np.abs(alias_counts - legacy_counts).sum()
        ) / draws_per_row
        assert chi_alias < limit, (
            f"alias draws for row {i} fail the exact law: "
            f"chi2={chi_alias:.1f} >= {limit:.1f}"
        )
        assert chi_legacy < limit, (
            f"legacy draws for row {i} fail the exact law: "
            f"chi2={chi_legacy:.1f} >= {limit:.1f}"
        )
        assert tv < 0.02, (
            f"alias vs legacy empirical gap too large for row {i}: "
            f"TV={tv:.4f}"
        )
        worst_alias = max(worst_alias, chi_alias)
        worst_legacy = max(worst_legacy, chi_legacy)
        worst_tv = max(worst_tv, tv)
    return {
        "n": n,
        "alpha": str(alpha),
        "draws_per_row": draws_per_row,
        "chi_square_limit": limit,
        "worst_alias_chi_square": worst_alias,
        "worst_legacy_chi_square": worst_legacy,
        "worst_total_variation_gap": worst_tv,
    }


def bench_throughput(n, alpha, batch, repeats):
    """Batched alias sampling vs the legacy noise-plus-clip path."""
    sampler = cached_geometric_sampler(n, alpha)
    rows = np.random.default_rng(7).integers(0, n + 1, size=batch)
    rng = np.random.default_rng(11)
    alias_seconds, alias_out = best_of(
        lambda: sampler.sample(rows, rng), repeats=repeats
    )
    rng = np.random.default_rng(11)
    legacy_seconds, legacy_out = best_of(
        lambda: np.clip(
            rows + sample_two_sided_geometric(float(alpha), rng, batch),
            0,
            n,
        ),
        repeats=repeats,
    )
    assert alias_out.min() >= 0 and alias_out.max() <= n
    assert legacy_out.min() >= 0 and legacy_out.max() <= n
    return {
        "n": n,
        "alpha": str(alpha),
        "batch": batch,
        "alias_seconds": alias_seconds,
        "legacy_seconds": legacy_seconds,
        "alias_samples_per_second": batch / alias_seconds,
        "legacy_samples_per_second": batch / legacy_seconds,
        "alias_vs_legacy": legacy_seconds / alias_seconds,
    }


def bench_heterogeneous(batch, repeats):
    """One fused tick across deployments of mixed size and alpha."""
    deployments = [
        (5, Fraction(1, 3)),
        (20, Fraction(1, 2)),
        (50, Fraction(2, 3)),
    ]
    fused = HeterogeneousAliasSampler(
        cached_geometric_sampler(n, alpha) for n, alpha in deployments
    )
    seed_rng = np.random.default_rng(13)
    tables = seed_rng.integers(0, len(deployments), size=batch)
    sizes = np.array([n + 1 for n, _ in deployments], dtype=np.int64)
    rows = seed_rng.integers(0, sizes[tables])
    rng = np.random.default_rng(17)
    seconds, out = best_of(
        lambda: fused.sample(tables, rows, rng), repeats=repeats
    )
    assert out.min() >= 0 and (out < sizes[tables]).all()
    return {
        "deployments": [
            {"n": n, "alpha": str(alpha)} for n, alpha in deployments
        ],
        "batch": batch,
        "seconds": seconds,
        "heterogeneous_samples_per_second": batch / seconds,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small batches for a CI smoke run"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when the full-mode throughput floor "
        "(>= 1e7 alias samples/sec) is missed; quick mode still "
        "enforces bit-exactness and the statistical assertions",
    )
    args = parser.parse_args(argv)

    if args.quick:
        batch, repeats, draws_per_row = 200_000, 3, 120_000
    else:
        batch, repeats, draws_per_row = 4_000_000, 5, 400_000

    exactness = check_exactness()
    statistics = check_statistics(draws_per_row)
    throughput = [
        bench_throughput(n, alpha, batch, repeats)
        for n, alpha in [(10, Fraction(1, 3)), (100, Fraction(1, 2))]
    ]
    heterogeneous = bench_heterogeneous(batch, repeats)

    results = {
        "quick": args.quick,
        "exactness": exactness,
        "statistics": statistics,
        "throughput": throughput,
        "heterogeneous": heterogeneous,
        "targets": {"alias_samples_per_second": SAMPLES_PER_SECOND_FLOOR},
    }

    lines = ["alias-table sampling vs legacy two-sided-geometric + clip:"]
    for row in throughput:
        lines.append(
            "  n={n} alpha={alpha} batch={batch}: alias "
            "{alias_samples_per_second:12.3e}/s vs legacy "
            "{legacy_samples_per_second:12.3e}/s "
            "({alias_vs_legacy:4.1f}x)".format(**row)
        )
    lines.append(
        "  heterogeneous tick ({count} deployments, batch={batch}): "
        "{heterogeneous_samples_per_second:12.3e}/s".format(
            count=len(heterogeneous["deployments"]), **heterogeneous
        )
    )
    lines.append(
        "  exactness: {rows} alias rows reconstruct the exact rational "
        "kernel bit-for-bit (asserted)".format(rows=exactness["rows_checked"])
    )
    lines.append(
        "  statistics: worst chi2 alias={worst_alias_chi_square:.1f} "
        "legacy={worst_legacy_chi_square:.1f} (limit "
        "{chi_square_limit:.1f}), worst alias-vs-legacy TV gap "
        "{worst_total_variation_gap:.4f} (asserted)".format(**statistics)
    )
    emit("sampling", "\n".join(lines))
    emit_bench("sampling", results)

    if args.check and not args.quick:
        failures = [
            f"alias throughput n={row['n']}: "
            f"{row['alias_samples_per_second']:.2e}/s < "
            f"{SAMPLES_PER_SECOND_FLOOR:.0e}/s"
            for row in throughput
            if row["alias_samples_per_second"] < SAMPLES_PER_SECOND_FLOOR
        ]
        if failures:
            print("sampling targets missed: " + "; ".join(failures))
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
