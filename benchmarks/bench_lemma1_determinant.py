"""Experiment L1 — Lemma 1: det G'_{n,alpha} = (1 - a^2)^{m-1} > 0.

Paper claim (proved by column elimination + induction): the geometric
mechanism matrix is non-singular, with the explicit determinant above
for the column-scaled G'. Regenerated exactly across a sweep of sizes
and privacy levels, via three independent routes: the closed form,
Gaussian elimination on G', and elimination on G with the column-scaling
correction.
"""

from fractions import Fraction

from _report import emit

from repro.core.characterization import (
    geometric_determinant,
    gprime_determinant,
)
from repro.core.geometric import GeometricMechanism, gprime_matrix

SIZES = list(range(1, 8))
ALPHAS = [Fraction(1, 5), Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]


def sweep():
    rows = []
    for n in SIZES:
        for alpha in ALPHAS:
            closed = gprime_determinant(n + 1, alpha)
            eliminated = gprime_matrix(n, alpha).determinant()
            g_closed = geometric_determinant(n + 1, alpha)
            g_eliminated = GeometricMechanism(
                n, alpha
            ).to_rational_matrix().determinant()
            rows.append(
                (n, alpha, closed, eliminated, g_closed, g_eliminated)
            )
    return rows


def test_lemma1_determinants(benchmark):
    rows = benchmark(sweep)

    for n, alpha, closed, eliminated, g_closed, g_eliminated in rows:
        assert closed == eliminated == (1 - alpha**2) ** n
        assert g_closed == g_eliminated
        assert g_closed > 0  # Lemma 1's positivity claim

    lines = [
        f"  n={n} alpha={alpha}: det G' = {closed}, det G = {g_closed}"
        for n, alpha, closed, _, g_closed, _ in rows
        if n <= 3
    ]
    emit(
        "lemma1_determinant",
        f"Lemma 1 sweep over n in {SIZES}, alpha in "
        f"{[str(a) for a in ALPHAS]} — all exact matches:\n"
        + "\n".join(lines),
    )
